"""Command line entry point: ``python -m repro.experiments [figures...]``.

Runs the requested figure drivers (all of them by default) and prints
their tables.  ``--full`` scales the corpora up toward the paper's sizes;
expect minutes instead of seconds.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.extensions import EXTENSION_FIGURES
from repro.experiments.figures import ALL_FIGURES
from repro.obs.clock import Clock, default_clock

KNOWN = {**ALL_FIGURES, **EXTENSION_FIGURES}

#: Larger corpus parameters used with --full (figure name -> kwargs).
FULL_PARAMETERS: dict[str, dict[str, object]] = {
    "fig3": {"pairs_per_testbed": 22},
    "fig4": {"pairs_per_testbed": 22},
    "fig5": {"pair_count": 20},
    "fig6": {"pair_count": 20},
    "fig7": {"pair_count": 16},
    "fig8": {"sizes": (10, 20, 30, 40, 50, 60, 80, 100), "per_size": 2},
    "fig9": {"removed": (0, 1, 2, 3, 4, 5, 6, 8, 10), "size": 30, "per_setting": 3},
    "fig10": {"pair_count": 16},
    "fig11": {"pair_count": 16},
    "fig12": {"pair_count": 8},
    "fig13": {"pair_count": 8},
    "fig14": {"pair_count": 8},
}


def main(argv: list[str] | None = None, clock: Clock | None = None) -> int:
    if clock is None:
        clock = default_clock
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the figures of 'Matching Heterogeneous Event Data' (SIGMOD 2014).",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help=f"figures to run (default: the paper's 12). Known: {', '.join(KNOWN)}",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use corpus sizes close to the paper's (much slower)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="also write each figure to DIR/<figure>.txt and DIR/<figure>.json",
    )
    arguments = parser.parse_args(argv)

    requested = arguments.figures or list(ALL_FIGURES)
    unknown = [name for name in requested if name not in KNOWN]
    if unknown:
        parser.error(f"unknown figures: {', '.join(unknown)}")

    output_dir: Path | None = None
    if arguments.output is not None:
        output_dir = Path(arguments.output)
        output_dir.mkdir(parents=True, exist_ok=True)

    for name in requested:
        driver = KNOWN[name]
        kwargs = FULL_PARAMETERS.get(name, {}) if arguments.full else {}
        start = clock()
        result = driver(**kwargs)  # type: ignore[arg-type]
        elapsed = clock() - start
        print(result.render())
        print(f"  [completed in {elapsed:.1f}s]")
        print()
        if output_dir is not None:
            (output_dir / f"{name}.txt").write_text(
                result.render() + "\n", encoding="utf-8"
            )
            payload = {
                "figure": result.figure,
                "title": result.title,
                "headers": result.headers,
                "rows": result.rows,
                "notes": result.notes,
                "seconds": elapsed,
                "full": arguments.full,
            }
            (output_dir / f"{name}.json").write_text(
                json.dumps(payload, indent=2), encoding="utf-8"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
