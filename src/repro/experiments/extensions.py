"""Extension experiments beyond the paper's figures.

Three studies the paper motivates but does not run; regenerate with
``python -m repro.experiments ext-noise ext-baselines ext-ablation``.

* **ext-noise** — robustness to log-quality noise (missing events,
  duplicated events, clock-skew reorderings): real OA exports are dirty,
  and a matcher for the paper's integration scenario has to tolerate it.
* **ext-baselines** — the singleton lineup extended with the
  behavioral-footprint matcher (FPT), a representative of the
  behavioral-profile school the related work discusses (ICoP).
* **ext-ablation** — which ingredient of EMS buys what: similarity
  direction, the edge-agreement factor ``C``, and the decay constant.
* **ext-estimation-error** — the conclusion's open problem: how large is
  the estimation error empirically, per budget ``I``.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.baselines.flooding import FloodingMatcher
from repro.baselines.profiles import ProfileMatcher
from repro.core.config import EMSConfig
from repro.experiments.figures import DEFAULT_SEED, _testbed_subsets
from repro.experiments.harness import (
    aggregate_runs,
    run_matcher_on_pair,
    run_matrix,
    singleton_matchers,
)
from repro.experiments.reporting import FigureResult
from repro.graph.dependency import DependencyGraph
from repro.matchers import EMSMatcher
from repro.synthesis.corpus import LogPair
from repro.synthesis.mutations import (
    drop_random_events,
    duplicate_random_events,
    swap_adjacent_events,
)

NOISE_OPERATORS = {
    "drop": drop_random_events,
    "duplicate": duplicate_random_events,
    "swap": swap_adjacent_events,
}


def _noisy_pair(pair: LogPair, kind: str, probability: float, seed: int) -> LogPair:
    operator = NOISE_OPERATORS[kind]
    rng = random.Random(seed)
    noisy_second = operator(pair.log_second, rng, probability)
    surviving = noisy_second.activities()
    truth = tuple(c for c in pair.truth if c.right <= surviving)
    return LogPair(
        name=f"{pair.name}+{kind}{probability}",
        area=pair.area,
        testbed=pair.testbed,
        log_first=pair.log_first,
        log_second=noisy_second,
        truth=truth,
    )


def ext_noise(
    levels: Sequence[float] = (0.0, 0.05, 0.10, 0.20),
    pair_count: int = 5,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """EMS f-measure under increasing log-quality noise, per noise kind."""
    pairs = _testbed_subsets(pair_count, seed)["DS-B"]
    matcher = EMSMatcher()
    rows: list[list[object]] = []
    for level in levels:
        row: list[object] = [level]
        for kind in NOISE_OPERATORS:
            noisy = [
                _noisy_pair(pair, kind, level, seed=seed + index)
                for index, pair in enumerate(pairs)
            ]
            runs = [run_matcher_on_pair(matcher, pair) for pair in noisy]
            row.append(aggregate_runs(runs)[matcher.name].mean_f_measure)
        rows.append(row)
    return FigureResult(
        figure="Extension: noise",
        title="EMS robustness to log-quality noise (DS-B pairs)",
        headers=["probability"] + [f"f({kind})" for kind in NOISE_OPERATORS],
        rows=rows,
        notes=[f"{len(pairs)} pairs; noise injected into the second log only"],
    )


def ext_baselines(
    pairs_per_testbed: int = 6, seed: int = DEFAULT_SEED
) -> FigureResult:
    """The Figure 3 lineup extended with the footprint-profile matcher."""
    matchers = singleton_matchers() + [ProfileMatcher(), FloodingMatcher()]
    names = [matcher.name for matcher in matchers]
    rows: list[list[object]] = []
    for testbed, pairs in _testbed_subsets(pairs_per_testbed, seed).items():
        aggregates = aggregate_runs(run_matrix(matchers, pairs))
        rows.append([testbed] + [aggregates[name].mean_f_measure for name in names])
    return FigureResult(
        figure="Extension: baselines",
        title="Extended lineup: + footprints (FPT) and similarity flooding (SFL)",
        headers=["testbed"] + [f"f({name})" for name in names],
        rows=rows,
        notes=[f"{pairs_per_testbed} pairs per testbed, structural only"],
    )


def ext_ablation(
    pair_count: int = 6, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Which EMS ingredient buys what (direction, C factor, decay c)."""
    pairs = (
        _testbed_subsets(pair_count, seed)["DS-B"]
        + _testbed_subsets(pair_count, seed)["DS-FB"]
    )
    variants: list[tuple[str, EMSConfig]] = [
        ("EMS (both + C, c=0.8)", EMSConfig()),
        ("forward only", EMSConfig(direction="forward")),
        ("backward only", EMSConfig(direction="backward")),
        ("no C factor", EMSConfig(use_edge_weights=False)),
        ("c = 0.6", EMSConfig(c=0.6)),
        ("c = 0.95", EMSConfig(c=0.95)),
    ]
    rows: list[list[object]] = []
    for label, config in variants:
        matcher = EMSMatcher(config, name=label)
        runs = [run_matcher_on_pair(matcher, pair) for pair in pairs]
        aggregate = aggregate_runs(runs)[label]
        rows.append([label, aggregate.mean_f_measure, aggregate.total_seconds])
    return FigureResult(
        figure="Extension: ablation",
        title="EMS design-choice ablation (DS-B + DS-FB pairs)",
        headers=["variant", "f-measure", "seconds"],
        rows=rows,
        notes=[f"{2 * pair_count} pairs, structural only"],
    )


def ext_estimation_error(
    budgets: Sequence[int] = (0, 1, 2, 3, 5, 10),
    pair_count: int = 4,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Empirical estimation error per budget (the paper's open problem)."""
    from repro.core.analysis import estimation_error

    pairs = _testbed_subsets(pair_count, seed)["DS-FB"]
    totals = {budget: [0.0, 0.0] for budget in budgets}  # [max, mean]
    for pair in pairs:
        graph_first = DependencyGraph.from_log(pair.log_first)
        graph_second = DependencyGraph.from_log(pair.log_second)
        for report in estimation_error(graph_first, graph_second, budgets=budgets):
            totals[report.budget][0] = max(totals[report.budget][0], report.max_abs_error)
            totals[report.budget][1] += report.mean_abs_error / len(pairs)
    rows = [
        [budget, totals[budget][0], totals[budget][1]] for budget in budgets
    ]
    return FigureResult(
        figure="Extension: estimation error",
        title="Empirical estimation error of EMS+es vs the exact fixpoint",
        headers=["I", "max |error|", "mean |error|"],
        rows=rows,
        notes=[
            f"{len(pairs)} DS-FB pairs; the paper leaves the error bound open",
            "max is over all pairs and matrix entries; mean is per-entry",
        ],
    )


EXTENSION_FIGURES = {
    "ext-noise": ext_noise,
    "ext-baselines": ext_baselines,
    "ext-ablation": ext_ablation,
    "ext-estimation-error": ext_estimation_error,
}
