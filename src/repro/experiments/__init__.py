"""Experiment harness: figure drivers, timing, aggregation, reporting."""

from repro.experiments.extensions import (
    EXTENSION_FIGURES,
    ext_ablation,
    ext_baselines,
    ext_estimation_error,
    ext_noise,
)
from repro.experiments.figures import (
    ALL_FIGURES,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
)
from repro.experiments.harness import (
    Aggregate,
    MatcherRun,
    aggregate_runs,
    composite_matchers,
    default_label_similarity,
    run_matcher_on_pair,
    run_matrix,
    singleton_matchers,
)
from repro.experiments.reporting import FigureResult, format_table

__all__ = [
    "ALL_FIGURES",
    "EXTENSION_FIGURES",
    "ext_noise",
    "ext_baselines",
    "ext_ablation",
    "ext_estimation_error",
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "fig13", "fig14",
    "MatcherRun",
    "Aggregate",
    "run_matcher_on_pair",
    "run_matrix",
    "aggregate_runs",
    "singleton_matchers",
    "composite_matchers",
    "default_label_similarity",
    "FigureResult",
    "format_table",
]
