"""Per-figure experiment drivers.

One function per figure of the paper's evaluation (Section 5).  Each
returns a :class:`~repro.experiments.reporting.FigureResult` holding the
same rows/series the paper plots.  The default parameters are sized for
laptop-quick runs (the benchmark suite uses them); pass larger values —
e.g. via ``python -m repro.experiments --full`` — for closer replicas of
the paper's corpus sizes.

Absolute numbers differ from the paper (its corpus is proprietary and its
implementation Java); what these drivers reproduce is the *shape*: who
wins, by roughly what factor, and where the crossovers fall.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Sequence

from repro.baselines.common import EventMatcher
from repro.core.config import EMSConfig
from repro.experiments.harness import (
    aggregate_runs,
    composite_matchers,
    default_label_similarity,
    mean_diagnostic,
    run_matcher_on_pair,
    run_matrix,
    singleton_matchers,
)
from repro.experiments.reporting import FigureResult
from repro.matchers import EMSCompositeMatcher, EMSMatcher
from repro.synthesis.corpus import (
    LogPair,
    build_dislocation_pair,
    build_real_like_corpus,
    build_scalability_pair,
    composite_pairs,
    singleton_testbeds,
)

DEFAULT_SEED = 2014
MATCHER_ORDER = ("EMS", "EMS+es", "GED", "OPQ", "BHV")


@lru_cache(maxsize=2)
def _real_corpus(seed: int = DEFAULT_SEED, traces_per_log: int = 100) -> tuple[LogPair, ...]:
    return tuple(build_real_like_corpus(seed=seed, traces_per_log=traces_per_log))


def _testbed_subsets(pairs_per_testbed: int, seed: int) -> dict[str, list[LogPair]]:
    testbeds = singleton_testbeds(list(_real_corpus(seed)))
    return {name: pairs[:pairs_per_testbed] for name, pairs in testbeds.items()}


def _composite_subset(count: int, seed: int) -> list[LogPair]:
    return composite_pairs(list(_real_corpus(seed)))[:count]


# ----------------------------------------------------------------------
# Figures 3 and 4 — singleton matching accuracy and time
# ----------------------------------------------------------------------
def _singleton_figure(
    figure: str,
    title: str,
    with_labels: bool,
    pairs_per_testbed: int,
    seed: int,
) -> FigureResult:
    label = default_label_similarity() if with_labels else None
    matchers = singleton_matchers(label_similarity=label)
    headers = ["testbed"]
    headers += [f"f({name})" for name in MATCHER_ORDER]
    headers += [f"t({name})" for name in MATCHER_ORDER]
    rows: list[list[object]] = []
    for testbed, pairs in _testbed_subsets(pairs_per_testbed, seed).items():
        aggregates = aggregate_runs(run_matrix(matchers, pairs))
        row: list[object] = [testbed]
        row += [aggregates[name].mean_f_measure for name in MATCHER_ORDER]
        row += [aggregates[name].total_seconds for name in MATCHER_ORDER]
        rows.append(row)
    return FigureResult(
        figure=figure,
        title=title,
        headers=headers,
        rows=rows,
        notes=[f"{pairs_per_testbed} log pairs per testbed, seed {seed}"],
    )


def fig3(pairs_per_testbed: int = 8, seed: int = DEFAULT_SEED) -> FigureResult:
    """Singleton matching, structural similarity only (opaque names)."""
    return _singleton_figure(
        "Figure 3",
        "Performance on matching singleton events (structural only)",
        False,
        pairs_per_testbed,
        seed,
    )


def fig4(pairs_per_testbed: int = 8, seed: int = DEFAULT_SEED) -> FigureResult:
    """Singleton matching with q-gram cosine label similarity blended in."""
    return _singleton_figure(
        "Figure 4",
        "Integrating with typographic similarity",
        True,
        pairs_per_testbed,
        seed,
    )


# ----------------------------------------------------------------------
# Figure 5 — estimation trade-off (iteration budget I)
# ----------------------------------------------------------------------
def fig5(
    budgets: Sequence[int | None] = (0, 1, 2, 3, 5, 10, None),
    pair_count: int = 8,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """f-measure and time of EMS+es as the exact-iteration budget grows.

    ``None`` is the paper's MAX: the precise measure without estimation.
    """
    pairs = _testbed_subsets(pair_count, seed)["DS-FB"]
    rows: list[list[object]] = []
    for budget in budgets:
        config = EMSConfig(estimation_iterations=budget)
        matcher = EMSMatcher(config, name=f"I={budget if budget is not None else 'MAX'}")
        runs = [run_matcher_on_pair(matcher, pair) for pair in pairs]
        aggregates = aggregate_runs(runs)[matcher.name]
        rows.append(
            [
                "MAX" if budget is None else budget,
                aggregates.mean_f_measure,
                aggregates.total_seconds,
            ]
        )
    return FigureResult(
        figure="Figure 5",
        title="Trade-off between accuracy and time by estimation",
        headers=["I", "f-measure", "seconds"],
        rows=rows,
        notes=[f"{len(pairs)} DS-FB pairs, seed {seed}"],
    )


# ----------------------------------------------------------------------
# Figure 6 — prune power of early convergence
# ----------------------------------------------------------------------
def fig6(pair_count: int = 8, seed: int = DEFAULT_SEED) -> FigureResult:
    """Formula-(1) evaluations and time with vs without Proposition 2."""
    subsets = _testbed_subsets(pair_count, seed)
    pruned = EMSMatcher(EMSConfig(use_pruning=True), name="EMS+prune")
    unpruned = EMSMatcher(EMSConfig(use_pruning=False), name="EMS")
    rows: list[list[object]] = []
    for testbed, pairs in subsets.items():
        runs_pruned = [run_matcher_on_pair(pruned, pair) for pair in pairs]
        runs_unpruned = [run_matcher_on_pair(unpruned, pair) for pair in pairs]
        rows.append(
            [
                testbed,
                mean_diagnostic(runs_unpruned, "pair_updates"),
                mean_diagnostic(runs_pruned, "pair_updates"),
                sum(run.seconds for run in runs_unpruned),
                sum(run.seconds for run in runs_pruned),
            ]
        )
    return FigureResult(
        figure="Figure 6",
        title="Prune power of early convergence",
        headers=[
            "testbed",
            "updates(no prune)",
            "updates(prune)",
            "t(no prune)",
            "t(prune)",
        ],
        rows=rows,
        notes=[f"{pair_count} pairs per testbed; updates = formula (1) evaluations"],
    )


# ----------------------------------------------------------------------
# Figure 7 — minimum frequency control
# ----------------------------------------------------------------------
def fig7(
    thresholds: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25),
    pair_count: int = 6,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Accuracy/time as low-frequency edges are filtered out."""
    pairs = _testbed_subsets(pair_count, seed)["DS-FB"]
    rows: list[list[object]] = []
    for threshold in thresholds:
        matcher = EMSMatcher(min_edge_frequency=threshold, name=f"minf={threshold}")
        runs = [run_matcher_on_pair(matcher, pair) for pair in pairs]
        aggregates = aggregate_runs(runs)[matcher.name]
        rows.append([threshold, aggregates.mean_f_measure, aggregates.total_seconds])
    return FigureResult(
        figure="Figure 7",
        title="Performance on varying minimum frequency thresholds",
        headers=["min frequency", "f-measure", "seconds"],
        rows=rows,
        notes=[f"{len(pairs)} DS-FB pairs, seed {seed}"],
    )


# ----------------------------------------------------------------------
# Figure 8 — scalability over the number of events
# ----------------------------------------------------------------------
def fig8(
    sizes: Sequence[int] = (10, 20, 30, 40, 50),
    per_size: int = 2,
    seed: int = DEFAULT_SEED,
    traces_per_log: int = 80,
    opq_max_events: int = 30,
) -> FigureResult:
    """Accuracy and time vs number of events; OPQ DNFs past its cap."""
    matchers = singleton_matchers(opq_max_events=opq_max_events)
    headers = ["events"]
    headers += [f"f({name})" for name in MATCHER_ORDER]
    headers += [f"t({name})" for name in MATCHER_ORDER]
    rows: list[list[object]] = []
    for size in sizes:
        pairs = [
            build_scalability_pair(
                size, seed=seed * 1_000 + size * 10 + index,
                traces_per_log=traces_per_log,
            )
            for index in range(per_size)
        ]
        aggregates = aggregate_runs(run_matrix(matchers, pairs))
        row: list[object] = [size]
        for name in MATCHER_ORDER:
            aggregate = aggregates[name]
            row.append("DNF" if aggregate.dnf_count == aggregate.pair_count
                       else aggregate.mean_f_measure)
        for name in MATCHER_ORDER:
            aggregate = aggregates[name]
            row.append("DNF" if aggregate.dnf_count == aggregate.pair_count
                       else aggregate.total_seconds)
        rows.append(row)
    return FigureResult(
        figure="Figure 8",
        title="Scalability on the number of events (synthetic data)",
        headers=headers,
        rows=rows,
        notes=[
            f"{per_size} model(s) per size, {traces_per_log} traces per log",
            f"OPQ cap: {opq_max_events} events (O(n!) search; DNF beyond, as in the paper)",
        ],
    )


# ----------------------------------------------------------------------
# Figure 9 — handling dislocated events
# ----------------------------------------------------------------------
def fig9(
    removed: Sequence[int] = (0, 1, 2, 3, 4, 5),
    size: int = 20,
    per_setting: int = 4,
    seed: int = DEFAULT_SEED,
    traces_per_log: int = 80,
) -> FigureResult:
    """Accuracy vs the number of dislocated (removed prefix) events."""
    matchers = singleton_matchers()
    headers = ["removed"] + [f"f({name})" for name in MATCHER_ORDER]
    rows: list[list[object]] = []
    for m in removed:
        pairs = [
            build_dislocation_pair(
                size, removed=m, seed=seed * 100 + index, traces_per_log=traces_per_log
            )
            for index in range(per_setting)
        ]
        aggregates = aggregate_runs(run_matrix(matchers, pairs))
        row: list[object] = [m]
        for name in MATCHER_ORDER:
            aggregate = aggregates[name]
            row.append("DNF" if aggregate.dnf_count == aggregate.pair_count
                       else aggregate.mean_f_measure)
        rows.append(row)
    return FigureResult(
        figure="Figure 9",
        title="Performance on handling dislocated events",
        headers=headers,
        rows=rows,
        notes=[f"{size}-event models, {per_setting} pair(s) per setting"],
    )


# ----------------------------------------------------------------------
# Figures 10 and 11 — composite event matching
# ----------------------------------------------------------------------
def _composite_figure(
    figure: str, title: str, with_labels: bool, pair_count: int, seed: int
) -> FigureResult:
    label = default_label_similarity() if with_labels else None
    matchers = composite_matchers(label_similarity=label)
    pairs = _composite_subset(pair_count, seed)
    aggregates = aggregate_runs(run_matrix(matchers, pairs))
    rows: list[list[object]] = []
    for name in MATCHER_ORDER:
        aggregate = aggregates[name]
        rows.append(
            [
                name,
                "DNF" if aggregate.dnf_count == aggregate.pair_count
                else aggregate.mean_f_measure,
                aggregate.total_seconds,
            ]
        )
    return FigureResult(
        figure=figure,
        title=title,
        headers=["matcher", "f-measure", "seconds"],
        rows=rows,
        notes=[f"{len(pairs)} composite log pairs, seed {seed}"],
    )


def fig10(pair_count: int = 6, seed: int = DEFAULT_SEED) -> FigureResult:
    """Composite matching, structural similarity only."""
    return _composite_figure(
        "Figure 10",
        "Performance on matching composite events (structural only)",
        False,
        pair_count,
        seed,
    )


def fig11(pair_count: int = 6, seed: int = DEFAULT_SEED) -> FigureResult:
    """Composite matching with typographic similarity."""
    return _composite_figure(
        "Figure 11",
        "Matching composite events, integrating typographic similarity",
        True,
        pair_count,
        seed,
    )


# ----------------------------------------------------------------------
# Figure 12 — prune power of Uc and Bd
# ----------------------------------------------------------------------
def fig12(pair_count: int = 4, seed: int = DEFAULT_SEED) -> FigureResult:
    """Unchanged-similarity reuse (Uc) and upper-bound abort (Bd)."""
    pairs = _composite_subset(pair_count, seed)
    variants: list[tuple[str, bool, bool]] = [
        ("none", False, False),
        ("Uc", True, False),
        ("Bd", False, True),
        ("Uc+Bd", True, True),
    ]
    rows: list[list[object]] = []
    for label, use_unchanged, use_bounds in variants:
        matcher = EMSCompositeMatcher(
            use_unchanged=use_unchanged,
            use_bounds=use_bounds,
            min_confidence=0.9,
            max_run_length=3,
            name=f"EMS[{label}]",
        )
        runs = [run_matcher_on_pair(matcher, pair) for pair in pairs]
        rows.append(
            [
                label,
                mean_diagnostic(runs, "pair_updates"),
                sum(run.seconds for run in runs),
                aggregate_runs(runs)[matcher.name].mean_f_measure,
            ]
        )
    return FigureResult(
        figure="Figure 12",
        title="Prune power of unchanged similarities and upper bounds",
        headers=["pruning", "updates", "seconds", "f-measure"],
        rows=rows,
        notes=[f"{len(pairs)} composite pairs; updates = formula (1) evaluations"],
    )


# ----------------------------------------------------------------------
# Figure 13 — varying the improvement threshold delta
# ----------------------------------------------------------------------
def fig13(
    deltas: Sequence[float] = (0.20, 0.05, 0.01, 0.005, 0.002, 0.001, 0.0005),
    pair_count: int = 4,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Accuracy peaks at a moderate delta; time grows as delta shrinks."""
    pairs = _composite_subset(pair_count, seed)
    rows: list[list[object]] = []
    for delta in deltas:
        matcher = EMSCompositeMatcher(
            delta=delta, min_confidence=0.9, max_run_length=3, name=f"d={delta}"
        )
        runs = [run_matcher_on_pair(matcher, pair) for pair in pairs]
        aggregates = aggregate_runs(runs)[matcher.name]
        rows.append(
            [
                delta,
                aggregates.mean_f_measure,
                aggregates.total_seconds,
                mean_diagnostic(runs, "composites_accepted"),
            ]
        )
    return FigureResult(
        figure="Figure 13",
        title="Performance on varying threshold delta",
        headers=["delta", "f-measure", "seconds", "composites accepted"],
        rows=rows,
        notes=[f"{len(pairs)} composite pairs, seed {seed}"],
    )


# ----------------------------------------------------------------------
# Figure 14 — varying the candidate-set size
# ----------------------------------------------------------------------
def fig14(
    candidate_caps: Sequence[int] = (0, 1, 2, 4, 8, 16),
    pair_count: int = 4,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """More candidates find more composites but cost more time."""
    pairs = _composite_subset(pair_count, seed)
    rows: list[list[object]] = []
    for cap in candidate_caps:
        matcher = EMSCompositeMatcher(
            max_candidates=cap,
            delta=0.002,
            min_confidence=0.75,
            max_run_length=3,
            name=f"cap={cap}",
        )
        runs = [run_matcher_on_pair(matcher, pair) for pair in pairs]
        aggregates = aggregate_runs(runs)[matcher.name]
        rows.append(
            [
                cap,
                aggregates.mean_f_measure,
                aggregates.total_seconds,
                mean_diagnostic(runs, "candidates_evaluated"),
            ]
        )
    return FigureResult(
        figure="Figure 14",
        title="Performance on varying candidate sizes",
        headers=["candidate cap", "f-measure", "seconds", "candidates evaluated"],
        rows=rows,
        notes=[f"{len(pairs)} composite pairs, seed {seed}"],
    )


#: Registry used by the CLI and the benchmark suite.
ALL_FIGURES = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
}
