"""Plain-text reporting of experiment results.

Every figure driver returns a :class:`FigureResult` — a titled table of
the same rows/series the paper plots — which renders as aligned ASCII for
terminals, logs and ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 0.01:
            return f"{value:g}"  # keep small thresholds distinguishable
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render *rows* under *headers* as an aligned ASCII table."""
    rendered = [[format_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


@dataclass(slots=True)
class FigureResult:
    """The reproduced data behind one figure of the paper."""

    figure: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"{self.figure}: {self.title}", ""]
        parts.append(format_table(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(parts)

    def column(self, header: str) -> list[object]:
        """All values of the column named *header*."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        return self.render()
