"""Running matchers over corpora, with timing and DNF handling.

The harness runs each :class:`~repro.baselines.common.EventMatcher` over
each :class:`~repro.synthesis.corpus.LogPair`, measures wall-clock time,
evaluates the found correspondences against ground truth, and aggregates
macro averages per matcher — the quantities the paper's figures report.

A matcher that exceeds its search budget (OPQ beyond its event cap) is
recorded as *did-not-finish*, mirroring how the paper plots OPQ in
Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.baselines.bhv import BHVMatcher
from repro.baselines.common import EventMatcher
from repro.baselines.composite_wrapper import GreedyCompositeWrapper
from repro.baselines.ged import GEDMatcher
from repro.baselines.opq import OPQMatcher
from repro.core.config import EMSConfig
from repro.exceptions import SearchBudgetExceeded
from repro.matchers import EMSCompositeMatcher, EMSMatcher
from repro.matching.evaluation import MatchEvaluation, evaluate
from repro.obs.clock import Clock, default_clock
from repro.similarity.labels import LabelSimilarity, QGramCosineSimilarity
from repro.synthesis.corpus import LogPair


@dataclass(frozen=True, slots=True)
class MatcherRun:
    """One matcher applied to one log pair."""

    matcher_name: str
    pair_name: str
    evaluation: MatchEvaluation | None
    seconds: float
    diagnostics: Mapping[str, float] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.evaluation is not None

    @property
    def f_measure(self) -> float:
        return self.evaluation.f_measure if self.evaluation else 0.0


def run_matcher_on_pair(
    matcher: EventMatcher, pair: LogPair, clock: Clock | None = None
) -> MatcherRun:
    """Time one matcher on one pair; budget blow-ups become DNF runs.

    *clock* defaults to the shared production clock
    (:data:`repro.obs.clock.default_clock`); tests inject a
    :class:`~repro.obs.clock.FakeClock` for deterministic timings.
    """
    if clock is None:
        clock = default_clock
    start = clock()
    try:
        outcome = matcher.match(pair.log_first, pair.log_second)
    except SearchBudgetExceeded:
        return MatcherRun(matcher.name, pair.name, None, clock() - start)
    seconds = clock() - start
    evaluation = evaluate(pair.truth, outcome.correspondences)
    return MatcherRun(matcher.name, pair.name, evaluation, seconds, outcome.diagnostics)


def run_matrix(
    matchers: Sequence[EventMatcher],
    pairs: Sequence[LogPair],
    clock: Clock | None = None,
) -> list[MatcherRun]:
    """Every matcher on every pair, in a deterministic order."""
    return [
        run_matcher_on_pair(matcher, pair, clock)
        for matcher in matchers
        for pair in pairs
    ]


@dataclass(frozen=True, slots=True)
class Aggregate:
    """Macro-averaged accuracy and total time of a matcher over pairs."""

    matcher_name: str
    mean_f_measure: float
    mean_precision: float
    mean_recall: float
    total_seconds: float
    pair_count: int
    dnf_count: int

    @property
    def finished_all(self) -> bool:
        return self.dnf_count == 0


def aggregate_runs(runs: Sequence[MatcherRun]) -> dict[str, Aggregate]:
    """Group *runs* by matcher and macro-average the finished ones."""
    grouped: dict[str, list[MatcherRun]] = {}
    for run in runs:
        grouped.setdefault(run.matcher_name, []).append(run)
    result: dict[str, Aggregate] = {}
    for name, matcher_runs in grouped.items():
        finished = [run for run in matcher_runs if run.finished]
        count = len(finished)
        result[name] = Aggregate(
            matcher_name=name,
            mean_f_measure=(
                sum(run.evaluation.f_measure for run in finished) / count if count else 0.0
            ),
            mean_precision=(
                sum(run.evaluation.precision for run in finished) / count if count else 0.0
            ),
            mean_recall=(
                sum(run.evaluation.recall for run in finished) / count if count else 0.0
            ),
            total_seconds=sum(run.seconds for run in matcher_runs),
            pair_count=len(matcher_runs),
            dnf_count=len(matcher_runs) - count,
        )
    return result


def mean_diagnostic(runs: Sequence[MatcherRun], key: str) -> float:
    """Average of a diagnostic value over the runs that report it."""
    values = [run.diagnostics[key] for run in runs if key in run.diagnostics]
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# Standard matcher line-ups (the methods each figure compares)
# ----------------------------------------------------------------------
def singleton_matchers(
    label_similarity: LabelSimilarity | None = None,
    estimation_iterations: int = 5,
    opq_max_events: int = 30,
) -> list[EventMatcher]:
    """EMS, EMS+es, GED, OPQ, BHV — the Figure 3/4/8 line-up.

    With *label_similarity* set, the iterative methods blend it in with
    ``alpha = 0.5`` and GED substitutes on labels; OPQ never uses labels
    (it is the opaque-by-design baseline, matching the paper's Figure 4
    note that "OPQ does not benefit from label similarity").
    """
    alpha = 1.0 if label_similarity is None else 0.5
    base = EMSConfig(alpha=alpha)
    return [
        EMSMatcher(base, label_similarity),
        EMSMatcher(
            base.with_(estimation_iterations=estimation_iterations), label_similarity
        ),
        GEDMatcher(label_similarity=label_similarity),
        OPQMatcher(max_events=opq_max_events),
        BHVMatcher(alpha=alpha, label_similarity=label_similarity),
    ]


def composite_matchers(
    label_similarity: LabelSimilarity | None = None,
    estimation_iterations: int = 5,
    delta: float = 0.01,
    min_confidence: float = 0.9,
    max_run_length: int = 3,
    opq_max_events: int = 30,
) -> list[EventMatcher]:
    """The Figure 10/11 line-up: every method in the greedy composite loop."""
    alpha = 1.0 if label_similarity is None else 0.5
    base = EMSConfig(alpha=alpha)
    shared = dict(
        delta=delta, min_confidence=min_confidence, max_run_length=max_run_length
    )
    return [
        EMSCompositeMatcher(base, label_similarity, **shared),
        EMSCompositeMatcher(
            base.with_(estimation_iterations=estimation_iterations),
            label_similarity,
            **shared,
        ),
        GreedyCompositeWrapper(GEDMatcher(label_similarity=label_similarity), **shared),
        GreedyCompositeWrapper(OPQMatcher(max_events=opq_max_events), **shared),
        GreedyCompositeWrapper(
            BHVMatcher(alpha=alpha, label_similarity=label_similarity), **shared
        ),
    ]


def default_label_similarity() -> LabelSimilarity:
    """The paper's label similarity: cosine over q-grams."""
    return QGramCosineSimilarity(q=3)
