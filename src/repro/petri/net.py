"""Petri nets: places, transitions, markings, firing.

The paper's synthetic models come from BeehiveZ, a Petri-net-based
workbench; this module supplies that substrate from scratch — a classic
place/transition net with labeled (or silent) transitions, the token
game, and workflow-net structure checks.  Process trees convert to
workflow nets via :mod:`repro.petri.from_tree`, and
:mod:`repro.petri.playout` samples event logs from them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import SynthesisError


@dataclass(frozen=True, slots=True)
class Transition:
    """A transition; ``label`` is the logged activity, ``None`` = silent."""

    name: str
    label: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SynthesisError("a transition needs a non-empty name")

    @property
    def is_silent(self) -> bool:
        return self.label is None


class Marking(Mapping[str, int]):
    """An immutable multiset of tokens over place names."""

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens: Mapping[str, int] | Iterable[str] = ()):
        if isinstance(tokens, Mapping):
            counted = {place: count for place, count in tokens.items() if count > 0}
            if any(count < 0 for count in tokens.values()):
                raise SynthesisError("token counts must be non-negative")
        else:
            counted = dict(Counter(tokens))
        self._tokens: dict[str, int] = counted
        self._hash = hash(frozenset(counted.items()))

    def __getitem__(self, place: str) -> int:
        return self._tokens.get(place, 0)

    def __iter__(self):
        return iter(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Marking):
            return NotImplemented
        return self._tokens == other._tokens

    def __repr__(self) -> str:
        inside = ", ".join(f"{place}:{count}" for place, count in sorted(self._tokens.items()))
        return f"Marking({{{inside}}})"

    def add(self, places: Iterable[str]) -> "Marking":
        tokens = Counter(self._tokens)
        tokens.update(places)
        return Marking(tokens)

    def remove(self, places: Iterable[str]) -> "Marking":
        tokens = Counter(self._tokens)
        for place in places:
            if tokens[place] <= 0:
                raise SynthesisError(f"no token to remove from place {place!r}")
            tokens[place] -= 1
        return Marking(tokens)

    def total(self) -> int:
        return sum(self._tokens.values())


@dataclass(slots=True)
class PetriNet:
    """A place/transition net with unweighted arcs."""

    name: str = "net"
    places: set[str] = field(default_factory=set)
    transitions: dict[str, Transition] = field(default_factory=dict)
    #: arcs place -> set of transition names it feeds
    _place_to_transition: dict[str, set[str]] = field(default_factory=dict)
    #: arcs transition -> set of places it feeds
    _transition_to_place: dict[str, set[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_place(self, place: str) -> None:
        if not place:
            raise SynthesisError("a place needs a non-empty name")
        self.places.add(place)

    def add_transition(self, name: str, label: str | None = None) -> Transition:
        if name in self.transitions:
            raise SynthesisError(f"duplicate transition {name!r}")
        transition = Transition(name, label)
        self.transitions[name] = transition
        return transition

    def add_arc(self, source: str, target: str) -> None:
        """Add an arc; one endpoint must be a place, the other a transition."""
        source_is_place = source in self.places
        target_is_place = target in self.places
        if source_is_place and target in self.transitions:
            self._place_to_transition.setdefault(source, set()).add(target)
        elif target_is_place and source in self.transitions:
            self._transition_to_place.setdefault(source, set()).add(target)
        else:
            raise SynthesisError(
                f"arc ({source!r} -> {target!r}) must connect a place and a transition"
            )

    # ------------------------------------------------------------------
    def preset(self, transition: str) -> frozenset[str]:
        """Input places of *transition*."""
        self._require_transition(transition)
        return frozenset(
            place
            for place, targets in self._place_to_transition.items()
            if transition in targets
        )

    def postset(self, transition: str) -> frozenset[str]:
        """Output places of *transition*."""
        self._require_transition(transition)
        return frozenset(self._transition_to_place.get(transition, frozenset()))

    def place_postset(self, place: str) -> frozenset[str]:
        """Transitions consuming from *place*."""
        if place not in self.places:
            raise SynthesisError(f"unknown place {place!r}")
        return frozenset(self._place_to_transition.get(place, frozenset()))

    def _require_transition(self, transition: str) -> None:
        if transition not in self.transitions:
            raise SynthesisError(f"unknown transition {transition!r}")

    # ------------------------------------------------------------------
    def enabled(self, marking: Marking) -> list[str]:
        """Transitions whose every input place holds a token."""
        result = []
        for name in sorted(self.transitions):
            preset = self.preset(name)
            if preset and all(marking[place] >= 1 for place in preset):
                result.append(name)
        return result

    def fire(self, marking: Marking, transition: str) -> Marking:
        """Fire *transition*: consume one token per input place, produce
        one per output place."""
        preset = self.preset(transition)
        if not preset:
            raise SynthesisError(f"transition {transition!r} has no input places")
        if any(marking[place] < 1 for place in preset):
            raise SynthesisError(f"transition {transition!r} is not enabled")
        return marking.remove(preset).add(self.postset(transition))

    # ------------------------------------------------------------------
    def source_places(self) -> set[str]:
        """Places with no incoming arcs."""
        fed = {place for places in self._transition_to_place.values() for place in places}
        return self.places - fed

    def sink_places(self) -> set[str]:
        """Places with no outgoing arcs."""
        return {place for place in self.places if not self._place_to_transition.get(place)}

    def is_workflow_net(self) -> bool:
        """Single source place, single sink place, every node on a path
        between them (weak connectivity approximation)."""
        sources = self.source_places()
        sinks = self.sink_places()
        if len(sources) != 1 or len(sinks) != 1:
            return False
        # Every transition must have both a preset and a postset.
        return all(
            self.preset(name) and self.postset(name) for name in self.transitions
        )

    def initial_marking(self) -> Marking:
        """One token on the (unique) source place."""
        sources = self.source_places()
        if len(sources) != 1:
            raise SynthesisError(
                f"net has {len(sources)} source places; expected exactly 1"
            )
        return Marking(sources)

    def final_marking(self) -> Marking:
        """One token on the (unique) sink place."""
        sinks = self.sink_places()
        if len(sinks) != 1:
            raise SynthesisError(f"net has {len(sinks)} sink places; expected exactly 1")
        return Marking(sinks)
