"""Petri-net substrate: the BeehiveZ-style workflow-model class."""

from repro.petri.from_tree import tree_to_petri
from repro.petri.net import Marking, PetriNet, Transition
from repro.petri.playout import play_out_net, sample_trace
from repro.petri.pnml import read_pnml, write_pnml

__all__ = [
    "PetriNet",
    "Transition",
    "Marking",
    "tree_to_petri",
    "sample_trace",
    "play_out_net",
    "read_pnml",
    "write_pnml",
]
