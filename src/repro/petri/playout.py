"""Sampling event logs from Petri nets (the BeehiveZ-style generator).

A trace is sampled by playing the token game from the initial marking:
pick an enabled transition uniformly at random, fire it, log its label
(silent transitions log nothing), stop when the final marking is reached
or nothing is enabled.  A step bound guards against unbounded loops.
"""

from __future__ import annotations

import random

from repro.exceptions import SynthesisError
from repro.logs.events import Trace
from repro.logs.log import EventLog
from repro.petri.net import Marking, PetriNet


def sample_trace(
    net: PetriNet,
    rng: random.Random,
    initial: Marking | None = None,
    final: Marking | None = None,
    max_steps: int = 1_000,
) -> list[str]:
    """One run of the token game; returns the visible activity sequence.

    Raises :class:`SynthesisError` on deadlock before the final marking
    or when *max_steps* fire without completing (a livelock guard).
    """
    marking = initial if initial is not None else net.initial_marking()
    target = final if final is not None else net.final_marking()
    activities: list[str] = []
    for _ in range(max_steps):
        if marking == target:
            return activities
        enabled = net.enabled(marking)
        if not enabled:
            raise SynthesisError(
                f"deadlock at {marking!r} before reaching the final marking"
            )
        transition = rng.choice(enabled)
        marking = net.fire(marking, transition)
        label = net.transitions[transition].label
        if label is not None:
            activities.append(label)
    raise SynthesisError(f"no completion within {max_steps} steps (livelock?)")


def play_out_net(
    net: PetriNet,
    num_traces: int,
    rng: random.Random,
    name: str | None = None,
    case_prefix: str = "case",
    max_steps: int = 1_000,
) -> EventLog:
    """Sample *num_traces* traces from *net* into an event log.

    Empty visible runs (all-silent paths) are redrawn a bounded number of
    times, mirroring :func:`repro.synthesis.playout.play_out`.
    """
    if num_traces < 1:
        raise SynthesisError(f"num_traces must be >= 1, got {num_traces}")
    log = EventLog(name=name if name is not None else net.name)
    for index in range(num_traces):
        activities = sample_trace(net, rng, max_steps=max_steps)
        redraws = 0
        while not activities:
            redraws += 1
            if redraws > 100:
                raise SynthesisError("net produces only silent runs")
            activities = sample_trace(net, rng, max_steps=max_steps)
        log.append(Trace(activities, case_id=f"{case_prefix}-{index}"))
    return log
