"""Converting process trees to workflow nets.

The standard compositional construction: every tree node becomes a net
fragment with one entry and one exit place; operators wire their
children's fragments together with silent transitions where control flow
requires them.  The result is a workflow net whose trace language equals
the tree's (loops bounded by the tree's ``max_repeats`` are approximated
by an unbounded loop — the net can repeat more often than the tree).
"""

from __future__ import annotations

from itertools import count

from repro.exceptions import SynthesisError
from repro.petri.net import PetriNet
from repro.synthesis.process_tree import (
    Choice,
    Leaf,
    Loop,
    Parallel,
    ProcessTree,
    Sequence,
    Silent,
)


class _Builder:
    def __init__(self, net: PetriNet):
        self.net = net
        self._place_counter = count()
        self._silent_counter = count()

    def new_place(self) -> str:
        name = f"p{next(self._place_counter)}"
        self.net.add_place(name)
        return name

    def silent(self, entry: str, exit_: str) -> None:
        name = f"tau{next(self._silent_counter)}"
        self.net.add_transition(name, label=None)
        self.net.add_arc(entry, name)
        self.net.add_arc(name, exit_)

    # ------------------------------------------------------------------
    def build(self, tree: ProcessTree, entry: str, exit_: str) -> None:
        if isinstance(tree, Leaf):
            name = f"t_{tree.activity}"
            if name in self.net.transitions:
                name = f"{name}#{next(self._silent_counter)}"
            self.net.add_transition(name, label=tree.activity)
            self.net.add_arc(entry, name)
            self.net.add_arc(name, exit_)
        elif isinstance(tree, Silent):
            self.silent(entry, exit_)
        elif isinstance(tree, Sequence):
            current = entry
            for index, child in enumerate(tree.children):
                is_last = index == len(tree.children) - 1
                nxt = exit_ if is_last else self.new_place()
                self.build(child, current, nxt)
                current = nxt
        elif isinstance(tree, Choice):
            for child in tree.children:
                self.build(child, entry, exit_)
        elif isinstance(tree, Parallel):
            split = f"and_split{next(self._silent_counter)}"
            join = f"and_join{next(self._silent_counter)}"
            self.net.add_transition(split, label=None)
            self.net.add_transition(join, label=None)
            self.net.add_arc(entry, split)
            self.net.add_arc(join, exit_)
            for child in tree.children:
                child_entry = self.new_place()
                child_exit = self.new_place()
                self.net.add_arc(split, child_entry)
                self.net.add_arc(child_exit, join)
                self.build(child, child_entry, child_exit)
        elif isinstance(tree, Loop):
            # A dedicated loop-entry place keeps the fragment's entry free
            # of back-arcs (so a root-level loop still yields a workflow
            # net with a unique source place).
            loop_entry = self.new_place()
            body_exit = self.new_place()
            self.silent(entry, loop_entry)
            self.build(tree.body, loop_entry, body_exit)
            self.silent(body_exit, exit_)  # leave the loop
            self.build(tree.redo, body_exit, loop_entry)  # redo then body again
        else:
            raise SynthesisError(f"unknown tree node type {type(tree).__name__}")


def tree_to_petri(tree: ProcessTree, name: str = "workflow") -> PetriNet:
    """Convert *tree* into a workflow net with unique source/sink places."""
    net = PetriNet(name=name)
    builder = _Builder(net)
    source = builder.new_place()
    sink = builder.new_place()
    builder.build(tree, source, sink)
    return net
