"""PNML (Petri Net Markup Language, ISO/IEC 15909-2) reader and writer.

The standard interchange format for workflow models — what BeehiveZ and
ProM exchange.  Only the place/transition-net subset is supported:
places, transitions with names (silent transitions carry no name or the
conventional ``$invisible$`` tool hint), and arcs.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from typing import IO

from repro.exceptions import LogFormatError
from repro.petri.net import PetriNet

_SILENT_MARKER = "$invisible$"


def write_pnml(net: PetriNet, destination: str | os.PathLike[str] | IO[bytes]) -> None:
    """Serialize *net* as PNML to *destination* (path or binary file)."""
    root = ET.Element("pnml")
    net_element = ET.SubElement(
        root, "net", attrib={"id": net.name, "type": "http://www.pnml.org/version-2009/grammar/ptnet"}
    )
    page = ET.SubElement(net_element, "page", attrib={"id": "page0"})
    for place in sorted(net.places):
        place_element = ET.SubElement(page, "place", attrib={"id": place})
        _set_name(place_element, place)
    for name in sorted(net.transitions):
        transition = net.transitions[name]
        transition_element = ET.SubElement(page, "transition", attrib={"id": name})
        _set_name(
            transition_element,
            transition.label if transition.label is not None else _SILENT_MARKER,
        )
    arc_id = 0
    for name in sorted(net.transitions):
        for place in sorted(net.preset(name)):
            ET.SubElement(
                page, "arc",
                attrib={"id": f"arc{arc_id}", "source": place, "target": name},
            )
            arc_id += 1
        for place in sorted(net.postset(name)):
            ET.SubElement(
                page, "arc",
                attrib={"id": f"arc{arc_id}", "source": name, "target": place},
            )
            arc_id += 1
    tree = ET.ElementTree(root)
    ET.indent(tree)
    tree.write(destination, encoding="utf-8", xml_declaration=True)


def _set_name(element: ET.Element, text: str) -> None:
    name = ET.SubElement(element, "name")
    value = ET.SubElement(name, "text")
    value.text = text


def read_pnml(source: str | os.PathLike[str] | IO[bytes]) -> PetriNet:
    """Parse a PNML document at *source* into a :class:`PetriNet`."""
    try:
        tree = ET.parse(source)
    except ET.ParseError as exc:
        raise LogFormatError(f"malformed PNML document: {exc}") from exc
    root = tree.getroot()

    def local(tag: str) -> str:
        return tag.rsplit("}", 1)[-1]

    if local(root.tag) != "pnml":
        raise LogFormatError(f"expected a <pnml> root element, found <{root.tag}>")
    net_element = next(
        (child for child in root if local(child.tag) == "net"), None
    )
    if net_element is None:
        raise LogFormatError("PNML document contains no <net> element")

    net = PetriNet(name=net_element.get("id", "net"))
    arcs: list[tuple[str, str]] = []

    def walk(element: ET.Element) -> None:
        for child in element:
            tag = local(child.tag)
            if tag == "place":
                identifier = child.get("id")
                if identifier is None:
                    raise LogFormatError("place without an id")
                net.add_place(identifier)
            elif tag == "transition":
                identifier = child.get("id")
                if identifier is None:
                    raise LogFormatError("transition without an id")
                label = _read_name(child, local)
                if label is None or label == _SILENT_MARKER:
                    net.add_transition(identifier, label=None)
                else:
                    net.add_transition(identifier, label=label)
            elif tag == "arc":
                source_id = child.get("source")
                target_id = child.get("target")
                if source_id is None or target_id is None:
                    raise LogFormatError("arc without source/target")
                arcs.append((source_id, target_id))
            elif tag == "page":
                walk(child)

    walk(net_element)
    for source_id, target_id in arcs:
        net.add_arc(source_id, target_id)
    return net


def _read_name(element: ET.Element, local) -> str | None:
    for child in element:
        if local(child.tag) == "name":
            for grandchild in child:
                if local(grandchild.tag) == "text":
                    return grandchild.text
    return None
