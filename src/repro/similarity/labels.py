"""Label (typographic) similarity functions ``S^L``.

Definition 2 blends the structural similarity with a label similarity via
``alpha``; the concrete ``S^L`` is pluggable.  All implementations here
are symmetric, return values in [0, 1], and score identical strings 1.0
(except :class:`OpaqueSimilarity`, which models the no-label-information
setting by always returning 0).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.similarity.levenshtein import levenshtein_similarity
from repro.similarity.qgrams import qgram_cosine


@runtime_checkable
class LabelSimilarity(Protocol):
    """A symmetric string similarity in [0, 1]."""

    def __call__(self, first: str, second: str) -> float: ...


class OpaqueSimilarity:
    """Always 0: the setting where labels carry no usable information.

    Used for the structural-only experiments (Figures 3, 10) and as the
    default — the paper's headline scenario is opaque names.
    """

    def __call__(self, first: str, second: str) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "OpaqueSimilarity()"


class ExactSimilarity:
    """1.0 iff the labels are equal (case-insensitive), else 0."""

    def __call__(self, first: str, second: str) -> float:
        return 1.0 if first.lower() == second.lower() else 0.0

    def __repr__(self) -> str:
        return "ExactSimilarity()"


class QGramCosineSimilarity:
    """Cosine similarity of padded q-gram vectors (the paper's choice)."""

    def __init__(self, q: int = 3):
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = q
        self._cache: dict[tuple[str, str], float] = {}

    def __call__(self, first: str, second: str) -> float:
        key = (first, second) if first <= second else (second, first)
        cached = self._cache.get(key)
        if cached is None:
            cached = qgram_cosine(first, second, self.q)
            self._cache[key] = cached
        return cached

    def __repr__(self) -> str:
        return f"QGramCosineSimilarity(q={self.q})"


class LevenshteinSimilarity:
    """Normalized string edit similarity."""

    def __init__(self):
        self._cache: dict[tuple[str, str], float] = {}

    def __call__(self, first: str, second: str) -> float:
        key = (first, second) if first <= second else (second, first)
        cached = self._cache.get(key)
        if cached is None:
            cached = levenshtein_similarity(first, second)
            self._cache[key] = cached
        return cached

    def __repr__(self) -> str:
        return "LevenshteinSimilarity()"


class JaccardTokenSimilarity:
    """Jaccard index over lower-cased whitespace tokens.

    A cheap word-level similarity useful for long descriptive labels
    ("Check Inventory" vs "Inventory Checking & Validation").
    """

    def __call__(self, first: str, second: str) -> float:
        tokens_first = set(first.lower().split())
        tokens_second = set(second.lower().split())
        if not tokens_first and not tokens_second:
            return 1.0
        if not tokens_first or not tokens_second:
            return 0.0
        intersection = len(tokens_first & tokens_second)
        union = len(tokens_first | tokens_second)
        return intersection / union


class CompositeAwareSimilarity:
    """Adapter scoring composite nodes by their member sets.

    A merged node ``⟨C+D⟩`` should be compared to a label like
    "Inventory Checking & Validation" through its members, not through the
    synthetic bracket syntax.  Given the member maps of both graphs, this
    wrapper scores a node pair symmetrically: every member on each side
    finds its best match on the other side, and the two per-side averages
    are averaged.  The symmetric form matters for the greedy composite
    loop — a one-sided best-match average only ever grows under merging,
    which would let label similarity push the loop into runaway merges.
    """

    def __init__(
        self,
        base: LabelSimilarity,
        members_first: dict[str, frozenset[str]],
        members_second: dict[str, frozenset[str]],
    ):
        self.base = base
        self.members_first = members_first
        self.members_second = members_second

    def __call__(self, first: str, second: str) -> float:
        left = sorted(self.members_first.get(first, frozenset({first})))
        right = sorted(self.members_second.get(second, frozenset({second})))
        left_coverage = sum(
            max(self.base(member, other) for other in right) for member in left
        ) / len(left)
        right_coverage = sum(
            max(self.base(member, other) for other in left) for member in right
        ) / len(right)
        return (left_coverage + right_coverage) / 2.0
