"""Jaro and Jaro-Winkler string similarities.

A classic typographic similarity family well-suited to short labels with
transpositions ("Check Inventory" vs "Inventory Check" style noise at the
token level is better served by q-grams, but character-level swaps and
prefixes favour Jaro-Winkler).  Provided as an alternative ``S^L``.
"""

from __future__ import annotations


def jaro_similarity(first: str, second: str) -> float:
    """The Jaro similarity of two strings, in [0, 1]."""
    if first == second:
        return 1.0
    if not first or not second:
        return 0.0
    window = max(len(first), len(second)) // 2 - 1
    window = max(window, 0)

    matched_first = [False] * len(first)
    matched_second = [False] * len(second)
    matches = 0
    for i, char in enumerate(first):
        start = max(0, i - window)
        stop = min(i + window + 1, len(second))
        for j in range(start, stop):
            if matched_second[j] or second[j] != char:
                continue
            matched_first[i] = True
            matched_second[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, was_matched in enumerate(matched_first):
        if not was_matched:
            continue
        while not matched_second[j]:
            j += 1
        if first[i] != second[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(first)
        + matches / len(second)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(first: str, second: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by the common prefix (up to 4 chars)."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    jaro = jaro_similarity(first, second)
    prefix = 0
    for char_first, char_second in zip(first[:4], second[:4]):
        if char_first != char_second:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


class JaroWinklerSimilarity:
    """A :class:`repro.similarity.labels.LabelSimilarity` using Jaro-Winkler."""

    def __init__(self, prefix_scale: float = 0.1):
        if not 0.0 <= prefix_scale <= 0.25:
            raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
        self.prefix_scale = prefix_scale

    def __call__(self, first: str, second: str) -> float:
        return jaro_winkler_similarity(first.lower(), second.lower(), self.prefix_scale)

    def __repr__(self) -> str:
        return f"JaroWinklerSimilarity(prefix_scale={self.prefix_scale})"
