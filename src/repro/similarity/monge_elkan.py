"""Monge-Elkan similarity: token-level best-match averaging.

The standard hybrid string measure for multi-word labels ("Check
Inventory" vs "Inventory Check & Validation"): split both labels into
tokens, score every token of the first against its best match in the
second with an inner character-level similarity, and average.  The
symmetric variant averages both directions — the same construction the
composite-aware adapter uses for member sets.
"""

from __future__ import annotations

from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.labels import LabelSimilarity


def monge_elkan(
    first: str,
    second: str,
    inner: LabelSimilarity | None = None,
) -> float:
    """One-directional Monge-Elkan score of *first* against *second*."""
    scorer = inner if inner is not None else jaro_winkler_similarity
    tokens_first = first.lower().split()
    tokens_second = second.lower().split()
    if not tokens_first and not tokens_second:
        return 1.0
    if not tokens_first or not tokens_second:
        return 0.0
    return sum(
        max(scorer(token, other) for other in tokens_second)
        for token in tokens_first
    ) / len(tokens_first)


def symmetric_monge_elkan(
    first: str,
    second: str,
    inner: LabelSimilarity | None = None,
) -> float:
    """Average of both Monge-Elkan directions (a symmetric measure)."""
    return (monge_elkan(first, second, inner) + monge_elkan(second, first, inner)) / 2.0


class MongeElkanSimilarity:
    """A :class:`LabelSimilarity` using symmetric Monge-Elkan."""

    def __init__(self, inner: LabelSimilarity | None = None):
        self.inner = inner
        self._cache: dict[tuple[str, str], float] = {}

    def __call__(self, first: str, second: str) -> float:
        key = (first, second) if first <= second else (second, first)
        cached = self._cache.get(key)
        if cached is None:
            cached = symmetric_monge_elkan(first, second, self.inner)
            self._cache[key] = cached
        return cached

    def __repr__(self) -> str:
        return f"MongeElkanSimilarity(inner={self.inner!r})"
