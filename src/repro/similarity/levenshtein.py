"""Levenshtein edit distance and the normalized similarity derived from it.

String edit distance [Levenshtein 1966] is the classic syntactic label
similarity the paper cites as the straightforward (and, on opaque names,
ineffective) approach.  Implemented with the standard two-row dynamic
program, O(len(a) * len(b)) time and O(min) space.
"""

from __future__ import annotations


def levenshtein_distance(first: str, second: str) -> int:
    """The minimum number of single-character edits between two strings."""
    if first == second:
        return 0
    if len(first) < len(second):
        first, second = second, first
    if not second:
        return len(first)
    previous = list(range(len(second) + 1))
    for row, char_a in enumerate(first, start=1):
        current = [row]
        for column, char_b in enumerate(second, start=1):
            insertion = current[column - 1] + 1
            deletion = previous[column] + 1
            substitution = previous[column - 1] + (char_a != char_b)
            current.append(min(insertion, deletion, substitution))
        previous = current
    return previous[-1]


def levenshtein_similarity(first: str, second: str) -> float:
    """``1 - distance / max_length``, in [0, 1]; 1.0 for two empty strings."""
    longest = max(len(first), len(second))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(first.lower(), second.lower()) / longest
