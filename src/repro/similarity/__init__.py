"""Label (typographic) similarity functions."""

from repro.similarity.labels import (
    CompositeAwareSimilarity,
    ExactSimilarity,
    JaccardTokenSimilarity,
    LabelSimilarity,
    LevenshteinSimilarity,
    OpaqueSimilarity,
    QGramCosineSimilarity,
)
from repro.similarity.jaro import (
    JaroWinklerSimilarity,
    jaro_similarity,
    jaro_winkler_similarity,
)
from repro.similarity.levenshtein import levenshtein_distance, levenshtein_similarity
from repro.similarity.monge_elkan import (
    MongeElkanSimilarity,
    monge_elkan,
    symmetric_monge_elkan,
)
from repro.similarity.qgrams import qgram_cosine, qgrams

__all__ = [
    "LabelSimilarity",
    "OpaqueSimilarity",
    "ExactSimilarity",
    "QGramCosineSimilarity",
    "LevenshteinSimilarity",
    "JaccardTokenSimilarity",
    "CompositeAwareSimilarity",
    "JaroWinklerSimilarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "MongeElkanSimilarity",
    "monge_elkan",
    "symmetric_monge_elkan",
    "levenshtein_distance",
    "levenshtein_similarity",
    "qgram_cosine",
    "qgrams",
]
