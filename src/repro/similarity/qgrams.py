"""q-gram tokenization and cosine similarity over q-gram vectors.

The paper's experiments use "a state-of-the-art string similarity measure,
cosine similarity with q-grams" (Gravano et al., WWW 2003) as the label
similarity ``S^L``.  Strings are padded with ``q - 1`` boundary markers on
each side, as is standard, so that prefixes and suffixes contribute
distinguishable grams.
"""

from __future__ import annotations

import math
from collections import Counter

_PAD = ""  # non-printable boundary marker; cannot occur in labels


def qgrams(text: str, q: int = 3) -> Counter[str]:
    """The multiset of padded q-grams of *text*.

    An empty string yields an empty multiset.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if not text:
        return Counter()
    padded = _PAD * (q - 1) + text.lower() + _PAD * (q - 1)
    return Counter(padded[i : i + q] for i in range(len(padded) - q + 1))


def cosine(left: Counter[str], right: Counter[str]) -> float:
    """Cosine similarity of two sparse count vectors, in [0, 1]."""
    if not left or not right:
        return 0.0
    # Iterate over the smaller vector for the dot product.
    if len(left) > len(right):
        left, right = right, left
    dot = sum(count * right[gram] for gram, count in left.items())
    if dot == 0:
        return 0.0
    norm_left = math.sqrt(sum(count * count for count in left.values()))
    norm_right = math.sqrt(sum(count * count for count in right.values()))
    return dot / (norm_left * norm_right)


def qgram_cosine(first: str, second: str, q: int = 3) -> float:
    """Cosine similarity of the padded q-gram vectors of two strings."""
    return cosine(qgrams(first, q), qgrams(second, q))
