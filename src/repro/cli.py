"""Command line interface: match two serialized event logs.

Usage::

    python -m repro match LOG1 LOG2 [--format xes|csv] [--composite]
                                    [--alpha A] [--labels] [--threshold T]
                                    [--estimate I] [--json]

Reads the two logs (XES or CSV, auto-detected from the extension by
default), runs EMS matching, and prints the found correspondences with
their similarity — or a JSON document with ``--json`` for scripting.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import EMSConfig
from repro.logs.csvio import read_csv
from repro.logs.log import EventLog
from repro.logs.xes import read_xes
from repro.matchers import EMSCompositeMatcher, EMSMatcher
from repro.similarity.labels import QGramCosineSimilarity


def load_log(path: str, fmt: str = "auto") -> EventLog:
    """Load an event log from *path* (XES or CSV)."""
    resolved = Path(path)
    if fmt == "auto":
        suffix = resolved.suffix.lower()
        if suffix == ".xes":
            fmt = "xes"
        elif suffix == ".csv":
            fmt = "csv"
        else:
            raise SystemExit(
                f"cannot infer the format of {path!r}; pass --format xes|csv"
            )
    if fmt == "xes":
        return read_xes(resolved)
    if fmt == "csv":
        return read_csv(resolved, name=resolved.stem)
    raise SystemExit(f"unknown format {fmt!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Match events across two heterogeneous event logs (EMS, SIGMOD 2014).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    match = commands.add_parser("match", help="match two event logs")
    match.add_argument("log_first", help="first event log (.xes or .csv)")
    match.add_argument("log_second", help="second event log (.xes or .csv)")
    match.add_argument("--format", choices=("auto", "xes", "csv"), default="auto")
    match.add_argument(
        "--composite", action="store_true",
        help="enable m:n composite event matching (Algorithm 2)",
    )
    match.add_argument(
        "--labels", action="store_true",
        help="blend in q-gram cosine label similarity (alpha = 0.5 unless set)",
    )
    match.add_argument("--alpha", type=float, default=None,
                       help="structural weight in [0, 1]")
    match.add_argument("--threshold", type=float, default=0.0,
                       help="minimum similarity for a reported pair")
    match.add_argument("--estimate", type=int, default=None, metavar="I",
                       help="use the EMS+es estimation with I exact iterations")
    match.add_argument("--delta", type=float, default=0.01,
                       help="composite-merge improvement threshold")
    match.add_argument("--json", action="store_true", help="machine-readable output")
    match.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write a Markdown matching report to PATH",
    )
    return parser


def run_match(arguments: argparse.Namespace) -> int:
    log_first = load_log(arguments.log_first, arguments.format)
    log_second = load_log(arguments.log_second, arguments.format)

    label_similarity = QGramCosineSimilarity() if arguments.labels else None
    alpha = arguments.alpha
    if alpha is None:
        alpha = 0.5 if arguments.labels else 1.0
    config = EMSConfig(alpha=alpha, estimation_iterations=arguments.estimate)

    if arguments.composite:
        matcher = EMSCompositeMatcher(
            config, label_similarity,
            threshold=arguments.threshold, delta=arguments.delta,
        )
    else:
        matcher = EMSMatcher(config, label_similarity, threshold=arguments.threshold)
    outcome = matcher.match(log_first, log_second)

    if arguments.report:
        from repro.reporting import render_match_report

        report = render_match_report(log_first, log_second, outcome, matcher.name)
        Path(arguments.report).write_text(report, encoding="utf-8")

    if arguments.json:
        payload = {
            "log_first": log_first.name,
            "log_second": log_second.name,
            "matcher": matcher.name,
            "objective": outcome.objective,
            "correspondences": [
                {"left": sorted(c.left), "right": sorted(c.right)}
                for c in outcome.correspondences
            ],
            "diagnostics": dict(outcome.diagnostics),
        }
        json.dump(payload, sys.stdout, indent=2, ensure_ascii=False)
        print()
        return 0

    print(f"{matcher.name}: {log_first.name} <-> {log_second.name} "
          f"(average similarity {outcome.objective:.3f})")
    for correspondence in sorted(outcome.correspondences, key=lambda c: min(c.left)):
        marker = "  [m:n]" if correspondence.is_composite() else ""
        print(f"  {' + '.join(sorted(correspondence.left))} <-> "
              f"{' + '.join(sorted(correspondence.right))}{marker}")
    if not outcome.correspondences:
        print("  (no correspondences above the threshold)")
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.command == "match":
        return run_match(arguments)
    raise SystemExit(f"unknown command {arguments.command!r}")
