"""Command line interface: match two serialized event logs.

Usage::

    python -m repro match LOG1 LOG2 [--format xes|csv] [--composite]
                                    [--alpha A] [--labels] [--threshold T]
                                    [--estimate I] [--json] [--workers N]
                                    [--kernel K] [--dtype D]
                                    [--timeout S] [--pair-budget N]
                                    [--no-degrade] [--on-error MODE]
                                    [--dead-letter-dir DIR]
                                    [--checkpoint-dir DIR] [--resume]
                                    [--checkpoint-every N]
                                    [--max-retries N] [--task-timeout S]
                                    [--shard-traces N] [--parallel-ingest N]
                                    [--store PATH]
                                    [--trace-out PATH] [--metrics-out PATH]
                                    [--manifest-out PATH] [--log-level LEVEL]
    python -m repro stats LOG [--format xes|csv] [--on-error MODE]
                              [--shard-traces N] [--parallel-ingest N]
                              [--store PATH] [--from-store] [--top N]
                              [--json] [--metrics-out PATH]
                              [--log-level LEVEL]
    python -m repro serve --store-dir DIR [--host H] [--port N]
                          [--workers N] [--watch-dir DIR]
                          [--max-attempts N] [--poll-interval S]
                          [--log-level LEVEL]

Reads the two logs (XES or CSV, auto-detected from the extension by
default), runs EMS matching, and prints the found correspondences with
their similarity — or a JSON document with ``--json`` for scripting.

Failure behaviour (see ``docs/robustness.md``):

* exit 0 — a result was produced, possibly degraded within the budget;
* exit 2 — the inputs could not be read (bad format, missing file, ...);
* exit 3 — the budget was exhausted and degradation was disabled;
* exit 4 — the worker pool could not be kept alive (unrecoverable
  environment failure; retrying the invocation may help, fixing the
  machine will).

``--timeout``/``--pair-budget`` bound the matching work;
``--on-error skip|repair`` makes ingestion fault-tolerant, with the
dropped/repaired rows accounted in the ``--json`` output and the
Markdown report, and ``--dead-letter-dir`` preserves every rejected
record (original bytes + error context, content-addressed) for offline
triage and idempotent re-submission.

Durable execution (composite mode): ``--checkpoint-dir`` snapshots the
greedy search after accepted rounds (atomically, keyed by a content
hash of the inputs and configuration), ``--resume`` continues from the
latest matching snapshot bit-identically, and SIGINT/SIGTERM flush a
final checkpoint and return the best-so-far result as a ``partial``
stage instead of dying mid-round.  ``--max-retries``/``--task-timeout``
tune the worker supervision (retry with backoff, pool respawn, poison-
candidate quarantine).

Observability (see ``docs/observability.md``): ``--trace-out`` writes a
Chrome-trace JSON of the run's spans, ``--metrics-out`` a Prometheus
text exposition, ``--manifest-out`` a run-manifest JSON (config +
environment + per-stage timings), and ``--log-level`` enables library
logging to stderr.

Scale (see ``docs/scale.md``): ``--shard-traces N`` ingests each log
out-of-core in blocks of N traces (peak memory O(shard), not O(log)),
``--parallel-ingest N`` counts the blocks in N supervised worker
processes, and ``--store PATH`` opens a persistent SQLite match store:
counts, dependency graphs, per-trace rows (aggregated by SQL window
functions) and finished similarity matrices are all memoized, so a
repeated log pair skips parse, graph build *and* the EMS fixpoint
(``"match_mode": "store"`` in the JSON output), and a pair with one
appended-to side warm-starts the fixpoint from the stored matrix
(``"store-partial"``).  These flags select a statistics-backed
singleton matching that never materializes the logs, so they are
incompatible with ``--composite`` and ``--report``; results are
bit-identical to the in-memory path.  ``stats`` runs the same ingestion
pipeline without matching and prints the log's Definition-1 statistics;
``stats --from-store`` answers from the store's trace rows alone,
without reading the file.

Serving (see ``docs/service.md``): ``serve`` runs the long-lived
matching daemon — a persistent job queue with content-hash dedup, a
thread scheduler with checkpoint-backed crash recovery, a watch-folder
ingester, and a JSON/REST API with Prometheus ``/metrics``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import EMSConfig
from repro.exceptions import (
    BudgetExhausted,
    LogFormatError,
    ReproError,
    WorkerPoolError,
)
from repro.logs.csvio import read_csv
from repro.logs.log import EventLog
from repro.logs.xes import read_xes
from repro.matchers import EMSCompositeMatcher, EMSMatcher
from repro.obs import (
    NULL_OBSERVER,
    MetricsRegistry,
    Observer,
    RunManifest,
    Tracer,
    configure_logging,
)
from repro.runtime import (
    CheckpointManager,
    DeadLetterArchive,
    DegradationPolicy,
    EvaluationCache,
    FaultPlan,
    IngestionReport,
    InterruptGuard,
    MatchBudget,
    RetryPolicy,
)
from repro.similarity.labels import QGramCosineSimilarity
from repro.store import (
    DEFAULT_BLOCK_TRACES,
    IngestResult,
    MatchStore,
    ingest_graph,
    ingest_key,
    ingest_statistics,
    match_stored,
    resolve_format,
)

#: Exit code for unreadable/invalid inputs.
EXIT_INPUT_ERROR = 2
#: Exit code for budget exhaustion with the degradation ladder disabled.
EXIT_BUDGET_EXHAUSTED = 3
#: Exit code for an unrecoverable worker-pool failure (the pool died
#: repeatedly before completing any work; see docs/robustness.md).
EXIT_WORKER_FAILURE = 4


def load_log(
    path: str,
    fmt: str = "auto",
    on_error: str = "raise",
    report: IngestionReport | None = None,
) -> EventLog:
    """Load an event log from *path* (XES or CSV).

    Raises :class:`LogFormatError` for unrecognized or unparseable
    inputs — callers decide how to present that (the CLI maps it to exit
    code 2 in :func:`main`).
    """
    resolved = Path(path)
    if fmt == "auto":
        suffix = resolved.suffix.lower()
        if suffix == ".xes":
            fmt = "xes"
        elif suffix == ".csv":
            fmt = "csv"
        else:
            raise LogFormatError(
                f"cannot infer the format of {path!r}; pass --format xes|csv"
            )
    if fmt == "xes":
        return read_xes(resolved, on_error=on_error, report=report)
    if fmt == "csv":
        return read_csv(resolved, name=resolved.stem, on_error=on_error, report=report)
    raise LogFormatError(f"unknown format {fmt!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Match events across two heterogeneous event logs (EMS, SIGMOD 2014).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    match = commands.add_parser("match", help="match two event logs")
    match.add_argument("log_first", help="first event log (.xes or .csv)")
    match.add_argument("log_second", help="second event log (.xes or .csv)")
    match.add_argument("--format", choices=("auto", "xes", "csv"), default="auto")
    match.add_argument(
        "--composite", action="store_true",
        help="enable m:n composite event matching (Algorithm 2)",
    )
    match.add_argument(
        "--labels", action="store_true",
        help="blend in q-gram cosine label similarity (alpha = 0.5 unless set)",
    )
    match.add_argument("--alpha", type=float, default=None,
                       help="structural weight in [0, 1]")
    match.add_argument("--threshold", type=float, default=0.0,
                       help="minimum similarity for a reported pair")
    match.add_argument("--estimate", type=int, default=None, metavar="I",
                       help="use the EMS+es estimation with I exact iterations")
    match.add_argument("--delta", type=float, default=0.01,
                       help="composite-merge improvement threshold")
    match.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; on exhaustion the result degrades "
             "(exact -> estimated -> partial) instead of failing",
    )
    match.add_argument(
        "--pair-budget", type=int, default=None, metavar="N",
        help="cap on formula-(1) pair updates across the whole job",
    )
    match.add_argument(
        "--no-degrade", action="store_true",
        help="disable the degradation ladder: budget exhaustion exits 3",
    )
    match.add_argument(
        "--on-error", choices=("raise", "skip", "repair"), default="raise",
        help="ingestion fault mode: abort on the first bad row (raise), "
             "drop bad rows (skip), or fix what is fixable (repair)",
    )
    match.add_argument(
        "--dead-letter-dir", metavar="DIR", default=None,
        help="archive every record rejected by --on-error skip|repair "
             "(and whole files that fail to parse) under DIR, content-"
             "addressed with a JSON error context",
    )
    match.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="composite mode: snapshot the greedy search to DIR after "
             "accepted rounds, keyed by a content hash of inputs + config",
    )
    match.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="write a snapshot every N accepted rounds (default: 1)",
    )
    match.add_argument(
        "--resume", action="store_true",
        help="resume from the latest matching snapshot in --checkpoint-dir "
             "(cold start with a warning if it is missing or corrupt)",
    )
    match.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="evaluation attempts per composite candidate before it is "
             "quarantined (default: 3); also enables supervision of "
             "serial runs",
    )
    match.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-candidate evaluation timeout in worker-pool runs; a "
             "timed-out worker is killed and the candidate retried",
    )
    match.add_argument(
        "--fault-plan", metavar="PATH", default=None,
        help="inject deterministic faults from a JSON plan (testing aid; "
             "see docs/robustness.md)",
    )
    match.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="evaluate composite candidates in N worker processes "
             "(composite mode only; budgeted runs stay serial)",
    )
    match.add_argument(
        "--kernel", choices=("vectorized", "reference", "sparse", "compiled"),
        default="vectorized",
        help="fixpoint kernel: vectorized (fast, default), sparse "
             "(memory-lean CSR gather-scatter for large vocabularies), "
             "compiled (numba-jitted loops; falls back to vectorized with "
             "a warning when numba is absent), or reference (the per-pair "
             "spec loop)",
    )
    match.add_argument(
        "--dtype", choices=("float64", "float32"), default="float64",
        help="floating-point width of the similarity computation; float32 "
             "halves buffer memory at ~1e-5 accuracy cost",
    )
    match.add_argument(
        "--no-incremental", action="store_true",
        help="disable the incremental composite engine (delta merges, "
             "warm-started fixpoints, estimation screening) and evaluate "
             "every candidate from a cold start",
    )
    match.add_argument(
        "--no-best-first", action="store_true",
        help="composite mode: evaluate each round's candidates in static "
             "discovery order instead of best-bound-first with an early "
             "cutoff (results are identical either way)",
    )
    match.add_argument(
        "--eval-cache-dir", metavar="DIR", default=None,
        help="composite mode: memoize candidate evaluations in DIR, "
             "content-keyed, and reuse them on identical reruns "
             "(digest-verified; corrupt entries degrade to cold "
             "evaluation)",
    )
    match.add_argument(
        "--shard-traces", type=int, default=None, metavar="N",
        help="ingest out-of-core in blocks of N traces (peak memory "
             "O(shard)); selects the statistics-backed singleton matching",
    )
    match.add_argument(
        "--parallel-ingest", type=int, default=None, metavar="N",
        help="count ingestion shards in N supervised worker processes "
             "(implies --shard-traces' pipeline; default block size when "
             "--shard-traces is not given)",
    )
    match.add_argument(
        "--store", metavar="PATH", default=None,
        help="persistent SQLite log store: memoize content-addressed "
             "counts and dependency graphs so repeated or appended-to "
             "logs skip parsing and counting (digest-verified; corruption "
             "degrades to a cold parse)",
    )
    match.add_argument("--json", action="store_true", help="machine-readable output")
    match.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write a Markdown matching report to PATH",
    )
    match.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome-trace JSON of the run (open in chrome://tracing "
             "or Perfetto)",
    )
    match.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the run's metrics in Prometheus text exposition format",
    )
    match.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="write a run manifest JSON (config, environment, per-stage "
             "timings, stats)",
    )
    match.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default=None,
        help="enable library logging to stderr at this level",
    )

    stats = commands.add_parser(
        "stats", help="compute a log's Definition-1 statistics (no matching)"
    )
    stats.add_argument("log", help="event log (.xes or .csv)")
    stats.add_argument("--format", choices=("auto", "xes", "csv"), default="auto")
    stats.add_argument(
        "--on-error", choices=("raise", "skip", "repair"), default="raise",
        help="ingestion fault mode (same semantics as match)",
    )
    stats.add_argument(
        "--shard-traces", type=int, default=None, metavar="N",
        help="ingest out-of-core in blocks of N traces",
    )
    stats.add_argument(
        "--parallel-ingest", type=int, default=None, metavar="N",
        help="count ingestion shards in N supervised worker processes",
    )
    stats.add_argument(
        "--store", metavar="PATH", default=None,
        help="persistent SQLite log store (see match --store)",
    )
    stats.add_argument(
        "--from-store", action="store_true",
        help="aggregate statistics from the store's trace rows with SQL "
             "window functions, without reading the log file (requires "
             "--store and a prior ingest of the same path)",
    )
    stats.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="activities/pairs shown in the text output (default: 10)",
    )
    stats.add_argument("--json", action="store_true", help="machine-readable output")
    stats.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the run's metrics in Prometheus text exposition format",
    )
    stats.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default=None,
        help="enable library logging to stderr at this level",
    )
    stats.set_defaults(trace_out=None, manifest_out=None)

    serve = commands.add_parser(
        "serve",
        help="run the long-lived matching daemon (HTTP + watch folder)",
    )
    serve.add_argument(
        "--store-dir", required=True, metavar="DIR",
        help="the daemon's durable root: job queue, match store, "
             "checkpoints, dead letters and the service.json ready file",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="address to bind the HTTP API to (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP port for the HTTP API; 0 (the default) picks an "
             "ephemeral port, recorded in DIR/service.json",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="scheduler threads executing jobs concurrently (default: 1)",
    )
    serve.add_argument(
        "--watch-dir", metavar="DIR", default=None,
        help="also ingest job-spec JSON files dropped into DIR",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts before a transiently failing job is declared "
             "dead and dead-lettered (default: 3)",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=0.1, metavar="SECONDS",
        help="idle scheduler/watcher polling interval (default: 0.1)",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default=None,
        help="enable library logging to stderr at this level",
    )
    return parser


def _build_observer(arguments: argparse.Namespace) -> Observer:
    """The run's observer, shaped by the observability flags.

    A tracer is attached when a trace or manifest is requested, a metrics
    registry when metrics or a manifest are; with none of the flags the
    null observer keeps the run on the uninstrumented path.
    """
    if arguments.log_level is not None:
        configure_logging(arguments.log_level)
    wants_trace = arguments.trace_out or arguments.manifest_out
    wants_metrics = arguments.metrics_out or arguments.manifest_out
    if not wants_trace and not wants_metrics:
        return NULL_OBSERVER
    return Observer(
        tracer=Tracer() if wants_trace else None,
        metrics=MetricsRegistry() if wants_metrics else None,
    )


def _archive_rejected_file(archive, path: str, error: Exception) -> None:
    """Dead-letter a whole input file that failed to parse, if readable."""
    if archive is None:
        return
    try:
        payload = Path(path).read_bytes()
    except OSError:
        return
    archive.put(
        payload, {"source": path, "problem": str(error), "mode": "file"}
    )


def _wants_scale_pipeline(arguments: argparse.Namespace) -> bool:
    return (
        arguments.shard_traces is not None
        or arguments.parallel_ingest is not None
        or arguments.store is not None
    )


def run_match(arguments: argparse.Namespace) -> int:
    observer = _build_observer(arguments)
    if _wants_scale_pipeline(arguments):
        return _run_match_scaled(arguments, observer)
    ingestion_first = IngestionReport(
        source=arguments.log_first, mode=arguments.on_error
    )
    ingestion_second = IngestionReport(
        source=arguments.log_second, mode=arguments.on_error
    )
    archive = None
    if arguments.dead_letter_dir:
        archive = DeadLetterArchive(arguments.dead_letter_dir, observer=observer)
        ingestion_first.archive = archive
        ingestion_second.archive = archive
    with observer.span("match") as root_span:
        with observer.span("ingest.parse", source=arguments.log_first):
            try:
                log_first = load_log(
                    arguments.log_first, arguments.format, arguments.on_error,
                    ingestion_first,
                )
            except LogFormatError as error:
                _archive_rejected_file(archive, arguments.log_first, error)
                raise
        with observer.span("ingest.parse", source=arguments.log_second):
            try:
                log_second = load_log(
                    arguments.log_second, arguments.format, arguments.on_error,
                    ingestion_second,
                )
            except LogFormatError as error:
                _archive_rejected_file(archive, arguments.log_second, error)
                raise
        observer.info(
            "loaded %s (%d traces) and %s (%d traces)",
            arguments.log_first, len(log_first),
            arguments.log_second, len(log_second),
        )
        outcome, matcher, config = _execute_match(
            arguments, observer, log_first, log_second
        )
        root_span.attributes["objective"] = outcome.objective
        root_span.attributes["correspondences"] = len(outcome.correspondences)
        observer.info(
            "matched: %d correspondences, objective %.4f",
            len(outcome.correspondences), outcome.objective,
        )
    _write_observability_outputs(arguments, observer, config, outcome)
    return _render_match_output(
        arguments, outcome, matcher,
        log_first, log_second, ingestion_first, ingestion_second,
    )


def _scale_options(
    arguments: argparse.Namespace, observer: Observer
) -> tuple[int | None, int, MatchStore | None]:
    """Validated (shard_traces, workers, store) of the scale flags."""
    shard_traces = arguments.shard_traces
    if shard_traces is not None and shard_traces < 1:
        raise ReproError(f"--shard-traces must be >= 1, got {shard_traces}")
    workers = (
        arguments.parallel_ingest if arguments.parallel_ingest is not None else 0
    )
    if workers < 0:
        raise ReproError(f"--parallel-ingest must be >= 0, got {workers}")
    if workers > 1 and shard_traces is None:
        shard_traces = DEFAULT_BLOCK_TRACES  # parallel counting needs blocks
    store = (
        MatchStore(arguments.store, observer=observer) if arguments.store else None
    )
    return shard_traces, workers, store


def _run_match_scaled(arguments: argparse.Namespace, observer: Observer) -> int:
    """Statistics-backed matching: ingest out-of-core, match the graphs.

    The logs are never materialized — each input is reduced to
    Definition-1 statistics by the :mod:`repro.store` pipeline (sharded,
    parallel, and/or store-served per the flags) and the singleton
    matching runs on the derived dependency graphs, bit-identical to the
    in-memory path.
    """
    if arguments.composite:
        raise ReproError(
            "--shard-traces/--parallel-ingest/--store select the "
            "statistics-backed pipeline, which is singleton-only; "
            "composite matching needs the full traces"
        )
    if arguments.report:
        raise ReproError(
            "--report renders the parsed logs; it cannot be combined with "
            "the out-of-core --shard-traces/--parallel-ingest/--store path"
        )
    shard_traces, workers, store = _scale_options(arguments, observer)
    retry = None
    if arguments.max_retries is not None:
        if arguments.max_retries < 1:
            raise ReproError(
                f"--max-retries must be >= 1, got {arguments.max_retries}"
            )
        retry = RetryPolicy(max_attempts=arguments.max_retries)
    config, label_similarity, budget, degradation = _match_setup(arguments)

    ingestion_first = IngestionReport(
        source=arguments.log_first, mode=arguments.on_error
    )
    ingestion_second = IngestionReport(
        source=arguments.log_second, mode=arguments.on_error
    )
    archive = None
    if arguments.dead_letter_dir:
        archive = DeadLetterArchive(arguments.dead_letter_dir, observer=observer)
        ingestion_first.archive = archive
        ingestion_second.archive = archive

    scale: dict | None = None
    with observer.span("match") as root_span:
        matcher = EMSMatcher(
            config, label_similarity, threshold=arguments.threshold,
            budget=budget, degradation=degradation, observer=observer,
        )
        if store is not None:
            # The warm end-to-end path: full hit serves the stored
            # matrix, a grown side warm-starts the fixpoint, a miss
            # computes and persists for next time.
            try:
                outcome, provenance = match_stored(
                    arguments.log_first, arguments.log_second,
                    arguments.format, arguments.on_error,
                    matcher=matcher, store=store,
                    reports=(ingestion_first, ingestion_second),
                    shard_traces=shard_traces, workers=workers,
                    policy=retry, task_timeout=arguments.task_timeout,
                    observer=observer,
                )
            except LogFormatError as error:
                _archive_rejected_file(
                    archive,
                    getattr(error, "source", arguments.log_first),
                    error,
                )
                raise
            names = provenance["log_names"]
            scale = {
                "match_mode": provenance["match_mode"],
                "matrix_key": provenance["matrix_key"],
                "ingest_modes": list(provenance["ingest_modes"]),
                "pairs_warm": provenance["pairs_warm"],
            }
            observer.info(
                "match via %s (ingest: %s)",
                provenance["match_mode"], "/".join(provenance["ingest_modes"]),
            )
        else:
            graphs = []
            results = []
            for path, report in (
                (arguments.log_first, ingestion_first),
                (arguments.log_second, ingestion_second),
            ):
                with observer.span("ingest.pipeline", source=path):
                    try:
                        graph, result = ingest_graph(
                            path, arguments.format, arguments.on_error, report,
                            shard_traces=shard_traces, workers=workers,
                            store=store, policy=retry,
                            task_timeout=arguments.task_timeout,
                            observer=observer,
                        )
                    except LogFormatError as error:
                        _archive_rejected_file(archive, path, error)
                        raise
                graphs.append(graph)
                results.append(result)
                observer.info(
                    "ingested %s via %s (%d traces, %d shards)",
                    path, result.mode, result.statistics.trace_count,
                    result.shards,
                )
            outcome = matcher.match_graphs(graphs[0], graphs[1])
            names = (results[0].log_name, results[1].log_name)
        root_span.attributes["objective"] = outcome.objective
        root_span.attributes["correspondences"] = len(outcome.correspondences)
    if store is not None:
        store.close()
    _write_observability_outputs(arguments, observer, config, outcome)
    return _render_match_output(
        arguments, outcome, matcher,
        _NamedInput(names[0]), _NamedInput(names[1]),
        ingestion_first, ingestion_second,
        scale=scale,
    )


class _NamedInput:
    """Stand-in for an :class:`EventLog` in output rendering.

    The scaled path never builds logs; rendering only needs a name.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


def _stats_from_store(
    arguments: argparse.Namespace, store: MatchStore
) -> IngestResult:
    """``stats --from-store``: SQL aggregation only, the file untouched.

    The path is resolved to its stored counts through the ingests table
    (path-keyed, so no content digest — the file need not even exist any
    more), and the Definition-1 counts are aggregated by SQLite window
    functions over the stored trace rows.
    """
    fmt = resolve_format(arguments.log, arguments.format)
    prior = store.get_ingest(ingest_key(arguments.log, fmt, arguments.on_error))
    counts_key = prior["counts_key"] if prior is not None else None
    statistics = (
        store.sql_statistics(counts_key) if counts_key is not None else None
    )
    if statistics is None:
        raise ReproError(
            f"no stored trace rows for {arguments.log!r} in "
            f"{arguments.store!r}; ingest it first (stats --store without "
            f"--from-store)"
        )
    record = store.get_counts(counts_key)
    log_name = (
        record["log_name"] if record is not None else Path(arguments.log).stem
    )
    return IngestResult(
        statistics=statistics.snapshot(),
        log_name=log_name,
        mode="store-sql",
        counts_key=counts_key,
    )


def run_stats(arguments: argparse.Namespace) -> int:
    """The ``stats`` subcommand: ingest one log, print its statistics."""
    observer = _build_observer(arguments)
    if arguments.top < 0:
        raise ReproError(f"--top must be >= 0, got {arguments.top}")
    shard_traces, workers, store = _scale_options(arguments, observer)
    report = IngestionReport(source=arguments.log, mode=arguments.on_error)
    if arguments.from_store:
        if store is None:
            raise ReproError("--from-store requires --store PATH")
        try:
            with observer.span("stats", source=arguments.log):
                result = _stats_from_store(arguments, store)
        finally:
            store.close()
    else:
        with observer.span("stats", source=arguments.log):
            result = ingest_statistics(
                arguments.log, arguments.format, arguments.on_error, report,
                shard_traces=shard_traces, workers=workers, store=store,
                observer=observer,
            )
        if store is not None:
            store.close()
    if arguments.metrics_out:
        Path(arguments.metrics_out).write_text(
            observer.metrics.to_prometheus_text()
        )
    statistics = result.statistics
    if arguments.json:
        payload = {
            "log": result.log_name,
            "mode": result.mode,
            "shards": result.shards,
            "trace_count": statistics.trace_count,
            "activities": len(statistics.activity_frequencies),
            "pairs": len(statistics.pair_frequencies),
            "activity_frequencies": dict(
                sorted(statistics.activity_frequencies.items())
            ),
            "pair_frequencies": {
                f"{source}->{target}": freq
                for (source, target), freq in sorted(
                    statistics.pair_frequencies.items()
                )
            },
            "ingestion": report.to_dict(),
        }
        json.dump(payload, sys.stdout, indent=2, ensure_ascii=False)
        print()
        return 0
    print(
        f"{result.log_name}: {statistics.trace_count} traces, "
        f"{len(statistics.activity_frequencies)} activities, "
        f"{len(statistics.pair_frequencies)} dependency pairs "
        f"[{result.mode}"
        + (f", {result.shards} shards]" if result.shards else "]")
    )
    ranked = sorted(
        statistics.activity_frequencies.items(), key=lambda item: (-item[1], item[0])
    )
    for activity, freq in ranked[: arguments.top]:
        print(f"  {activity}: {freq:.3f}")
    if len(ranked) > arguments.top:
        print(f"  ... and {len(ranked) - arguments.top} more")
    if not report.clean or report.fallback_cases:
        print(f"  note: {report.describe()}", file=sys.stderr)
    return 0


def run_serve(arguments: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run the matching daemon until a signal."""
    from repro.service import MatchingService

    if arguments.log_level is not None:
        configure_logging(arguments.log_level)
    if arguments.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {arguments.workers}")
    if arguments.max_attempts < 1:
        raise ReproError(
            f"--max-attempts must be >= 1, got {arguments.max_attempts}"
        )
    service = MatchingService(
        arguments.store_dir,
        host=arguments.host,
        port=arguments.port,
        workers=arguments.workers,
        watch_dir=arguments.watch_dir,
        max_attempts=arguments.max_attempts,
        poll_interval=arguments.poll_interval,
    )
    print(
        f"repro service listening on {service.host}:{service.port} "
        f"(store: {arguments.store_dir})",
        flush=True,
    )
    service.run_until_signal()
    return 0


def _match_setup(arguments: argparse.Namespace):
    """The config, label similarity, budget and degradation of a run."""
    label_similarity = QGramCosineSimilarity() if arguments.labels else None
    alpha = arguments.alpha
    if alpha is None:
        alpha = 0.5 if arguments.labels else 1.0
    config = EMSConfig(
        alpha=alpha,
        estimation_iterations=arguments.estimate,
        kernel=arguments.kernel,
        dtype=arguments.dtype,
        incremental=not arguments.no_incremental,
        screening=not arguments.no_incremental,
        best_first=not arguments.no_best_first,
    )

    budget = None
    if arguments.timeout is not None or arguments.pair_budget is not None:
        try:
            budget = MatchBudget(
                deadline=arguments.timeout, max_pair_updates=arguments.pair_budget
            )
        except ValueError as error:
            raise ReproError(str(error)) from None
    degradation = (
        DegradationPolicy.none() if arguments.no_degrade else DegradationPolicy()
    )
    return config, label_similarity, budget, degradation


def _execute_match(
    arguments: argparse.Namespace,
    observer: Observer,
    log_first: EventLog,
    log_second: EventLog,
):
    config, label_similarity, budget, degradation = _match_setup(arguments)

    if arguments.workers < 0:
        raise ReproError(f"--workers must be >= 0, got {arguments.workers}")
    if arguments.composite:
        retry = None
        if arguments.max_retries is not None:
            if arguments.max_retries < 1:
                raise ReproError(
                    f"--max-retries must be >= 1, got {arguments.max_retries}"
                )
            retry = RetryPolicy(max_attempts=arguments.max_retries)
        faults = None
        if arguments.fault_plan is not None:
            try:
                faults = FaultPlan.from_json(
                    Path(arguments.fault_plan).read_text(encoding="utf-8")
                )
            except (OSError, ValueError, KeyError) as error:
                raise ReproError(
                    f"cannot load fault plan {arguments.fault_plan!r}: {error}"
                ) from None
        checkpoints = None
        if arguments.checkpoint_dir is not None:
            if arguments.checkpoint_every < 1:
                raise ReproError(
                    f"--checkpoint-every must be >= 1, got "
                    f"{arguments.checkpoint_every}"
                )
            checkpoints = CheckpointManager(
                arguments.checkpoint_dir,
                every=arguments.checkpoint_every,
                observer=observer,
                faults=faults,
            )
        elif arguments.resume:
            raise ReproError("--resume requires --checkpoint-dir")
        eval_cache = None
        if arguments.eval_cache_dir is not None:
            eval_cache = EvaluationCache(
                arguments.eval_cache_dir, observer=observer
            )
        interrupt = InterruptGuard()
        matcher = EMSCompositeMatcher(
            config, label_similarity,
            threshold=arguments.threshold, delta=arguments.delta,
            budget=budget, degradation=degradation,
            workers=arguments.workers,
            observer=observer,
            retry=retry,
            task_timeout=arguments.task_timeout,
            faults=faults,
            checkpoints=checkpoints,
            resume=arguments.resume,
            interrupt=interrupt,
            eval_cache=eval_cache,
        )
        with interrupt:
            outcome = matcher.match(log_first, log_second)
    else:
        matcher = EMSMatcher(
            config, label_similarity, threshold=arguments.threshold,
            budget=budget, degradation=degradation,
            observer=observer,
        )
        outcome = matcher.match(log_first, log_second)
    return outcome, matcher, config


def _write_observability_outputs(
    arguments: argparse.Namespace,
    observer: Observer,
    config: EMSConfig,
    outcome,
) -> None:
    """Write the trace / metrics / manifest files requested by flags."""
    if arguments.trace_out:
        Path(arguments.trace_out).write_text(
            json.dumps(observer.tracer.to_chrome_trace(), indent=2)
        )
    if arguments.metrics_out:
        Path(arguments.metrics_out).write_text(observer.metrics.to_prometheus_text())
    if arguments.manifest_out:
        runtime = outcome.runtime.to_dict() if outcome.runtime else {}
        manifest = RunManifest.from_observer(
            observer,
            config={
                "alpha": config.alpha,
                "c": config.c,
                "epsilon": config.epsilon,
                "max_iterations": config.max_iterations,
                "direction": config.direction,
                "estimation_iterations": config.estimation_iterations,
                "kernel": config.kernel,
                "dtype": config.dtype,
                "incremental": config.incremental,
                "best_first": config.best_first,
                "composite": arguments.composite,
                "workers": arguments.workers,
            },
            stats={
                "objective": outcome.objective,
                "correspondences": len(outcome.correspondences),
                "diagnostics": dict(outcome.diagnostics),
                "runtime": runtime,
            },
        )
        manifest.write(arguments.manifest_out)


def _render_match_output(
    arguments: argparse.Namespace,
    outcome,
    matcher,
    log_first: EventLog,
    log_second: EventLog,
    ingestion_first: IngestionReport,
    ingestion_second: IngestionReport,
    scale: dict | None = None,
) -> int:
    ingestion = (ingestion_first, ingestion_second)
    if arguments.report:
        from repro.reporting import render_match_report

        report = render_match_report(
            log_first, log_second, outcome, matcher.name, ingestion=ingestion
        )
        Path(arguments.report).write_text(report, encoding="utf-8")

    if arguments.json:
        payload = {
            "log_first": log_first.name,
            "log_second": log_second.name,
            "matcher": matcher.name,
            "objective": outcome.objective,
            "correspondences": [
                {"left": sorted(c.left), "right": sorted(c.right)}
                for c in outcome.correspondences
            ],
            "diagnostics": dict(outcome.diagnostics),
            "runtime": outcome.runtime.to_dict() if outcome.runtime else None,
            "quarantined": [
                record.to_dict() for record in getattr(outcome, "quarantined", ())
            ],
            "ingestion": {
                "first": ingestion_first.to_dict(),
                "second": ingestion_second.to_dict(),
            },
        }
        if scale is not None:
            payload["scale"] = scale
        json.dump(payload, sys.stdout, indent=2, ensure_ascii=False)
        print()
        return 0

    print(f"{matcher.name}: {log_first.name} <-> {log_second.name} "
          f"(average similarity {outcome.objective:.3f})")
    if scale is not None and scale["match_mode"] != "computed":
        print(f"  [match store: {scale['match_mode']}]")
    for correspondence in sorted(outcome.correspondences, key=lambda c: min(c.left)):
        marker = "  [m:n]" if correspondence.is_composite() else ""
        print(f"  {' + '.join(sorted(correspondence.left))} <-> "
              f"{' + '.join(sorted(correspondence.right))}{marker}")
    if not outcome.correspondences:
        print("  (no correspondences above the threshold)")
    if outcome.runtime is not None and outcome.runtime.degraded:
        print(f"  note: {outcome.runtime.describe()}", file=sys.stderr)
    quarantined = getattr(outcome, "quarantined", ())
    if quarantined:
        print(
            f"  note: {len(quarantined)} candidate(s) quarantined after "
            f"repeated evaluation failures (see --json for details)",
            file=sys.stderr,
        )
    for report in ingestion:
        if not report.clean or report.fallback_cases:
            print(f"  note: {report.describe()}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    try:
        if arguments.command == "match":
            return run_match(arguments)
        if arguments.command == "stats":
            return run_stats(arguments)
        if arguments.command == "serve":
            return run_serve(arguments)
        raise SystemExit(f"unknown command {arguments.command!r}")
    except BudgetExhausted as error:
        print(f"error: {error} (degradation disabled)", file=sys.stderr)
        return EXIT_BUDGET_EXHAUSTED
    except WorkerPoolError as error:
        # Must precede the ReproError clause: an unrecoverable pool is an
        # environment failure, not an input problem.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_WORKER_FAILURE
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_INPUT_ERROR
