"""Human-readable matching reports.

`render_match_report` turns one matching run into a self-contained
Markdown document — the artifact an integrator reviews (and the paper's
49 subject-matter experts would have annotated): the correspondences
with confidence, the unmatched residue on both sides, log summaries, and
the matcher's diagnostics.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.common import EventMatcher, MatchOutcome
from repro.core.matrix import SimilarityMatrix
from repro.logs.log import EventLog
from repro.logs.stats import summarize
from repro.matching.evaluation import Correspondence
from repro.runtime.report import IngestionReport


def _matched_sides(
    correspondences: tuple[Correspondence, ...],
) -> tuple[set[str], set[str]]:
    left: set[str] = set()
    right: set[str] = set()
    for correspondence in correspondences:
        left.update(correspondence.left)
        right.update(correspondence.right)
    return left, right


def render_match_report(
    log_first: EventLog,
    log_second: EventLog,
    outcome: MatchOutcome,
    matcher_name: str = "EMS",
    similarity: SimilarityMatrix | None = None,
    ingestion: Sequence[IngestionReport] | None = None,
) -> str:
    """A Markdown report of one matching run.

    Pass the similarity matrix to annotate each correspondence with its
    score and to include a top-alternatives section for review; pass the
    :class:`~repro.runtime.IngestionReport` objects of the loaded logs to
    document what fault-tolerant ingestion dropped or repaired.
    """
    lines: list[str] = [
        f"# Event matching report: {log_first.name} ↔ {log_second.name}",
        "",
        f"Matcher: **{matcher_name}** — objective {outcome.objective:.3f}",
        "",
        "## Logs",
        "",
    ]
    for log in (log_first, log_second):
        summary = summarize(log)
        lines.append(
            f"* `{log.name}`: {summary.trace_count} traces, "
            f"{summary.activity_count} activities, "
            f"{summary.variant_count} variants, "
            f"mean trace length {summary.mean_trace_length:.1f}"
        )

    lines += ["", "## Correspondences", ""]
    if outcome.correspondences:
        lines.append("| first log | second log | kind | similarity |")
        lines.append("|---|---|---|---|")
        for correspondence in sorted(
            outcome.correspondences, key=lambda c: min(c.left)
        ):
            left = " + ".join(sorted(correspondence.left))
            right = " + ".join(sorted(correspondence.right))
            kind = "m:n" if correspondence.is_composite() else "1:1"
            score = ""
            if similarity is not None and not correspondence.is_composite():
                only_left = next(iter(correspondence.left))
                only_right = next(iter(correspondence.right))
                if only_left in similarity.rows and only_right in similarity.cols:
                    score = f"{similarity.get(only_left, only_right):.3f}"
            lines.append(f"| {left} | {right} | {kind} | {score} |")
    else:
        lines.append("*(none above the threshold)*")

    matched_left, matched_right = _matched_sides(outcome.correspondences)
    unmatched_first = sorted(log_first.activities() - matched_left)
    unmatched_second = sorted(log_second.activities() - matched_right)
    lines += ["", "## Unmatched activities", ""]
    lines.append(
        f"* `{log_first.name}`: "
        + (", ".join(unmatched_first) if unmatched_first else "*(none)*")
    )
    lines.append(
        f"* `{log_second.name}`: "
        + (", ".join(unmatched_second) if unmatched_second else "*(none)*")
    )

    if similarity is not None and unmatched_first:
        lines += ["", "## Review suggestions (best alternative per unmatched activity)", ""]
        for activity in unmatched_first:
            if activity in similarity.rows:
                best, score = similarity.best_column_for(activity)
                lines.append(f"* {activity} → {best} ({score:.3f})")

    if outcome.diagnostics:
        lines += ["", "## Diagnostics", ""]
        for key in sorted(outcome.diagnostics):
            lines.append(f"* {key}: {outcome.diagnostics[key]:g}")

    runtime = outcome.runtime
    if runtime is not None:
        lines += ["", "## Runtime", ""]
        lines.append(f"* stage: {runtime.stage}" + (" (degraded)" if runtime.degraded else ""))
        if runtime.reason:
            lines.append(f"* reason: {runtime.reason}")
        if runtime.detail:
            lines.append(f"* detail: {runtime.detail}")
        lines.append(f"* wall time: {runtime.wall_time:.3f}s")
        lines.append(f"* pair updates: {runtime.pair_updates}")

    if ingestion:
        reported = [
            report for report in ingestion
            if not report.clean or report.fallback_cases
        ]
        if reported:
            lines += ["", "## Ingestion", ""]
            for report in reported:
                lines.append(f"* {report.describe()}")
                for issue in (*report.dropped, *report.repaired):
                    lines.append(f"  * {issue.describe()}")

    return "\n".join(lines) + "\n"


def match_and_report(
    matcher: EventMatcher, log_first: EventLog, log_second: EventLog
) -> str:
    """Convenience: run *matcher* and render the report in one call."""
    outcome = matcher.match(log_first, log_second)
    return render_match_report(log_first, log_second, outcome, matcher.name)
