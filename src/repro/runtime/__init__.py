"""Resilient matching runtime: budgets, degradation, faithful reporting.

Production event extracts are messy and production matching jobs need
wall-clock bounds.  This package supplies the runtime layer the matching
core threads through:

* :class:`MatchBudget` / :class:`BudgetMeter` — deadline and pair-update
  budgets, cooperatively checked inside the fixpoint loops; exhaustion
  raises :class:`~repro.exceptions.BudgetExhausted`.
* :class:`DegradationPolicy` — the ladder exact → estimated → partial
  that turns budget exhaustion into a valid, annotated result.
* :class:`RuntimeReport` — how a run ended (stage, reason, spend),
  attached to every :class:`~repro.baselines.common.MatchOutcome`.
* :class:`IngestionReport` / :class:`RowIssue` — per-row accounting of
  what the fault-tolerant CSV/XES readers dropped or repaired.

See ``docs/robustness.md`` for the full model and the CLI exit codes.
"""

from repro.exceptions import BudgetExhausted
from repro.runtime.budget import BudgetMeter, MatchBudget
from repro.runtime.degrade import DegradationPolicy
from repro.runtime.report import (
    STAGE_ESTIMATED,
    STAGE_EXACT,
    STAGE_PARTIAL,
    STAGES,
    IngestionReport,
    RowIssue,
    RuntimeReport,
)

__all__ = [
    "BudgetExhausted",
    "BudgetMeter",
    "MatchBudget",
    "DegradationPolicy",
    "RuntimeReport",
    "IngestionReport",
    "RowIssue",
    "STAGE_EXACT",
    "STAGE_ESTIMATED",
    "STAGE_PARTIAL",
    "STAGES",
]
