"""Resilient matching runtime: budgets, degradation, faithful reporting.

Production event extracts are messy and production matching jobs need
wall-clock bounds.  This package supplies the runtime layer the matching
core threads through:

* :class:`MatchBudget` / :class:`BudgetMeter` — deadline and pair-update
  budgets, cooperatively checked inside the fixpoint loops; exhaustion
  raises :class:`~repro.exceptions.BudgetExhausted`.
* :class:`DegradationPolicy` — the ladder exact → estimated → partial
  that turns budget exhaustion into a valid, annotated result.
* :class:`RuntimeReport` — how a run ended (stage, reason, spend),
  attached to every :class:`~repro.baselines.common.MatchOutcome`.
* :class:`IngestionReport` / :class:`RowIssue` — per-row accounting of
  what the fault-tolerant CSV/XES readers dropped or repaired.
* :class:`RetryPolicy` / :class:`SupervisedPool` — bounded retry with
  exponential backoff, pool respawn, and poison-candidate quarantine
  around the composite search's worker pool.
* :class:`CheckpointManager` / :class:`SearchSnapshot` /
  :class:`InterruptGuard` — crash-safe, content-keyed checkpoints of the
  composite search plus cooperative SIGINT/SIGTERM handling.
* :class:`DeadLetterArchive` — content-addressed archive of ingestion
  records the readers rejected.
* :class:`EvaluationCache` — cross-run persistent, content-addressed
  cache of composite candidate evaluations (digest-verified loads,
  atomic writes, LRU size bound).
* :class:`FaultPlan` / :class:`FaultSpec` — the deterministic
  fault-injection harness exercising all of the above.

See ``docs/robustness.md`` for the full model and the CLI exit codes.
"""

from repro.exceptions import BudgetExhausted, SearchInterrupted, WorkerPoolError
from repro.runtime.budget import BudgetMeter, MatchBudget
from repro.runtime.checkpoint import (
    CheckpointManager,
    InterruptGuard,
    SearchSnapshot,
    search_content_key,
)
from repro.runtime.deadletter import DeadLetterArchive
from repro.runtime.degrade import DegradationPolicy
from repro.runtime.evalcache import EvaluationCache
from repro.runtime.faults import NO_FAULTS, FaultPlan, FaultSpec, TransientFault
from repro.runtime.report import (
    STAGE_ESTIMATED,
    STAGE_EXACT,
    STAGE_PARTIAL,
    STAGES,
    IngestionReport,
    RowIssue,
    RuntimeReport,
)
from repro.runtime.supervise import (
    QuarantineRecord,
    RetryPolicy,
    SupervisedPool,
    SupervisionStats,
    run_supervised,
)

__all__ = [
    "BudgetExhausted",
    "BudgetMeter",
    "MatchBudget",
    "DegradationPolicy",
    "RuntimeReport",
    "IngestionReport",
    "RowIssue",
    "STAGE_EXACT",
    "STAGE_ESTIMATED",
    "STAGE_PARTIAL",
    "STAGES",
    "RetryPolicy",
    "SupervisedPool",
    "SupervisionStats",
    "QuarantineRecord",
    "run_supervised",
    "CheckpointManager",
    "SearchSnapshot",
    "InterruptGuard",
    "search_content_key",
    "DeadLetterArchive",
    "EvaluationCache",
    "FaultPlan",
    "FaultSpec",
    "TransientFault",
    "NO_FAULTS",
    "SearchInterrupted",
    "WorkerPoolError",
]
