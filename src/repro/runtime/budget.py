"""Budgets and cooperative cancellation for matching runs.

A :class:`MatchBudget` bounds one matching job along two axes: a
wall-clock *deadline* and a cap on formula-(1) evaluations
(*pair updates* — the same work metric the paper plots in Figures 6 and
12).  Budgets are immutable descriptions; :meth:`MatchBudget.start`
produces a mutable :class:`BudgetMeter` that the hot loops charge and
check cooperatively.  When either axis is exhausted the meter raises
:class:`repro.exceptions.BudgetExhausted`, which the degradation ladder
(:mod:`repro.runtime.degrade`) catches to return a best-effort result
instead of dying.

The checks are cooperative by design: they run at iteration boundaries
and every :data:`_DEADLINE_STRIDE` pair updates inside an iteration, so
an unbudgeted run (``meter is None``) pays nothing and a budgeted run
pays one integer test per pair update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import BudgetExhausted
from repro.obs.clock import default_clock

#: How many pair updates pass between wall-clock reads on the hot path.
#: A power of two so the test compiles to a mask.
_DEADLINE_STRIDE = 256


@dataclass(frozen=True, slots=True)
class MatchBudget:
    """Resource bounds for one matching job.

    Parameters
    ----------
    deadline:
        Wall-clock seconds the job may spend, or ``None`` for unbounded.
        ``0.0`` is legal and means "already exhausted" — useful for
        forcing the degradation ladder in tests.
    max_pair_updates:
        Cap on formula-(1) evaluations across the whole job (all
        directions, all composite candidate evaluations), or ``None``.
    """

    deadline: float | None = None
    max_pair_updates: int | None = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline < 0.0:
            raise ValueError(f"deadline must be >= 0, got {self.deadline}")
        if self.max_pair_updates is not None and self.max_pair_updates < 0:
            raise ValueError(
                f"max_pair_updates must be >= 0, got {self.max_pair_updates}"
            )

    @property
    def unbounded(self) -> bool:
        return self.deadline is None and self.max_pair_updates is None

    def start(self, clock: Callable[[], float] | None = None) -> "BudgetMeter":
        """Begin metering against this budget (the clock starts now)."""
        return BudgetMeter(self, clock=clock)

    def describe(self) -> str:
        parts: list[str] = []
        if self.deadline is not None:
            parts.append(f"deadline {self.deadline:g}s")
        if self.max_pair_updates is not None:
            parts.append(f"max {self.max_pair_updates} pair updates")
        return ", ".join(parts) if parts else "unbounded"


class BudgetMeter:
    """Mutable spend tracker for one :class:`MatchBudget`.

    One meter is shared across every similarity evaluation of a job so
    the bounds apply to the job as a whole, not per evaluation.  The two
    entry points the hot loops use:

    * :meth:`check` — at iteration/round boundaries; tests both axes.
    * :meth:`tick` — once per pair update; counts work and re-reads the
      clock every :data:`_DEADLINE_STRIDE` updates.
    """

    __slots__ = ("budget", "pair_updates_spent", "_clock", "_started", "_deadline_at")

    def __init__(self, budget: MatchBudget, clock: Callable[[], float] | None = None):
        self.budget = budget
        self.pair_updates_spent = 0
        self._clock = clock if clock is not None else default_clock
        self._started = self._clock()
        self._deadline_at = (
            None if budget.deadline is None else self._started + budget.deadline
        )

    def elapsed(self) -> float:
        return self._clock() - self._started

    def exhausted_reason(self) -> str | None:
        """Which axis is exhausted, or ``None`` while within budget."""
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            return "deadline"
        cap = self.budget.max_pair_updates
        if cap is not None and self.pair_updates_spent >= cap:
            return "pair-updates"
        return None

    def _raise(self, reason: str) -> None:
        if reason == "deadline":
            message = (
                f"wall-clock deadline of {self.budget.deadline:g}s exhausted "
                f"after {self.elapsed():.3f}s"
            )
        else:
            message = (
                f"pair-update budget of {self.budget.max_pair_updates} exhausted"
            )
        raise BudgetExhausted(
            message,
            reason=reason,
            elapsed=self.elapsed(),
            pair_updates=self.pair_updates_spent,
        )

    def check(self) -> None:
        """Raise :class:`BudgetExhausted` if either axis is exhausted."""
        reason = self.exhausted_reason()
        if reason is not None:
            self._raise(reason)

    def tick(self, n: int = 1) -> None:
        """Charge *n* pair updates (default 1); raise when the budget runs out.

        Charging a batch of ``n`` is equivalent to ``n`` single ticks:
        the spend is committed before any raise, the pair-update cap trips
        as soon as the cumulative spend exceeds it, and the wall clock is
        re-read whenever the batch crosses a :data:`_DEADLINE_STRIDE`
        boundary.  The vectorized EMS kernel charges whole iterations in
        one call; the reference loop charges pair by pair — both account
        identically against the same budget.
        """
        if n < 0:
            raise ValueError(f"tick charge must be >= 0, got {n}")
        if n == 0:
            return
        before = self.pair_updates_spent
        self.pair_updates_spent = before + n
        cap = self.budget.max_pair_updates
        if cap is not None and self.pair_updates_spent > cap:
            self._raise("pair-updates")
        if (
            self._deadline_at is not None
            and before // _DEADLINE_STRIDE != self.pair_updates_spent // _DEADLINE_STRIDE
            and self._clock() > self._deadline_at
        ):
            self._raise("deadline")

    @property
    def pair_updates_remaining(self) -> int | None:
        """Pair updates left before the cap trips, or ``None`` (uncapped)."""
        cap = self.budget.max_pair_updates
        if cap is None:
            return None
        return max(0, cap - self.pair_updates_spent)

    def __repr__(self) -> str:
        return (
            f"BudgetMeter({self.budget.describe()}, "
            f"spent={self.pair_updates_spent}, elapsed={self.elapsed():.3f}s)"
        )
