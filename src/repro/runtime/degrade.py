"""The graceful-degradation ladder.

When a budget runs out mid-computation the engine does not throw the
partial work away.  The :class:`DegradationPolicy` names the rungs it may
step down to, in order:

1. **exact** — the run finished as requested; nothing to degrade.
2. **estimated** — unconverged pairs are filled in with the paper's
   closed-form estimation (Section 3.5, formula (2)) applied to however
   many exact iterations actually ran.  The estimation itself is a single
   vectorized evaluation, so it always fits in the leftover instant.
3. **partial** — the best-so-far similarity values are returned as-is
   (marked unconverged).  For composite matching this rung also covers a
   greedy search cut short between rounds: the matrix of the last
   accepted merge state is complete, only the search was truncated.

With both rungs disabled (:meth:`DegradationPolicy.none`) the
:class:`~repro.exceptions.BudgetExhausted` propagates to the caller — the
CLI maps that to exit code 3.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DegradationPolicy:
    """Which rungs of the ladder a budgeted run may step down to."""

    allow_estimation: bool = True
    allow_partial: bool = True

    @classmethod
    def full(cls) -> "DegradationPolicy":
        """The default: estimation first, then best-so-far partial."""
        return cls(allow_estimation=True, allow_partial=True)

    @classmethod
    def estimation_only(cls) -> "DegradationPolicy":
        return cls(allow_estimation=True, allow_partial=False)

    @classmethod
    def partial_only(cls) -> "DegradationPolicy":
        return cls(allow_estimation=False, allow_partial=True)

    @classmethod
    def none(cls) -> "DegradationPolicy":
        """No fallback: budget exhaustion raises."""
        return cls(allow_estimation=False, allow_partial=False)

    @property
    def enabled(self) -> bool:
        return self.allow_estimation or self.allow_partial
