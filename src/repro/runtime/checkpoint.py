"""Crash-safe checkpointing of the composite search, and interrupt handling.

A composite search over production-sized logs runs for minutes; a
mid-run SIGTERM (deploy, preemption, OOM-killer collateral) used to lose
all of it.  This module makes the greedy loop resumable:

* **Content-keyed snapshots** — a checkpoint is keyed by
  :func:`search_content_key`, a SHA-256 over the two logs' traces, the
  :class:`~repro.core.config.EMSConfig` fields and the matcher knobs.
  Resuming against a different input or configuration can therefore
  never silently mix state: the key simply doesn't match and the run
  starts cold.
* **Atomic, self-verifying writes** — snapshots are written to a
  temporary file, fsynced and ``os.replace``d into place, with a header
  carrying the payload's SHA-256.  A torn write or bit rot is detected
  on load (digest mismatch), logged, counted, and answered with a cold
  start — never a crash, never a silently wrong resume.
* **Replay-based restore** — a :class:`SearchSnapshot` stores the
  accepted-merge history plus the current converged result, not the
  derived side states; the matcher replays the history through the same
  delta-merge machinery that produced it, which PR 3's differential
  suites already pin as bit-identical to a cold rebuild.  A resumed run
  therefore finishes with bit-identical correspondences and stats.
* **Cooperative interrupts** — :class:`InterruptGuard` converts
  SIGINT/SIGTERM into a flag the round loop checks; the matcher flushes
  a final checkpoint and returns a ``partial`` result (reason
  ``"interrupted"``) instead of dying mid-round.  ``kill -9`` cannot be
  caught, but the periodic snapshot (every ``every`` accepted rounds)
  bounds the loss to one round.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.exceptions import SearchInterrupted
from repro.obs import NULL_OBSERVER, Observer, get_logger
from repro.runtime.faults import FaultPlan

_logger = get_logger(__name__)

#: Format magic; bump when the payload schema changes so stale
#: checkpoints are rejected as incompatible rather than misread.
_MAGIC = b"EMSCKPT1"


def atomic_write(directory: Path, target: Path, data: bytes) -> Path:
    """Write *data* to *target* atomically (tempfile, fsync, ``os.replace``).

    A crash at any point leaves either the old file or the new one, never
    a torn mix; the temporary is unlinked on failure.  Shared by the
    checkpoint store and the persistent evaluation cache
    (:mod:`repro.runtime.evalcache`).
    """
    handle = tempfile.NamedTemporaryFile(
        dir=directory, prefix=target.name + ".", suffix=".tmp", delete=False
    )
    try:
        with handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return target


def verified_payload(
    raw: bytes, magic: bytes, key: str
) -> tuple[bytes | None, str | None]:
    """Split and verify a ``<magic> <key> <sha256>\\n<payload>`` file.

    Returns ``(payload, None)`` when the magic matches, the stored key
    equals *key* and the payload's SHA-256 equals the header digest;
    ``(None, reason)`` otherwise.  Never raises on malformed input —
    every parse failure becomes a reason string, so callers can uniformly
    degrade to a cold path with a logged warning.
    """
    try:
        header, _, payload = raw.partition(b"\n")
        stored_magic, stored_key, digest = header.split(b" ")
        if stored_magic != magic:
            return None, f"unrecognized format {stored_magic!r}"
        if stored_key.decode() != key:
            return None, "entry belongs to a different (log pair, config)"
        if hashlib.sha256(payload).hexdigest() != digest.decode():
            return None, "payload digest mismatch (corrupt or torn write)"
        return payload, None
    except Exception as error:
        return None, f"unreadable entry ({error})"


def search_content_key(
    log_first: Iterable,
    log_second: Iterable,
    config_fields: dict[str, Any],
    knobs: dict[str, Any],
) -> str:
    """Compatibility hash of (log pair, config, matcher knobs).

    The logs contribute their ordered traces of activities — the only
    log content the search consumes (counts and graphs derive from it).
    Everything is serialized canonically (sorted keys, no whitespace
    drift) before hashing, so the key is stable across processes and
    platforms.
    """
    digest = hashlib.sha256()
    for log in (log_first, log_second):
        canonical = [[event.activity for event in trace] for trace in log]
        digest.update(json.dumps(canonical, separators=(",", ":")).encode())
        digest.update(b"\x00")
    for mapping in (config_fields, knobs):
        digest.update(
            json.dumps(mapping, sort_keys=True, separators=(",", ":"),
                       default=str).encode()
        )
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class SearchSnapshot:
    """Resumable state of one composite search at a round boundary.

    ``history`` lists every accepted merge ``(side, run)`` in order —
    the minimal generator of the side states.  ``current`` is the
    converged :class:`~repro.core.ems.EMSResult` after the last accepted
    merge (matrix, directional matrices, iteration/pair-update totals),
    and ``stats`` the :class:`~repro.core.composite.CompositeStats`
    counters at the same instant, so a resumed run reports exactly what
    an uninterrupted one would.
    """

    key: str
    rounds: int
    history: tuple[tuple[int, tuple[str, ...]], ...]
    stats: Any
    current: Any
    #: True when the search finished (the last round accepted nothing):
    #: resuming returns the stored result directly instead of re-running
    #: the final barren round, keeping resumed stats bit-identical.
    complete: bool = False

    def to_payload(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "rounds": self.rounds,
            "history": self.history,
            "stats": self.stats,
            "current": self.current,
            "complete": self.complete,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "SearchSnapshot":
        return cls(
            key=payload["key"],
            rounds=payload["rounds"],
            history=tuple((side, tuple(run)) for side, run in payload["history"]),
            stats=payload["stats"],
            current=payload["current"],
            complete=payload.get("complete", False),
        )


class CheckpointManager:
    """Owns one directory of content-keyed search checkpoints.

    Parameters
    ----------
    directory:
        Where snapshots live (created on first use).  One file per key:
        ``ems-<key16>.ckpt`` — the first 16 hex digits are plenty within
        one directory, and the full key inside the file still guards
        against collisions.
    every:
        Snapshot cadence in accepted rounds (default: every round).
    observer:
        Metric sink for ``checkpoint_writes_total`` and friends.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan`; a matching
        ``checkpoint.write``/``corrupt`` spec flips payload bytes *after*
        the digest was computed, simulating on-disk corruption that the
        next load must detect.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        every: int = 1,
        observer: Observer | None = None,
        faults: FaultPlan | None = None,
    ):
        if every < 1:
            raise ValueError(f"checkpoint cadence must be >= 1, got {every}")
        self.directory = Path(directory)
        self.every = every
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.faults = faults
        self.writes = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.directory / f"ems-{key[:16]}.ckpt"

    def due(self, rounds: int) -> bool:
        return rounds % self.every == 0

    # ------------------------------------------------------------------
    def save(self, snapshot: SearchSnapshot) -> Path:
        """Atomically persist *snapshot*; returns the checkpoint path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            snapshot.to_payload(), protocol=pickle.HIGHEST_PROTOCOL
        )
        digest = hashlib.sha256(payload).hexdigest()
        if self.faults is not None:
            spec = self.faults.match(
                "checkpoint.write", round=snapshot.rounds
            )
            if spec is not None and spec.kind == "corrupt":
                payload = self.faults.corrupt(payload, round=snapshot.rounds)
        header = b" ".join(
            (_MAGIC, snapshot.key.encode(), digest.encode())
        ) + b"\n"
        target = self.path_for(snapshot.key)
        atomic_write(self.directory, target, header + payload)
        self.writes += 1
        self.observer.count(
            "checkpoint_writes_total",
            help="search snapshots flushed to the checkpoint directory",
        )
        _logger.debug(
            "checkpoint after round %d -> %s", snapshot.rounds, target
        )
        return target

    # ------------------------------------------------------------------
    def load(self, key: str) -> SearchSnapshot | None:
        """Load the snapshot for *key*, or ``None`` for a cold start.

        Every failure mode — missing file, foreign magic, key mismatch,
        digest mismatch, unpicklable payload — degrades to a cold start
        with a logged warning; corruption is never fatal and never
        silently resumed from.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        snapshot = None
        payload, reason = verified_payload(raw, _MAGIC, key)
        if payload is not None:
            try:
                snapshot = SearchSnapshot.from_payload(pickle.loads(payload))
                if snapshot.key != key:
                    snapshot, reason = None, "embedded key mismatch"
            except Exception as error:
                snapshot, reason = None, f"unreadable checkpoint ({error})"
        if snapshot is None:
            self.observer.count(
                "checkpoint_corrupt_total",
                help="checkpoints rejected at load time (falling back cold)",
            )
            _logger.warning(
                "ignoring checkpoint %s: %s; starting cold", path, reason
            )
            return None
        self.observer.count(
            "checkpoint_resumes_total",
            help="searches resumed from a verified checkpoint",
        )
        _logger.info(
            "resuming from %s (%d accepted round(s))", path, snapshot.rounds
        )
        return snapshot


class InterruptGuard:
    """Cooperative SIGINT/SIGTERM handling for checkpointed runs.

    Used as a context manager around a matching run: while active, the
    first signal sets :attr:`interrupted` (the round loop polls it and
    unwinds through the checkpoint flush); a *second* signal restores
    the previous handler's behaviour, so an operator can still kill a
    stuck process with a repeated Ctrl-C.

    Signal handlers only install from the main thread; elsewhere (or
    with ``signals=()``) the guard degrades to an inert flag that
    :meth:`trip` can set programmatically — which is also how the
    deterministic fault-injection site ``search.round``/``interrupt``
    simulates a SIGTERM at an exact round boundary.
    """

    def __init__(self, signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)):
        self.signals = signals
        self.interrupted = False
        self.signal_name = ""
        self._previous: dict[int, Any] = {}

    # ------------------------------------------------------------------
    def trip(self, name: str = "scripted") -> None:
        """Flag an interrupt without an actual signal (tests, faults)."""
        self.interrupted = True
        self.signal_name = name

    def check(self) -> None:
        """Raise :class:`SearchInterrupted` if an interrupt is flagged."""
        if self.interrupted:
            raise SearchInterrupted(
                f"interrupted by {self.signal_name or 'signal'}",
                signal_name=self.signal_name,
            )

    # ------------------------------------------------------------------
    def _handle(self, signum: int, frame: Any) -> None:
        self.trip(signal.Signals(signum).name)
        # Let a second signal act on the previous handler: restore it.
        previous = self._previous.get(signum)
        if previous is not None:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        _logger.warning(
            "%s received; finishing the current round, flushing a final "
            "checkpoint, then returning a partial result",
            self.signal_name,
        )

    def __enter__(self) -> "InterruptGuard":
        for signum in self.signals:
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # not the main thread
                self._previous.pop(signum, None)
                break
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for signum, previous in self._previous.items():
            try:
                if signal.getsignal(signum) == self._handle:
                    signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()
