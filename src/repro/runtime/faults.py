"""Deterministic fault injection for chaos-testing the durable runtime.

Real failures — a worker segfault, a hung evaluation, a half-written
checkpoint file — are timing-dependent and unreproducible, which makes
the recovery paths the *least* tested code in a pipeline.  This module
replaces the randomness with a script: a :class:`FaultPlan` is a list of
:class:`FaultSpec` rows saying *where* (a named site plus coordinates
like round / candidate / attempt) and *what* (crash, timeout, transient
exception, checkpoint corruption, cooperative interrupt) should go
wrong.  Firing is purely coordinate-matched — no shared mutable state —
so a plan is picklable, crosses the ``ProcessPoolExecutor`` boundary
into workers unchanged, and the same plan replays the same chaos on
every run.

Sites currently wired up (see ``docs/robustness.md``):

=====================  =====================================================
``evaluate``           one candidate evaluation (serial or in a worker);
                       kinds ``crash`` / ``timeout`` fire only inside
                       worker processes, ``transient`` fires anywhere
``worker.init``        a pool worker's initializer (kind ``crash``)
``search.round``       the top of a greedy round (kind ``interrupt`` —
                       simulates SIGTERM arriving at the boundary)
``checkpoint.write``   one checkpoint save (kind ``corrupt`` — the bytes
                       on disk are flipped *after* the digest was taken,
                       modelling bit rot / a torn write)
=====================  =====================================================

Seeding: byte corruption positions derive from ``FaultPlan.seed`` and the
checkpoint's round, never from a live RNG, and nothing here reads a wall
clock — delays are injected by the caller's clock/sleep, so chaos tests
stay deterministic.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import asdict, dataclass
from typing import Any

from repro.exceptions import ReproError

#: Fault kinds a spec may request.
KIND_CRASH = "crash"
KIND_TIMEOUT = "timeout"
KIND_TRANSIENT = "transient"
KIND_CORRUPT = "corrupt"
KIND_INTERRUPT = "interrupt"
KINDS = (KIND_CRASH, KIND_TIMEOUT, KIND_TRANSIENT, KIND_CORRUPT, KIND_INTERRUPT)

#: The exit status an injected worker crash dies with — distinctive in
#: logs, and never confused with a Python traceback exit (1).
CRASH_EXIT_STATUS = 73


class TransientFault(ReproError):
    """An injected (or genuinely transient) failure worth retrying.

    The supervisor retries these under its
    :class:`~repro.runtime.RetryPolicy`; any *other* exception from a
    candidate evaluation is treated as deterministic poison and
    quarantined without burning retries.
    """


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scripted fault: where it fires and what it does.

    ``None`` coordinates are wildcards; ``attempts`` lists the attempt
    numbers (1-based) the fault fires on, so ``attempts=(1,)`` models a
    failure that a single retry heals and ``attempts=(1, 2, 3)`` a
    poison candidate that defeats a three-attempt policy.  An empty
    ``attempts`` tuple is the every-attempt wildcard.
    """

    site: str
    kind: str
    round: int | None = None
    side: int | None = None
    run: tuple[str, ...] | None = None
    attempts: tuple[int, ...] = (1,)
    #: Seconds a ``timeout`` fault makes the worker stall (must exceed
    #: the supervisor's task timeout to actually trip it).
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")

    def matches(
        self,
        site: str,
        *,
        round: int | None = None,
        side: int | None = None,
        run: tuple[str, ...] | None = None,
        attempt: int = 1,
    ) -> bool:
        if site != self.site:
            return False
        if self.round is not None and round != self.round:
            return False
        if self.side is not None and side != self.side:
            return False
        if self.run is not None and (run is None or tuple(run) != self.run):
            return False
        if self.attempts and attempt not in self.attempts:
            return False
        return True


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable, picklable script of faults for one run.

    ``fire`` is the single hook instrumented code calls; with no
    matching spec it is a handful of tuple comparisons, and production
    code never constructs a plan at all (the hooks are behind
    ``faults is not None`` checks).
    """

    specs: tuple[FaultSpec, ...] = ()
    #: Seed for the deterministic byte-corruption positions.
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.specs)

    # ------------------------------------------------------------------
    def match(self, site: str, **coordinates: Any) -> FaultSpec | None:
        """First spec matching *site* at *coordinates*, or ``None``."""
        for spec in self.specs:
            if spec.matches(site, **coordinates):
                return spec
        return None

    def fire(
        self,
        site: str,
        *,
        in_worker: bool = False,
        sleep: Any = time.sleep,
        **coordinates: Any,
    ) -> FaultSpec | None:
        """Act out the matching spec, if any.

        * ``crash`` — ``os._exit`` the process, but only when
          *in_worker*: crashing the parent would defeat the supervisor
          the fault exists to exercise.
        * ``timeout`` — stall for ``spec.delay`` seconds (worker only),
          so the parent's per-candidate timeout trips.
        * ``transient`` — raise :class:`TransientFault` anywhere.
        * ``interrupt`` / ``corrupt`` — never acted here; they are
          returned for the call site (round loop, checkpoint writer) to
          interpret.

        Returns the matched spec (also for the kinds acted on, in case
        the caller wants to log it).
        """
        spec = self.match(site, **coordinates)
        if spec is None:
            return None
        if spec.kind == KIND_CRASH and in_worker:
            os._exit(CRASH_EXIT_STATUS)
        elif spec.kind == KIND_TIMEOUT and in_worker:
            sleep(spec.delay)
        elif spec.kind == KIND_TRANSIENT:
            raise TransientFault(
                f"injected transient fault at {site} {coordinates!r}"
            )
        return spec

    # ------------------------------------------------------------------
    def corrupt(self, payload: bytes, *, round: int | None = None) -> bytes:
        """Deterministically flip a few bytes of *payload*.

        Positions derive from ``(seed, round, len(payload))`` so the
        same plan corrupts the same checkpoint the same way on every
        run.  At least one byte always changes.
        """
        if not payload:
            return payload
        mixed = (self.seed * 1_000_003 + (round or 0)) * 1_000_003 + len(payload)
        rng = random.Random(mixed)
        corrupted = bytearray(payload)
        for _ in range(max(1, len(payload) // 4096)):
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 0xFF
        return bytes(corrupted)

    # ------------------------------------------------------------------
    # (De)serialization — lets the CLI load a plan for chaos smoke tests
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [asdict(spec) for spec in self.specs]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        document = json.loads(text)
        specs = []
        for raw in document.get("specs", ()):
            raw = dict(raw)
            if raw.get("run") is not None:
                raw["run"] = tuple(raw["run"])
            if raw.get("attempts") is not None:
                raw["attempts"] = tuple(raw["attempts"])
            specs.append(FaultSpec(**raw))
        return cls(specs=tuple(specs), seed=document.get("seed", 0))


#: Convenience null plan: ``fire`` on it never acts.  Code should still
#: prefer ``faults is not None`` guards on hot paths.
NO_FAULTS = FaultPlan()
