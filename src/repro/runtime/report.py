"""Structured reports of how a run actually went.

Two report types, one per failure surface:

* :class:`RuntimeReport` — attached to every matcher outcome: which rung
  of the degradation ladder produced the result (``exact`` /
  ``estimated`` / ``partial``), why, and how much work was done.
* :class:`IngestionReport` — filled by the CSV/XES readers in
  ``on_error="skip"|"repair"`` mode: every dropped or repaired row, the
  cases whose ordering fell back to file order, and whether a truncated
  document was salvaged.  The contract is 100% accounting: every input
  row is either loaded, repaired (and loaded), or dropped (and listed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Degradation stages, best to worst.
STAGE_EXACT = "exact"
STAGE_ESTIMATED = "estimated"
STAGE_PARTIAL = "partial"
STAGES = (STAGE_EXACT, STAGE_ESTIMATED, STAGE_PARTIAL)


@dataclass(frozen=True, slots=True)
class RuntimeReport:
    """How a matching run ended: degradation stage, reason, and spend.

    Attributes
    ----------
    stage:
        The degradation-ladder rung that produced the returned matrix:
        ``"exact"`` (completed as requested), ``"estimated"`` (budget ran
        out; the Section 3.5 closed form filled in unconverged pairs) or
        ``"partial"`` (best-so-far values, or a composite search cut
        short after producing a complete matrix).
    degraded:
        ``stage != "exact"`` — the acceptance test of resilience.
    reason:
        Which budget axis triggered degradation (``"deadline"`` /
        ``"pair-updates"``), ``None`` when not degraded.
    detail:
        Free-text context, e.g. "composite search truncated after 2 rounds".
    iterations, pair_updates:
        Work performed (pair updates use the paper's Figure 6/12 metric).
    wall_time:
        Wall-clock seconds from matcher entry to result.
    rounds:
        Greedy merge rounds (composite matching only).
    """

    stage: str = STAGE_EXACT
    degraded: bool = False
    reason: str | None = None
    detail: str | None = None
    iterations: int = 0
    pair_updates: int = 0
    wall_time: float = 0.0
    rounds: int | None = None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "stage": self.stage,
            "degraded": self.degraded,
            "reason": self.reason,
            "detail": self.detail,
            "iterations": self.iterations,
            "pair_updates": self.pair_updates,
            "wall_time": self.wall_time,
        }
        if self.rounds is not None:
            payload["rounds"] = self.rounds
        return payload

    def describe(self) -> str:
        """One line for logs and the CLI's plain output."""
        if not self.degraded:
            return (
                f"completed exactly in {self.wall_time:.3f}s "
                f"({self.pair_updates} pair updates)"
            )
        detail = f": {self.detail}" if self.detail else ""
        return (
            f"degraded to {self.stage} ({self.reason}){detail} — "
            f"{self.wall_time:.3f}s, {self.pair_updates} pair updates"
        )


@dataclass(frozen=True, slots=True)
class RowIssue:
    """One dropped or repaired input row/event.

    ``location`` is ``"row N"`` for CSV and ``"trace I event J"`` for
    XES; ``problem`` says what was wrong, ``action`` what the reader did
    (``"dropped"`` or ``"repaired"``).
    """

    location: str
    problem: str
    action: str

    def describe(self) -> str:
        return f"{self.location}: {self.problem} ({self.action})"


@dataclass(slots=True)
class IngestionReport:
    """Accumulator of everything a fault-tolerant read did not load verbatim.

    Mutable on purpose: callers construct one, pass it to
    ``read_csv``/``read_xes`` alongside ``on_error``, and inspect it
    afterwards.  The readers also fill it in ``on_error="raise"`` mode
    for non-fatal observations (the mixed-timestamp ordering fallback).
    """

    source: str = ""
    mode: str = "raise"
    rows_seen: int = 0
    events_loaded: int = 0
    dropped: list[RowIssue] = field(default_factory=list)
    repaired: list[RowIssue] = field(default_factory=list)
    #: Case ids whose events had *some but not all* timestamps, so the
    #: reader fell back to file order instead of timestamp order.
    fallback_cases: list[str] = field(default_factory=list)
    #: Parse-error message when a truncated document was salvaged.
    truncation: str | None = None
    #: Optional :class:`repro.runtime.deadletter.DeadLetterArchive`;
    #: when set, readers hand :meth:`record_dropped` the rejected bytes
    #: and they are preserved there instead of vanishing into a counter.
    archive: Any = None
    archived: int = 0

    # ------------------------------------------------------------------
    def record_row(self, loaded: bool = True) -> None:
        self.rows_seen += 1
        if loaded:
            self.events_loaded += 1

    def record_dropped(
        self, location: str, problem: str, payload: bytes | None = None
    ) -> None:
        self.dropped.append(RowIssue(location, problem, "dropped"))
        if self.archive is not None and payload is not None:
            self.archive.put(
                payload,
                {
                    "source": self.source,
                    "location": location,
                    "problem": problem,
                    "mode": self.mode,
                },
            )
            self.archived += 1

    def record_repaired(self, location: str, problem: str) -> None:
        self.repaired.append(RowIssue(location, problem, "repaired"))

    def record_fallback(self, case_id: str) -> None:
        if case_id not in self.fallback_cases:
            self.fallback_cases.append(case_id)

    def record_truncation(self, message: str) -> None:
        self.truncation = message

    # ------------------------------------------------------------------
    @property
    def rows_dropped(self) -> int:
        return len(self.dropped)

    @property
    def rows_repaired(self) -> int:
        return len(self.repaired)

    @property
    def clean(self) -> bool:
        """No row was lost or altered and the document was complete."""
        return not self.dropped and not self.repaired and self.truncation is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "mode": self.mode,
            "rows_seen": self.rows_seen,
            "events_loaded": self.events_loaded,
            "dropped": [issue.describe() for issue in self.dropped],
            "repaired": [issue.describe() for issue in self.repaired],
            "fallback_cases": list(self.fallback_cases),
            "truncation": self.truncation,
            "archived": self.archived,
            "clean": self.clean,
        }

    def describe(self) -> str:
        label = self.source or "input"
        if self.clean and not self.fallback_cases:
            return f"{label}: {self.events_loaded} events loaded cleanly"
        bits = [f"{self.events_loaded} events loaded"]
        if self.dropped:
            dead = f" ({self.archived} dead-lettered)" if self.archived else ""
            bits.append(f"{self.rows_dropped} dropped{dead}")
        if self.repaired:
            bits.append(f"{self.rows_repaired} repaired")
        if self.fallback_cases:
            bits.append(f"{len(self.fallback_cases)} case(s) fell back to file order")
        if self.truncation is not None:
            bits.append("document truncated")
        return f"{label}: " + ", ".join(bits)
