"""Cross-run persistent cache of composite candidate evaluations.

A composite search spends nearly all of its time in candidate
evaluation, and repeated or near-repeated workloads — re-running a
matching after a config tweak elsewhere, nightly jobs over slowly
drifting logs, a resumed experiment — re-evaluate candidates whose
inputs have not changed at all.  This module memoizes
:class:`~repro.core.incremental.CandidateEvaluation` results on disk,
content-addressed so a hit is *provably* the same computation:

* the **base key** is :func:`~repro.runtime.checkpoint.search_content_key`
  over the two logs' traces, every :class:`~repro.core.config.EMSConfig`
  field (kernel and dtype included) and the matcher knobs — the exact
  compatibility key the checkpoint store uses;
* the **candidate key** (:func:`candidate_key`) extends it with the
  accepted-merge history so far, the candidate's ``(side, run)`` and the
  ``abort_below`` incumbent it was evaluated against.  Keying on
  ``abort_below`` keeps cached verdicts replay-exact: a Bd-aborted or
  screened outcome is only ever reused against the same incumbent that
  produced it, and identical reruns regenerate identical incumbent
  sequences, so a second run over unchanged inputs hits on every
  candidate.

Durability mirrors the checkpoint store byte for byte: entries are
written via the shared :func:`~repro.runtime.checkpoint.atomic_write`
(tempfile, fsync, ``os.replace``) under an ``EMSEVAL1 <key> <sha256>``
header, and every load re-verifies the digest through
:func:`~repro.runtime.checkpoint.verified_payload`.  A corrupt,
truncated or version-mismatched file degrades to a cold evaluation with
a logged warning — never a crash, never a silently wrong result.  The
directory is LRU-bounded by file mtime (hits touch their entry), and
hit/miss/corrupt/eviction counters flow through the metrics registry.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from repro.obs import NULL_OBSERVER, Observer, get_logger
from repro.runtime.checkpoint import atomic_write, verified_payload

_logger = get_logger(__name__)

#: Format magic; bump when the payload schema changes so stale cache
#: entries are rejected as incompatible rather than misread.
_MAGIC = b"EMSEVAL1"


def candidate_key(
    base_key: str,
    history: tuple[tuple[int, tuple[str, ...]], ...],
    side_index: int,
    run: tuple[str, ...],
    abort_below: float,
) -> str:
    """Content key of one candidate evaluation.

    *base_key* is the search-level :func:`search_content_key`; the rest
    pins the exact evaluation state: the accepted merges that shaped the
    side graphs, the candidate itself, and the incumbent threshold the
    evaluation raced against (see module docstring for why the threshold
    belongs in the key).  ``repr(abort_below)`` round-trips the float
    exactly, so equal incumbents — and only equal incumbents — share a
    key.
    """
    digest = hashlib.sha256(base_key.encode())
    digest.update(b"\x00")
    digest.update(
        json.dumps(
            [list(history), side_index, list(run), repr(abort_below)],
            separators=(",", ":"),
        ).encode()
    )
    return digest.hexdigest()


def discovery_key(
    base_key: str,
    history: tuple[tuple[int, tuple[str, ...]], ...],
    side_index: int,
) -> str:
    """Content key of one side's candidate-discovery result.

    Candidate discovery is a pure function of a side's current log,
    which is fully determined by the original inputs (*base_key* covers
    the logs and every knob, discovery thresholds included) and the
    accepted-merge *history*.  Caching it alongside the evaluations lets
    a warm re-run skip the per-round statistics recomputation — the
    dominant cost once every evaluation is a hit.  The ``"discovery"``
    tag keeps these keys disjoint from :func:`candidate_key` digests.
    """
    digest = hashlib.sha256(base_key.encode())
    digest.update(b"\x00discovery\x00")
    digest.update(
        json.dumps([list(history), side_index], separators=(",", ":")).encode()
    )
    return digest.hexdigest()


class EvaluationCache:
    """Owns one directory of content-keyed candidate evaluations.

    Parameters
    ----------
    directory:
        Where entries live (created on first write).  One file per key:
        ``eval-<key32>.pkl`` — 32 hex digits of the full SHA-256, plenty
        within one directory, with the full key inside the file still
        guarding against collisions.
    max_entries:
        LRU bound on the number of entries (by file mtime; loads touch
        their entry).  ``None`` disables eviction.
    observer:
        Metric sink for ``eval_cache_hits_total`` and friends.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        max_entries: int | None = 4096,
        observer: Observer | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.directory = Path(directory)
        self.max_entries = max_entries
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.directory / f"eval-{key[:32]}.pkl"

    # ------------------------------------------------------------------
    def load(self, key: str):
        """The cached evaluation for *key*, or ``None`` for a miss.

        Every failure mode — missing file, foreign magic, key mismatch,
        digest mismatch, unpicklable payload — is a logged miss followed
        by cold evaluation; corruption is never fatal and a corrupt
        entry is removed so it cannot keep tripping future runs.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except (FileNotFoundError, OSError):
            self.misses += 1
            self.observer.count(
                "eval_cache_misses_total",
                help="candidate evaluations not found in the persistent cache",
            )
            return None
        value = None
        payload, reason = verified_payload(raw, _MAGIC, key)
        if payload is not None:
            try:
                value = pickle.loads(payload)
            except Exception as error:
                value, reason = None, f"unreadable payload ({error})"
        if value is None:
            self.misses += 1
            self.observer.count(
                "eval_cache_corrupt_total",
                help="cache entries rejected at load time (cold evaluation)",
            )
            self.observer.count("eval_cache_misses_total")
            _logger.warning(
                "ignoring evaluation-cache entry %s: %s; evaluating cold",
                path, reason,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        self.observer.count(
            "eval_cache_hits_total",
            help="candidate evaluations served from the persistent cache",
        )
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        return value

    # ------------------------------------------------------------------
    def store(self, key: str, value) -> Path:
        """Atomically persist *value* under *key*; returns the entry path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        header = b" ".join((_MAGIC, key.encode(), digest.encode())) + b"\n"
        target = atomic_write(self.directory, self.path_for(key), header + payload)
        self._evict()
        return target

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        try:
            entries = [
                (path.stat().st_mtime, path)
                for path in self.directory.glob("eval-*.pkl")
            ]
        except OSError:  # pragma: no cover - directory vanished underneath us
            return
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort()
        for _, path in entries[:excess]:
            try:
                path.unlink()
            except OSError:
                continue
            self.observer.count(
                "eval_cache_evictions_total",
                help="cache entries dropped by the LRU size bound",
            )
