"""Dead-letter archive for rejected ingestion records.

``on_error="skip"``/``"repair"`` ingestion used to reduce a rejected
trace to a counter bump in the :class:`~repro.runtime.IngestionReport` —
the row itself vanished, so there was nothing to debug, re-parse, or
re-submit once the upstream bug was fixed.  Following the
dead-letter-queue shape of streaming pipelines, the archive preserves
every rejected record verbatim:

* **Content-addressed layout** — each payload lands at
  ``<root>/<hh>/<digest>/payload.bin`` where ``digest`` is the payload's
  SHA-256 and ``hh`` its first two hex digits (fan-out so a dirty feed
  doesn't produce a million-entry directory).
* **Error context alongside** — ``context.json`` next to the payload
  records every occurrence: source location, the problem string the
  parser reported, the ``on_error`` mode, and any extra fields the call
  site adds.
* **Idempotent by construction** — re-ingesting the same dirty file
  re-archives the same bytes to the same path; the payload is written
  once and only the occurrence list grows, so an operator can diff,
  fix, and re-submit by digest without ever double-counting.

Writes are atomic (temp file + ``os.replace``) so a crash mid-archive
never leaves a torn payload that a later idempotency check would trust.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

from repro.obs import NULL_OBSERVER, Observer, get_logger

_logger = get_logger(__name__)

_PAYLOAD_NAME = "payload.bin"
_CONTEXT_NAME = "context.json"


class DeadLetterArchive:
    """A directory of content-addressed rejected ingestion records."""

    def __init__(
        self,
        root: str | os.PathLike[str],
        observer: Observer | None = None,
    ):
        self.root = Path(root)
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.archived = 0

    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / digest

    # ------------------------------------------------------------------
    def put(self, payload: bytes, context: dict[str, Any]) -> str:
        """Archive *payload* with *context*; returns its content digest.

        The payload is written once per digest; *context* is appended to
        the entry's occurrence list every time, so repeated rejections
        of the same bytes stay visible without duplicating storage.
        """
        digest = hashlib.sha256(payload).hexdigest()
        entry = self.path_for(digest)
        entry.mkdir(parents=True, exist_ok=True)
        payload_path = entry / _PAYLOAD_NAME
        if not payload_path.exists():
            self._write_atomic(payload_path, payload)
        context_path = entry / _CONTEXT_NAME
        document = {"digest": digest, "occurrences": []}
        if context_path.exists():
            try:
                document = json.loads(context_path.read_text())
            except (OSError, ValueError):  # torn context: rebuild it
                _logger.warning(
                    "rebuilding unreadable dead-letter context %s", context_path
                )
        document["occurrences"].append(dict(context))
        self._write_atomic(
            context_path,
            json.dumps(document, indent=2, sort_keys=True, default=str).encode(),
        )
        self.archived += 1
        self.observer.count(
            "dead_letters_total",
            help="rejected ingestion records preserved in the archive",
        )
        _logger.debug("dead-lettered %s: %s", digest[:12], context.get("problem"))
        return digest

    def _write_atomic(self, target: Path, data: bytes) -> None:
        handle = tempfile.NamedTemporaryFile(
            dir=target.parent, prefix=target.name + ".", suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, target)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[str]:
        """Digests currently archived, in sorted order."""
        if not self.root.is_dir():
            return
        for bucket in sorted(self.root.iterdir()):
            if not bucket.is_dir():
                continue
            for entry in sorted(bucket.iterdir()):
                if (entry / _PAYLOAD_NAME).is_file():
                    yield entry.name

    def load(self, digest: str) -> tuple[bytes, dict[str, Any]]:
        """Payload bytes and context document for *digest*.

        Raises :class:`KeyError` for unknown digests and refuses (with
        ``ValueError``) payloads whose bytes no longer match their
        digest — a corrupted archive entry must not be re-submitted as
        if it were the original record.
        """
        entry = self.path_for(digest)
        payload_path = entry / _PAYLOAD_NAME
        try:
            payload = payload_path.read_bytes()
        except FileNotFoundError:
            raise KeyError(digest) from None
        if hashlib.sha256(payload).hexdigest() != digest:
            raise ValueError(
                f"dead-letter payload {digest[:12]} fails its digest check"
            )
        try:
            context = json.loads((entry / _CONTEXT_NAME).read_text())
        except (OSError, ValueError):
            context = {"digest": digest, "occurrences": []}
        return payload, context
