"""Supervised execution: retry/backoff, pool respawn, poison quarantine.

The composite search farms candidate evaluations out to a
``ProcessPoolExecutor``.  Without supervision, one crashed worker (OOM
kill, native-extension segfault, an injected chaos fault) raises
``BrokenProcessPool`` into the round and loses the entire search; one
hung evaluation stalls it forever; one poison candidate aborts instead
of being set aside.  This module wraps the pool with the three standard
durability mechanisms:

* **retry with backoff** — a :class:`RetryPolicy` bounds attempts per
  candidate and spaces them with exponential backoff plus deterministic,
  seed-derived jitter (no live RNG, so chaos tests replay exactly);
* **pool respawn** — a broken or timed-out pool is torn down and
  rebuilt from its original factory; persistent incremental workers
  re-derive their state by replaying the accepted-merge history that
  every task already carries, so a respawn is semantically invisible;
* **poison quarantine** — a candidate that keeps failing is recorded
  with full provenance (:class:`QuarantineRecord`) and skipped, letting
  the round complete; deterministic (non-transient) worker exceptions
  are quarantined immediately without burning retries.

Failure attribution: when a pool breaks during a concurrent wave the
culprit is unknowable (every pending future raises the same
``BrokenProcessPool``), so the supervisor charges nobody, respawns once,
and finishes the wave in *isolation mode* — one candidate in flight at a
time — where the next crash identifies its task unambiguously.  Progress
is therefore guaranteed: every isolation failure either retires an
attempt of a specific candidate or trips the respawn limit, and
:class:`~repro.exceptions.WorkerPoolError` (CLI exit code 4) marks the
environmental case where respawning itself cannot make progress.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import BudgetExhausted, WorkerPoolError
from repro.obs import NULL_OBSERVER, Observer, get_logger
from repro.runtime.faults import TransientFault

_logger = get_logger(__name__)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How hard to try before giving up on a candidate or a pool.

    ``max_attempts`` bounds evaluations of one candidate (first try
    included).  Backoff before attempt ``n+1`` is
    ``min(max_delay, base_delay * multiplier**(n-1))``, stretched by up
    to ``jitter`` (a fraction) using a :class:`random.Random` seeded
    from ``(seed, attempt)`` — deterministic, yet different per attempt.
    ``max_respawns`` bounds *consecutive* pool respawns with no
    successful task in between; ``None`` derives ``2 * max_attempts + 2``
    so a single poison candidate always quarantines before the pool is
    declared unrecoverable.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0
    seed: int = 0
    max_respawns: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def respawn_limit(self) -> int:
        if self.max_respawns is not None:
            return self.max_respawns
        return 2 * self.max_attempts + 2

    def delay(self, failed_attempt: int) -> float:
        """Seconds to back off after *failed_attempt* (1-based) failed."""
        if failed_attempt < 1:
            raise ValueError(f"failed_attempt must be >= 1, got {failed_attempt}")
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (failed_attempt - 1)
        )
        if self.jitter:
            rng = random.Random(self.seed * 1_000_003 + failed_attempt)
            raw *= 1.0 + self.jitter * rng.random()
        return raw


@dataclass(frozen=True, slots=True)
class QuarantineRecord:
    """Provenance of one poison candidate set aside by the supervisor.

    Everything needed to reproduce the failure offline: which candidate
    (side + run), in which greedy round, under which configuration
    (``config_hash`` — the same content hash checkpoints are keyed by),
    how many attempts were burned, and the terminal exception.
    """

    side: int
    run: tuple[str, ...]
    round: int
    attempts: int
    error_type: str
    error_message: str
    config_hash: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "side": self.side,
            "run": list(self.run),
            "round": self.round,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "config_hash": self.config_hash,
        }

    def describe(self) -> str:
        return (
            f"round {self.round} side {self.side} run {'+'.join(self.run)}: "
            f"{self.error_type} after {self.attempts} attempt(s)"
        )


@dataclass(slots=True)
class WaveOutcome:
    """What happened to one task of a supervised wave.

    Exactly one of ``value`` (the worker's return) and ``quarantined``
    (the failure record) is set.  ``attempts`` counts submissions,
    including the successful one.
    """

    task: Any
    value: Any = None
    quarantined: QuarantineRecord | None = None
    attempts: int = 1


@dataclass(slots=True)
class SupervisionStats:
    """Counters the supervisor accumulates across a whole match."""

    retries: int = 0
    respawns: int = 0
    quarantined: int = 0
    timeouts: int = 0


class SupervisedPool:
    """A self-healing wrapper around one ``ProcessPoolExecutor``.

    Parameters
    ----------
    factory:
        Zero-argument callable building a fresh executor (same
        initializer/initargs every time, so respawned workers are
        indistinguishable from the originals).
    fn:
        The module-level worker callable tasks are submitted to.
    payload:
        ``payload(task, attempt)`` builds the argument actually shipped
        for a given attempt — the attempt number rides along so worker-
        side fault hooks can match on it.
    describe:
        ``describe(task) -> (side, run)`` for quarantine records.
    policy / task_timeout / observer / sleep:
        Retry policy, optional per-candidate wall-clock timeout, metric
        sink, and an injectable sleep for deterministic tests.
    """

    def __init__(
        self,
        factory: Callable[[], ProcessPoolExecutor],
        fn: Callable[[Any], Any],
        payload: Callable[[Any, int], Any],
        describe: Callable[[Any], tuple[int, tuple[str, ...]]],
        *,
        policy: RetryPolicy | None = None,
        task_timeout: float | None = None,
        observer: Observer | None = None,
        config_hash: str = "",
        sleep: Callable[[float], None] = time.sleep,
    ):
        self._factory = factory
        self._fn = fn
        self._payload = payload
        self._describe = describe
        self.policy = policy if policy is not None else RetryPolicy()
        self.task_timeout = task_timeout
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.config_hash = config_hash
        self._sleep = sleep
        self.stats = SupervisionStats()
        self._pool: ProcessPoolExecutor | None = None
        #: Consecutive respawns without a successful task in between.
        self._barren_respawns = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = self._factory()
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the executor down hard, terminating stuck workers."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # A hung worker never returns from its task, so a plain
        # shutdown(wait=True) would block forever; terminate first.
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead process
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executor cleanup
            pass

    def _respawn(self, cause: BaseException) -> None:
        self._kill_pool()
        self._barren_respawns += 1
        self.stats.respawns += 1
        self.observer.count(
            "pool_respawns_total",
            help="worker pools torn down and rebuilt by the supervisor",
        )
        _logger.warning(
            "worker pool died (%s: %s); respawn %d/%d",
            type(cause).__name__, cause, self._barren_respawns,
            self.policy.respawn_limit,
        )
        if self._barren_respawns > self.policy.respawn_limit:
            raise WorkerPoolError(
                f"worker pool broke {self._barren_respawns} consecutive times "
                "without completing a task; giving up",
                respawns=self.stats.respawns,
                last_error=f"{type(cause).__name__}: {cause}",
            ) from cause
        try:
            self._pool = self._factory()
        except Exception as error:  # pragma: no cover - factory failure
            raise WorkerPoolError(
                f"worker pool respawn failed: {error}",
                respawns=self.stats.respawns,
                last_error=str(error),
            ) from error

    def shutdown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    # ------------------------------------------------------------------
    # Wave execution
    # ------------------------------------------------------------------
    def run_wave(self, tasks: list[Any], *, round: int = 0) -> list[WaveOutcome]:
        """Run one wave of tasks; always returns one outcome per task.

        Results come back in task order regardless of retry scheduling,
        so reductions over them match the serial candidate order
        exactly.  Never raises for a task failure — poison candidates
        come back as quarantine records — but :class:`WorkerPoolError`
        propagates when the pool itself cannot be kept alive, and
        :class:`~repro.exceptions.BudgetExhausted` passes through.

        An empty wave is a no-op that never touches (or spawns) the
        pool — the composite search serves persistent-cache hits before
        dispatch, so a fully cached wave must cost nothing.
        """
        if not tasks:
            return []
        outcomes = {index: WaveOutcome(task) for index, task in enumerate(tasks)}
        attempts = {index: 0 for index in range(len(tasks))}
        done: set[int] = set()

        pending = self._group_phase(tasks, outcomes, attempts, done, round)
        for index in pending:
            self._isolation_phase(index, tasks, outcomes, attempts, done, round)
        return [outcomes[index] for index in range(len(tasks))]

    # ------------------------------------------------------------------
    def _submit(self, task: Any, attempt: int):
        return self._ensure_pool().submit(self._fn, self._payload(task, attempt))

    def _charge_retry(self) -> None:
        self.stats.retries += 1
        self.observer.count(
            "worker_retries_total",
            help="candidate evaluations re-submitted after a failure",
        )

    def _group_phase(
        self,
        tasks: list[Any],
        outcomes: dict[int, WaveOutcome],
        attempts: dict[int, int],
        done: set[int],
        round: int,
    ) -> list[int]:
        """Submit the whole wave concurrently; return indices still open.

        A pool breakage here cannot attribute blame, so no attempt is
        charged for it — the survivors are re-run in isolation where
        failures identify their task.  Per-task failures with the pool
        intact (transient or deterministic exceptions, timeouts) *are*
        attributed immediately.
        """
        futures = {}
        try:
            for index, task in enumerate(tasks):
                attempts[index] += 1
                futures[index] = self._submit(task, attempts[index])
        except BrokenProcessPool as error:
            self._respawn(error)
            return [index for index in range(len(tasks)) if index not in done]

        pool_died = False
        for index, future in futures.items():
            if pool_died:
                # Drain results that completed before the pool broke;
                # never block — everything else re-runs in isolation.
                if future.done() and not future.cancelled():
                    try:
                        value = future.result(timeout=0)
                    except BudgetExhausted:
                        raise
                    except BaseException:
                        continue
                    outcomes[index].value = value
                    outcomes[index].attempts = attempts[index]
                    done.add(index)
                continue
            try:
                value = future.result(timeout=self.task_timeout)
            except BudgetExhausted:
                raise
            except BrokenProcessPool as error:
                self._respawn(error)
                pool_died = True
            except FutureTimeoutError:
                # The worker is still grinding (or hung); the pool must
                # die so its slot frees up.  Unlike a crash, the culprit
                # is known: it is the future we were waiting on.
                self.stats.timeouts += 1
                self.observer.count(
                    "worker_timeouts_total",
                    help="candidate evaluations that exceeded the task timeout",
                )
                self._respawn(TimeoutError(
                    f"candidate evaluation exceeded {self.task_timeout:g}s"
                ))
                pool_died = True
            except TransientFault:
                continue  # retried in isolation
            except Exception as error:
                self._quarantine(index, tasks[index], attempts[index], error,
                                 outcomes, done, round)
            else:
                outcomes[index].value = value
                outcomes[index].attempts = attempts[index]
                done.add(index)
                self._barren_respawns = 0
        return [index for index in range(len(tasks)) if index not in done]

    def _isolation_phase(
        self,
        index: int,
        tasks: list[Any],
        outcomes: dict[int, WaveOutcome],
        attempts: dict[int, int],
        done: set[int],
        round: int,
    ) -> None:
        """Retry one open task alone until success, quarantine, or give-up."""
        task = tasks[index]
        last_error: BaseException = TransientFault("pool broke during the wave")
        while index not in done:
            if attempts[index] >= self.policy.max_attempts:
                self._quarantine(
                    index, task, attempts[index], last_error,
                    outcomes, done, round,
                )
                return
            if attempts[index] > 0:
                self._charge_retry()
                backoff = self.policy.delay(attempts[index])
                if backoff > 0:
                    self._sleep(backoff)
            attempts[index] += 1
            try:
                value = self._submit(task, attempts[index]).result(
                    timeout=self.task_timeout
                )
            except BudgetExhausted:
                raise
            except BrokenProcessPool as error:
                last_error = error
                self._respawn(error)
            except FutureTimeoutError:
                self.stats.timeouts += 1
                self.observer.count(
                    "worker_timeouts_total",
                    help="candidate evaluations that exceeded the task timeout",
                )
                last_error = TimeoutError(
                    f"candidate evaluation exceeded {self.task_timeout:g}s"
                )
                self._respawn(last_error)
            except TransientFault as error:
                last_error = error
                continue
            except Exception as error:
                self._quarantine(index, task, attempts[index], error,
                                 outcomes, done, round)
                return
            else:
                outcomes[index].value = value
                outcomes[index].attempts = attempts[index]
                done.add(index)
                self._barren_respawns = 0

    def _quarantine(
        self,
        index: int,
        task: Any,
        attempts: int,
        error: BaseException,
        outcomes: dict[int, WaveOutcome],
        done: set[int],
        round: int,
    ) -> None:
        side, run = self._describe(task)
        record = QuarantineRecord(
            side=side,
            run=tuple(run),
            round=round,
            attempts=attempts,
            error_type=type(error).__name__,
            error_message=str(error),
            config_hash=self.config_hash,
        )
        outcomes[index].quarantined = record
        outcomes[index].attempts = attempts
        done.add(index)
        self.stats.quarantined += 1
        self.observer.count(
            "candidates_quarantined_total",
            help="poison candidates set aside so their round could complete",
        )
        _logger.warning("quarantined candidate: %s", record.describe())


def run_supervised(
    call: Callable[[int], Any],
    *,
    policy: RetryPolicy,
    describe: Callable[[], tuple[int, tuple[str, ...]]],
    round: int = 0,
    config_hash: str = "",
    observer: Observer | None = None,
    stats: SupervisionStats | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[Any, QuarantineRecord | None]:
    """Serial counterpart of :meth:`SupervisedPool.run_wave` for one call.

    ``call(attempt)`` performs the evaluation (the attempt number feeds
    worker-free fault hooks).  :class:`TransientFault` is retried under
    *policy* with the same deterministic backoff as the pool path; any
    other exception — except :class:`~repro.exceptions.BudgetExhausted`
    and interrupts, which propagate — quarantines the candidate
    immediately.  Returns ``(value, None)`` or ``(None, record)``.
    """
    observer = observer if observer is not None else NULL_OBSERVER
    attempt = 0
    last_error: BaseException | None = None
    while attempt < policy.max_attempts:
        if attempt > 0:
            if stats is not None:
                stats.retries += 1
            observer.count(
                "worker_retries_total",
                help="candidate evaluations re-submitted after a failure",
            )
            backoff = policy.delay(attempt)
            if backoff > 0:
                sleep(backoff)
        attempt += 1
        try:
            return call(attempt), None
        except BudgetExhausted:
            raise
        except TransientFault as error:
            last_error = error
            continue
        except Exception as error:
            last_error = error
            break
    side, run = describe()
    record = QuarantineRecord(
        side=side,
        run=tuple(run),
        round=round,
        attempts=attempt,
        error_type=type(last_error).__name__,
        error_message=str(last_error),
        config_hash=config_hash,
    )
    if stats is not None:
        stats.quarantined += 1
    observer.count(
        "candidates_quarantined_total",
        help="poison candidates set aside so their round could complete",
    )
    _logger.warning("quarantined candidate: %s", record.describe())
    return None, record
