"""A basic inductive miner: discovering process *trees* from logs.

Leemans et al.'s inductive-mining idea, in its directly-follows flavour:
recursively partition the activities by finding a *cut* of the
directly-follows graph —

* **xor cut** — the undirected DFG is disconnected;
* **sequence cut** — the condensation of the DFG admits a strict order;
* **parallel cut** — every cross-part edge exists in both directions and
  every part touches start and end activities;
* **loop cut** — a body part containing all starts/ends, with redo parts
  entered from ends and leaving into starts —

then project the log onto each part and recurse.  When no cut exists,
fall back to the *flower model* (a loop over the choice of all
activities), which can replay anything.

The output is a :class:`repro.synthesis.process_tree.ProcessTree`, so the
mined model plugs into the whole substrate: playout, Petri conversion,
conformance.  On logs played out from this library's own generator the
miner is typically able to rediscover the block structure.
"""

from __future__ import annotations

from repro.exceptions import SynthesisError
from repro.logs.log import EventLog
from repro.synthesis.process_tree import (
    Choice,
    Leaf,
    Loop,
    Parallel,
    ProcessTree,
    Sequence,
    Silent,
)

_Trace = tuple[str, ...]


def inductive_miner(log: EventLog) -> ProcessTree:
    """Discover a process tree for *log*."""
    if len(log) == 0:
        raise SynthesisError("cannot mine an empty log")
    traces = [trace.activities for trace in log]
    return _mine(traces)


# ----------------------------------------------------------------------
def _mine(traces: list[_Trace]) -> ProcessTree:
    alphabet = sorted({activity for trace in traces for activity in trace})
    has_empty = any(len(trace) == 0 for trace in traces)
    nonempty = [trace for trace in traces if trace]

    if not alphabet:
        return Silent()
    if len(alphabet) == 1:
        activity = alphabet[0]
        tree: ProcessTree = Leaf(activity)
        if any(len(trace) > 1 for trace in nonempty):
            tree = Loop(Leaf(activity), Silent(), redo_probability=0.5)
        if has_empty:
            tree = Choice([tree, Silent()])
        return tree

    graph, starts, ends = _dfg(nonempty)

    partition = _xor_cut(alphabet, graph)
    if partition is not None and not has_empty:
        # Every trace lives entirely inside one part (the parts are
        # disconnected), so split rather than project: projection would
        # manufacture empty traces in every other part.
        sublogs: list[list[_Trace]] = [[] for _ in partition]
        membership = {
            activity: index
            for index, part in enumerate(partition)
            for activity in part
        }
        for trace in nonempty:
            sublogs[membership[trace[0]]].append(trace)
        return Choice([_mine(sublog) for sublog in sublogs if sublog])

    ordered = _sequence_cut(alphabet, graph)
    if ordered is not None and not has_empty:
        return Sequence([_mine(_split_sequence(nonempty, part)) for part in ordered])

    partition = _parallel_cut(alphabet, graph, starts, ends)
    if partition is not None and not has_empty:
        return Parallel([_mine(_project(nonempty, part)) for part in partition])

    loop = _loop_cut(alphabet, graph, starts, ends)
    if loop is not None and not has_empty:
        body, redo = loop
        body_traces, redo_traces = _split_loop(nonempty, body)
        return Loop(_mine(body_traces), _mine(redo_traces), redo_probability=0.3)

    # Fallback: the flower model replays everything over this alphabet.
    flower = Loop(
        Choice([Leaf(activity) for activity in alphabet]),
        Silent(),
        redo_probability=0.5,
        max_repeats=10,
    )
    if has_empty:
        return Choice([flower, Silent()])
    return flower


# ----------------------------------------------------------------------
def _dfg(traces: list[_Trace]) -> tuple[set[tuple[str, str]], set[str], set[str]]:
    edges: set[tuple[str, str]] = set()
    starts: set[str] = set()
    ends: set[str] = set()
    for trace in traces:
        starts.add(trace[0])
        ends.add(trace[-1])
        for a, b in zip(trace, trace[1:]):
            edges.add((a, b))
    return edges, starts, ends


def _components(alphabet: list[str], adjacency: dict[str, set[str]]) -> list[set[str]]:
    seen: set[str] = set()
    components: list[set[str]] = []
    for activity in alphabet:
        if activity in seen:
            continue
        component = {activity}
        frontier = [activity]
        while frontier:
            node = frontier.pop()
            for other in adjacency.get(node, ()):
                if other not in component:
                    component.add(other)
                    frontier.append(other)
        seen.update(component)
        components.append(component)
    return components


def _xor_cut(alphabet: list[str], graph: set[tuple[str, str]]) -> list[set[str]] | None:
    adjacency: dict[str, set[str]] = {a: set() for a in alphabet}
    for a, b in graph:
        adjacency[a].add(b)
        adjacency[b].add(a)
    components = _components(alphabet, adjacency)
    return components if len(components) > 1 else None


def _sequence_cut(
    alphabet: list[str], graph: set[tuple[str, str]]
) -> list[set[str]] | None:
    """Partition into strictly ordered groups via SCC condensation."""
    # Tarjan-free approach: compute mutual reachability classes.
    reach: dict[str, set[str]] = {a: {a} for a in alphabet}
    changed = True
    while changed:
        changed = False
        for a, b in graph:
            before = len(reach[a])
            reach[a] |= reach[b]
            if len(reach[a]) != before:
                changed = True
    groups: dict[frozenset[str], set[str]] = {}
    for a in alphabet:
        klass = frozenset(x for x in alphabet if a in reach[x] and x in reach[a])
        groups.setdefault(klass, set()).add(a)
    parts = list(groups.values())
    if len(parts) < 2:
        return None

    def part_reaches(first: set[str], second: set[str]) -> bool:
        return any(b in reach[a] for a in first for b in second if a != b)

    # Merge pairwise-incomparable classes (e.g. the two branches of an
    # inner choice) into the same sequence part, transitively.
    merged = True
    while merged and len(parts) > 1:
        merged = False
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                forward = part_reaches(parts[i], parts[j])
                backward = part_reaches(parts[j], parts[i])
                if forward == backward:  # incomparable (or mutual: defensive)
                    parts[i] = parts[i] | parts[j]
                    del parts[j]
                    merged = True
                    break
            if merged:
                break
    if len(parts) < 2:
        return None

    # Strict topological order of the remaining parts.
    ordered: list[set[str]] = []
    remaining = parts[:]
    while remaining:
        minimal = [
            part
            for part in remaining
            if not any(
                other is not part and part_reaches(other, part) for other in remaining
            )
        ]
        if len(minimal) != 1:
            return None
        ordered.append(minimal[0])
        remaining.remove(minimal[0])
    return ordered


def _parallel_cut(
    alphabet: list[str],
    graph: set[tuple[str, str]],
    starts: set[str],
    ends: set[str],
) -> list[set[str]] | None:
    # Two activities belong to the same part when some direction of edge
    # is MISSING between them (parallel parts see all cross edges in both
    # directions).
    adjacency: dict[str, set[str]] = {a: set() for a in alphabet}
    for a in alphabet:
        for b in alphabet:
            if a == b:
                continue
            if (a, b) not in graph or (b, a) not in graph:
                adjacency[a].add(b)
                adjacency[b].add(a)
    components = _components(alphabet, adjacency)
    if len(components) < 2:
        return None
    # Every part must contain at least one start and one end activity.
    for part in components:
        if not (part & starts) or not (part & ends):
            return None
    return components


def _loop_cut(
    alphabet: list[str],
    graph: set[tuple[str, str]],
    starts: set[str],
    ends: set[str],
) -> tuple[set[str], set[str]] | None:
    boundary = starts | ends
    redo = set(alphabet) - boundary
    if not redo:
        return None
    # Remove edges that stay within the body boundary; the candidate redo
    # parts are components of the rest.  Redo parts may only connect to
    # the body via end -> redo and redo -> start edges.
    body = set(boundary)
    for a, b in graph:
        if a in redo or b in redo:
            continue
    # Validate the redo set as a whole.
    for a, b in graph:
        if a in body and b in redo and a not in ends:
            return None
        if a in redo and b in body and b not in starts:
            return None
    # A loop must actually recur: some end must feed some redo, and some
    # redo must feed some start.
    enters_redo = any(a in ends and b in redo for a, b in graph)
    leaves_redo = any(a in redo and b in starts for a, b in graph)
    if not (enters_redo and leaves_redo):
        return None
    return body, redo


# ----------------------------------------------------------------------
def _project(traces: list[_Trace], part: set[str]) -> list[_Trace]:
    projected = [
        tuple(activity for activity in trace if activity in part) for trace in traces
    ]
    return projected


def _split_sequence(traces: list[_Trace], part: set[str]) -> list[_Trace]:
    return _project(traces, part)


def _split_loop(
    traces: list[_Trace], body: set[str]
) -> tuple[list[_Trace], list[_Trace]]:
    body_traces: list[_Trace] = []
    redo_traces: list[_Trace] = []
    for trace in traces:
        current: list[str] = []
        in_body = True
        for activity in trace:
            if (activity in body) == in_body:
                current.append(activity)
            else:
                (body_traces if in_body else redo_traces).append(tuple(current))
                current = [activity]
                in_body = not in_body
        (body_traces if in_body else redo_traces).append(tuple(current))
    if not redo_traces:
        redo_traces = [()]
    return body_traces, redo_traces
