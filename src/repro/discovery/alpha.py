"""The alpha algorithm: discovering a workflow net from an event log.

The classic process-discovery algorithm (van der Aalst): from the
footprint relations of a log, find maximal (A, B) pairs where all of A
causally precede all of B, A is internally exclusive, B is internally
exclusive — each such pair becomes a place between the transitions of A
and B.  Source and sink places wire up the start/end activities.

In this library the miner closes the synthesis loop (model → log →
model) and provides discovered models for conformance checking
(:mod:`repro.conformance`); it is exact on structured logs whose behavior
the footprint abstraction can express (no short loops, no duplicate
tasks).
"""

from __future__ import annotations

from itertools import combinations

from repro.exceptions import SynthesisError
from repro.logs.footprint import Relation, compute_footprint
from repro.logs.log import EventLog
from repro.logs.stats import end_activity_counts, start_activity_counts
from repro.petri.net import PetriNet


def _causal(footprint, a: str, b: str) -> bool:
    return footprint.relation(a, b) == Relation.CAUSAL


def _exclusive(footprint, a: str, b: str) -> bool:
    return footprint.relation(a, b) == Relation.EXCLUSIVE


def _pair_ok(footprint, sources: frozenset[str], targets: frozenset[str]) -> bool:
    for a in sources:
        for b in targets:
            if not _causal(footprint, a, b):
                return False
    for a1, a2 in combinations(sorted(sources), 2):
        if not _exclusive(footprint, a1, a2):
            return False
    for b1, b2 in combinations(sorted(targets), 2):
        if not _exclusive(footprint, b1, b2):
            return False
    # Self-exclusivity (no self loops) for every member.
    for member in sources | targets:
        if not _exclusive(footprint, member, member):
            return False
    return True


def alpha_miner(log: EventLog, max_set_size: int = 3) -> PetriNet:
    """Discover a workflow net from *log* with the alpha algorithm.

    ``max_set_size`` bounds the subsets considered on each side of a
    place (the classic algorithm enumerates all subsets; real activities
    rarely need more than 2-3-way splits, and the bound keeps the miner
    polynomial for the log sizes this library generates).
    """
    if len(log) == 0:
        raise SynthesisError("cannot mine an empty log")
    footprint = compute_footprint(log)
    activities = footprint.activities
    starts = frozenset(start_activity_counts(log))
    ends = frozenset(end_activity_counts(log))

    # Step 4: candidate (A, B) pairs.
    candidates: list[tuple[frozenset[str], frozenset[str]]] = []
    sets: list[frozenset[str]] = [
        frozenset(combo)
        for size in range(1, max_set_size + 1)
        for combo in combinations(activities, size)
    ]
    for sources in sets:
        for targets in sets:
            if _pair_ok(footprint, sources, targets):
                candidates.append((sources, targets))

    # Step 5: keep only maximal pairs.
    maximal: list[tuple[frozenset[str], frozenset[str]]] = []
    for sources, targets in candidates:
        dominated = any(
            (sources <= other_sources and targets <= other_targets)
            and (sources, targets) != (other_sources, other_targets)
            for other_sources, other_targets in candidates
        )
        if not dominated:
            maximal.append((sources, targets))

    # Steps 6-7: build the net.
    net = PetriNet(name=f"alpha({log.name})")
    for activity in activities:
        net.add_transition(f"t_{activity}", label=activity)
    net.add_place("p_source")
    net.add_place("p_sink")
    for activity in starts:
        net.add_arc("p_source", f"t_{activity}")
    for activity in ends:
        net.add_arc(f"t_{activity}", "p_sink")
    for index, (sources, targets) in enumerate(sorted(
        maximal, key=lambda pair: (sorted(pair[0]), sorted(pair[1]))
    )):
        place = f"p_{index}"
        net.add_place(place)
        for activity in sources:
            net.add_arc(f"t_{activity}", place)
        for activity in targets:
            net.add_arc(place, f"t_{activity}")
    return net
