"""The heuristics miner: noise-robust causal-graph discovery.

Weijters & van der Aalst's classic refinement of the directly-follows
graph — the same raw statistics as the paper's dependency graph, but with
a *dependency measure* that separates genuine causality from noise::

    dep(a, b) = (|a > b| - |b > a|) / (|a > b| + |b > a| + 1)

where ``|a > b|`` counts directly-follows occurrences.  Edges are kept
when the measure clears a threshold; one-loops and two-loops get their
own measures.  The result is a :class:`CausalGraph` — handy both as a
noise-robust view of a log and as a reference for what the matching
library's dependency graphs abstract away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SynthesisError
from repro.logs.log import EventLog
from repro.logs.stats import activity_occurrence_counts, directly_follows_counts


@dataclass(frozen=True, slots=True)
class CausalGraph:
    """The heuristics-miner output: dependency-scored causal relations."""

    activities: tuple[str, ...]
    edges: dict[tuple[str, str], float]  # (a, b) -> dependency measure
    loops: dict[str, float]  # a -> one-loop measure
    start_activities: frozenset[str]
    end_activities: frozenset[str]

    def successors(self, activity: str) -> list[str]:
        return sorted(b for (a, b) in self.edges if a == activity)

    def predecessors(self, activity: str) -> list[str]:
        return sorted(a for (a, b) in self.edges if b == activity)

    def to_dot(self) -> str:
        lines = ["digraph causal {", "  rankdir=LR;"]
        for activity in self.activities:
            shape = []
            if activity in self.start_activities:
                shape.append("color=green")
            if activity in self.end_activities:
                shape.append("color=red")
            attributes = f" [{' '.join(shape)}]" if shape else ""
            lines.append(f'  "{activity}"{attributes};')
        for (a, b), measure in sorted(self.edges.items()):
            lines.append(f'  "{a}" -> "{b}" [label="{measure:.2f}"];')
        lines.append("}")
        return "\n".join(lines)


def heuristic_miner(
    log: EventLog,
    dependency_threshold: float = 0.9,
    loop_threshold: float = 0.9,
) -> CausalGraph:
    """Mine the causal graph of *log* with the heuristics-miner measures.

    Parameters
    ----------
    dependency_threshold:
        Minimum ``dep(a, b)`` for a causal edge; lower values admit more
        (noisier) edges.
    loop_threshold:
        Minimum one-loop measure ``|a > a| / (|a > a| + 1)``.
    """
    if len(log) == 0:
        raise SynthesisError("cannot mine an empty log")
    if not -1.0 <= dependency_threshold <= 1.0:
        raise SynthesisError(
            f"dependency_threshold must be in [-1, 1], got {dependency_threshold}"
        )
    follows = directly_follows_counts(log)
    occurrences = activity_occurrence_counts(log)
    activities = tuple(sorted(occurrences))

    edges: dict[tuple[str, str], float] = {}
    loops: dict[str, float] = {}
    for a in activities:
        self_count = follows.get((a, a), 0)
        if self_count:
            measure = self_count / (self_count + 1)
            if measure >= loop_threshold:
                loops[a] = measure
        for b in activities:
            if a == b:
                continue
            forward = follows.get((a, b), 0)
            backward = follows.get((b, a), 0)
            if forward == 0:
                continue
            measure = (forward - backward) / (forward + backward + 1)
            if measure >= dependency_threshold:
                edges[(a, b)] = measure

    starts = frozenset(trace.activities[0] for trace in log)
    ends = frozenset(trace.activities[-1] for trace in log)
    return CausalGraph(
        activities=activities,
        edges=edges,
        loops=loops,
        start_activities=starts,
        end_activities=ends,
    )
