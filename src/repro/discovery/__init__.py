"""Process discovery: mining models from event logs."""

from repro.discovery.alpha import alpha_miner
from repro.discovery.heuristic import CausalGraph, heuristic_miner
from repro.discovery.inductive import inductive_miner

__all__ = ["alpha_miner", "heuristic_miner", "CausalGraph", "inductive_miner"]
