"""Behavioral footprints: order relations between activities.

The classic process-mining abstraction (the "footprint matrix" of the
alpha algorithm, and the basis of behavioral profiles à la Weidlich et
al., whose ICoP framework the paper discusses in related work): from the
directly-follows pairs of a log, every activity pair falls into one of

* ``CAUSAL``     — ``a > b`` but never ``b > a`` (strict order),
* ``REVERSE``    — ``b > a`` but never ``a > b``,
* ``PARALLEL``   — both directions observed (interleaving),
* ``EXCLUSIVE``  — never adjacent in either direction.

Footprints power the :class:`repro.baselines.profiles.ProfileMatcher`
baseline and are generally useful for inspecting synthesized logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.logs.log import EventLog


class Relation(str, Enum):
    """Order relation between two activities in a footprint."""

    CAUSAL = "->"
    REVERSE = "<-"
    PARALLEL = "||"
    EXCLUSIVE = "#"


@dataclass(frozen=True, slots=True)
class Footprint:
    """The footprint matrix of an event log."""

    activities: tuple[str, ...]
    _relations: dict[tuple[str, str], Relation]

    def relation(self, first: str, second: str) -> Relation:
        """The relation between two activities (EXCLUSIVE if unrecorded)."""
        if first not in self.activities or second not in self.activities:
            raise KeyError(f"unknown activity in pair ({first!r}, {second!r})")
        return self._relations.get((first, second), Relation.EXCLUSIVE)

    def profile(self, activity: str) -> tuple[float, float, float, float]:
        """Relative relation counts of *activity* against all others.

        Returns the fractions ``(causal, reverse, parallel, exclusive)``
        over the other activities — a label-free structural fingerprint.
        """
        others = [other for other in self.activities if other != activity]
        if not others:
            return (0.0, 0.0, 0.0, 1.0)
        counts = {relation: 0 for relation in Relation}
        for other in others:
            counts[self.relation(activity, other)] += 1
        total = len(others)
        return (
            counts[Relation.CAUSAL] / total,
            counts[Relation.REVERSE] / total,
            counts[Relation.PARALLEL] / total,
            counts[Relation.EXCLUSIVE] / total,
        )

    def render(self) -> str:
        """An aligned textual footprint matrix (for debugging/reports)."""
        width = max(len(activity) for activity in self.activities)
        header = " " * (width + 1) + " ".join(
            activity.rjust(width) for activity in self.activities
        )
        lines = [header]
        for first in self.activities:
            cells = " ".join(
                self.relation(first, second).value.rjust(width)
                for second in self.activities
            )
            lines.append(f"{first.rjust(width)} {cells}")
        return "\n".join(lines)


def compute_footprint(log: EventLog) -> Footprint:
    """Build the footprint matrix of *log* from its directly-follows pairs."""
    follows: set[tuple[str, str]] = set()
    for trace in log:
        follows.update(trace.pairs())
    activities = tuple(sorted(log.activities()))
    relations: dict[tuple[str, str], Relation] = {}
    for first in activities:
        for second in activities:
            forward = (first, second) in follows
            backward = (second, first) in follows
            if forward and backward:
                relations[(first, second)] = Relation.PARALLEL
            elif forward:
                relations[(first, second)] = Relation.CAUSAL
            elif backward:
                relations[(first, second)] = Relation.REVERSE
            # EXCLUSIVE is the default; omit to keep the dict sparse.
    return Footprint(activities, relations)


def footprint_agreement(
    first: Footprint,
    second: Footprint,
    mapping: dict[str, str],
) -> float:
    """Fraction of mapped activity pairs with identical relations.

    Given a 1:1 ``mapping`` from the first footprint's activities to the
    second's, compare the relation of every mapped pair ``(a, b)`` with
    the relation of ``(mapping[a], mapping[b])``; return the agreeing
    fraction (1.0 for an order-isomorphic mapping).
    """
    mapped = sorted(mapping)
    if len(mapped) < 2:
        return 1.0 if mapped else 0.0
    total = 0
    agreeing = 0
    for a in mapped:
        for b in mapped:
            if a == b:
                continue
            total += 1
            if first.relation(a, b) == second.relation(mapping[a], mapping[b]):
                agreeing += 1
    return agreeing / total
