"""CSV reader/writer for event logs.

The flat format common in industry extracts: one row per event, columns
``case_id, activity, timestamp`` (timestamp optional).  Rows are grouped by
case id; within a case, rows are ordered by timestamp when present, by file
order otherwise.

Real extracts are messy, so :func:`read_csv` supports three fault modes:

* ``on_error="raise"`` (default) — the first bad row aborts the read with
  a :class:`~repro.exceptions.LogFormatError`;
* ``on_error="skip"`` — bad rows are dropped and listed in the
  :class:`~repro.runtime.IngestionReport`;
* ``on_error="repair"`` — recoverable faults are fixed in place (an
  unparseable timestamp becomes "no timestamp"); unrecoverable rows
  (missing columns, empty ``case_id``/``activity``) are still dropped.
  Every drop and repair is recorded.

File-level faults — an empty document or a header without the required
columns — always raise: there is no row-by-row recovery without a header.
A case holding *some but not all* timestamps falls back to file order in
every mode and is recorded as ``fallback_cases`` in the report.
"""

from __future__ import annotations

import csv
import io
import os
from typing import IO, Iterable

from repro.exceptions import LogFormatError
from repro.logs.events import Event, Trace
from repro.logs.log import EventLog
from repro.runtime.report import IngestionReport

CASE_COLUMN = "case_id"
ACTIVITY_COLUMN = "activity"
TIMESTAMP_COLUMN = "timestamp"

ON_ERROR_MODES = ("raise", "skip", "repair")


def write_csv(log: EventLog, destination: str | os.PathLike[str] | IO[str]) -> None:
    """Serialize *log* as CSV to *destination* (path or text file)."""
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", newline="", encoding="utf-8") as handle:
            _write_rows(log, handle)
    else:
        _write_rows(log, destination)


def _write_rows(log: EventLog, handle: IO[str]) -> None:
    writer = csv.writer(handle)
    writer.writerow([CASE_COLUMN, ACTIVITY_COLUMN, TIMESTAMP_COLUMN])
    for index, trace in enumerate(log):
        case_id = trace.case_id if trace.case_id is not None else f"case-{index}"
        for event in trace:
            timestamp = "" if event.timestamp is None else repr(event.timestamp)
            writer.writerow([case_id, event.activity, timestamp])


def read_csv(
    source: str | os.PathLike[str] | IO[str],
    name: str = "log",
    on_error: str = "raise",
    report: IngestionReport | None = None,
) -> EventLog:
    """Parse CSV event data at *source* into an :class:`EventLog`.

    Case order in the output follows first appearance in the file.  See
    the module docstring for the ``on_error`` fault modes; pass an
    :class:`~repro.runtime.IngestionReport` to receive the per-row
    accounting of what was dropped or repaired.
    """
    if on_error not in ON_ERROR_MODES:
        raise ValueError(f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}")
    if report is None:
        report = IngestionReport(mode=on_error)
    if isinstance(source, (str, os.PathLike)):
        if not report.source:
            report.source = os.fspath(source)
        with open(source, newline="", encoding="utf-8") as handle:
            return _read_rows(handle, name, on_error, report)
    return _read_rows(source, name, on_error, report)


def _read_rows(
    handle: IO[str], name: str, on_error: str = "raise",
    report: IngestionReport | None = None,
) -> EventLog:
    if report is None:
        report = IngestionReport(mode=on_error)
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise LogFormatError("empty CSV document") from None
    try:
        case_idx = header.index(CASE_COLUMN)
        activity_idx = header.index(ACTIVITY_COLUMN)
    except ValueError:
        raise LogFormatError(
            f"CSV header must contain {CASE_COLUMN!r} and {ACTIVITY_COLUMN!r}; got {header!r}"
        ) from None
    timestamp_idx = header.index(TIMESTAMP_COLUMN) if TIMESTAMP_COLUMN in header else None

    def row_bytes(row: list[str]) -> bytes:
        """The rejected row re-serialized for the dead-letter archive."""
        sink = io.StringIO()
        csv.writer(sink).writerow(row)
        return sink.getvalue().encode("utf-8")

    def reject(row_number: int, problem: str, row: list[str]) -> None:
        """Apply *on_error* to an unrecoverable row."""
        if on_error == "raise":
            raise LogFormatError(f"row {row_number}: {problem}")
        report.record_dropped(f"row {row_number}", problem, row_bytes(row))

    cases: dict[str, list[tuple[float | None, int, Event]]] = {}
    for row_number, row in enumerate(reader, start=2):
        if not row:
            continue  # blank line, not event data
        report.record_row(loaded=False)
        try:
            case_id = row[case_idx]
            activity = row[activity_idx]
        except IndexError:
            reject(row_number, "missing required columns", row)
            continue
        if not case_id.strip():
            reject(row_number, f"empty {CASE_COLUMN!r}", row)
            continue
        if not activity.strip():
            reject(row_number, f"empty {ACTIVITY_COLUMN!r}", row)
            continue
        timestamp: float | None = None
        if timestamp_idx is not None and timestamp_idx < len(row) and row[timestamp_idx]:
            try:
                timestamp = float(row[timestamp_idx])
            except ValueError:
                problem = f"invalid timestamp {row[timestamp_idx]!r}"
                if on_error == "raise":
                    raise LogFormatError(f"row {row_number}: {problem}") from None
                if on_error == "skip":
                    report.record_dropped(
                        f"row {row_number}", problem, row_bytes(row)
                    )
                    continue
                # repair: keep the event, drop only the unusable timestamp
                report.record_repaired(
                    f"row {row_number}", f"{problem} treated as missing"
                )
                timestamp = None
        report.events_loaded += 1
        cases.setdefault(case_id, []).append((timestamp, row_number, Event(activity, timestamp)))

    log = EventLog(name=name)
    for case_id, entries in cases.items():
        with_timestamp = sum(1 for timestamp, _, _ in entries if timestamp is not None)
        if with_timestamp == len(entries):
            entries.sort(key=lambda entry: (entry[0], entry[1]))
        elif with_timestamp:
            # Mixed timestamps: ordering silently changes meaning, so the
            # fallback to file order is recorded rather than guessed around.
            report.record_fallback(case_id)
        log.append(Trace((event for _, _, event in entries), case_id=case_id))
    return log


def traces_from_rows(rows: Iterable[tuple[str, str]], name: str = "log") -> EventLog:
    """Build a log from in-memory ``(case_id, activity)`` rows, in order."""
    cases: dict[str, list[Event]] = {}
    for case_id, activity in rows:
        cases.setdefault(case_id, []).append(Event(activity))
    log = EventLog(name=name)
    for case_id, events in cases.items():
        log.append(Trace(events, case_id=case_id))
    return log
