"""CSV reader/writer for event logs.

The flat format common in industry extracts: one row per event, columns
``case_id, activity, timestamp`` (timestamp optional).  Rows are grouped by
case id; within a case, rows are ordered by timestamp when present, by file
order otherwise.
"""

from __future__ import annotations

import csv
import os
from typing import IO, Iterable

from repro.exceptions import LogFormatError
from repro.logs.events import Event, Trace
from repro.logs.log import EventLog

CASE_COLUMN = "case_id"
ACTIVITY_COLUMN = "activity"
TIMESTAMP_COLUMN = "timestamp"


def write_csv(log: EventLog, destination: str | os.PathLike[str] | IO[str]) -> None:
    """Serialize *log* as CSV to *destination* (path or text file)."""
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", newline="", encoding="utf-8") as handle:
            _write_rows(log, handle)
    else:
        _write_rows(log, destination)


def _write_rows(log: EventLog, handle: IO[str]) -> None:
    writer = csv.writer(handle)
    writer.writerow([CASE_COLUMN, ACTIVITY_COLUMN, TIMESTAMP_COLUMN])
    for index, trace in enumerate(log):
        case_id = trace.case_id if trace.case_id is not None else f"case-{index}"
        for event in trace:
            timestamp = "" if event.timestamp is None else repr(event.timestamp)
            writer.writerow([case_id, event.activity, timestamp])


def read_csv(source: str | os.PathLike[str] | IO[str], name: str = "log") -> EventLog:
    """Parse CSV event data at *source* into an :class:`EventLog`.

    Case order in the output follows first appearance in the file.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, newline="", encoding="utf-8") as handle:
            return _read_rows(handle, name)
    return _read_rows(source, name)


def _read_rows(handle: IO[str], name: str) -> EventLog:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise LogFormatError("empty CSV document") from None
    try:
        case_idx = header.index(CASE_COLUMN)
        activity_idx = header.index(ACTIVITY_COLUMN)
    except ValueError:
        raise LogFormatError(
            f"CSV header must contain {CASE_COLUMN!r} and {ACTIVITY_COLUMN!r}; got {header!r}"
        ) from None
    timestamp_idx = header.index(TIMESTAMP_COLUMN) if TIMESTAMP_COLUMN in header else None

    cases: dict[str, list[tuple[float | None, int, Event]]] = {}
    for row_number, row in enumerate(reader, start=2):
        if not row:
            continue
        try:
            case_id = row[case_idx]
            activity = row[activity_idx]
        except IndexError:
            raise LogFormatError(f"row {row_number} is missing required columns") from None
        timestamp: float | None = None
        if timestamp_idx is not None and timestamp_idx < len(row) and row[timestamp_idx]:
            try:
                timestamp = float(row[timestamp_idx])
            except ValueError:
                raise LogFormatError(
                    f"row {row_number}: invalid timestamp {row[timestamp_idx]!r}"
                ) from None
        cases.setdefault(case_id, []).append((timestamp, row_number, Event(activity, timestamp)))

    log = EventLog(name=name)
    for case_id, entries in cases.items():
        if all(timestamp is not None for timestamp, _, _ in entries):
            entries.sort(key=lambda entry: (entry[0], entry[1]))
        log.append(Trace((event for _, _, event in entries), case_id=case_id))
    return log


def traces_from_rows(rows: Iterable[tuple[str, str]], name: str = "log") -> EventLog:
    """Build a log from in-memory ``(case_id, activity)`` rows, in order."""
    cases: dict[str, list[Event]] = {}
    for case_id, activity in rows:
        cases.setdefault(case_id, []).append(Event(activity))
    log = EventLog(name=name)
    for case_id, events in cases.items():
        log.append(Trace(events, case_id=case_id))
    return log
