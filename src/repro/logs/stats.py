"""Statistics over event logs.

The dependency graph (Definition 1) is a pure function of two statistics:
node frequencies (fraction of traces containing each activity) and edge
frequencies (fraction of traces where an ordered activity pair occurs
consecutively).  This module computes those plus a handful of descriptive
statistics used by the synthesis layer and the experiment reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.exceptions import EventLogError
from repro.logs.log import EventLog


@dataclass(frozen=True, slots=True)
class LogStatistics:
    """Normalized frequency statistics of an event log.

    Attributes
    ----------
    trace_count:
        Number of traces in the log.
    activity_frequencies:
        ``f(v)``: fraction of traces containing each activity; in (0, 1].
    pair_frequencies:
        ``f(v1, v2)``: fraction of traces where ``v1 v2`` occur
        consecutively at least once; in (0, 1].
    """

    trace_count: int
    activity_frequencies: dict[str, float]
    pair_frequencies: dict[tuple[str, str], float]

    @property
    def activities(self) -> frozenset[str]:
        return frozenset(self.activity_frequencies)


def compute_statistics(log: EventLog) -> LogStatistics:
    """Compute the normalized frequencies of Definition 1 for *log*."""
    trace_count = len(log)
    if trace_count == 0:
        raise EventLogError("cannot compute statistics of an empty event log")
    activity_frequencies = {
        activity: count / trace_count
        for activity, count in log.activity_trace_counts().items()
    }
    pair_frequencies = {
        pair: count / trace_count for pair, count in log.pair_trace_counts().items()
    }
    return LogStatistics(trace_count, activity_frequencies, pair_frequencies)


@dataclass(frozen=True, slots=True)
class LogSummary:
    """Descriptive statistics for reports (not used by matching)."""

    trace_count: int
    event_count: int
    activity_count: int
    variant_count: int
    min_trace_length: int
    max_trace_length: int
    mean_trace_length: float


def summarize(log: EventLog) -> LogSummary:
    """Compute descriptive statistics of *log*."""
    if len(log) == 0:
        raise EventLogError("cannot summarize an empty event log")
    lengths = [len(trace) for trace in log]
    return LogSummary(
        trace_count=len(log),
        event_count=sum(lengths),
        activity_count=len(log.activities()),
        variant_count=len(log.variant_counts()),
        min_trace_length=min(lengths),
        max_trace_length=max(lengths),
        mean_trace_length=sum(lengths) / len(lengths),
    )


def start_activity_counts(log: EventLog) -> Counter[str]:
    """How many traces start with each activity."""
    return Counter(trace.activities[0] for trace in log)


def end_activity_counts(log: EventLog) -> Counter[str]:
    """How many traces end with each activity."""
    return Counter(trace.activities[-1] for trace in log)


def directly_follows_counts(log: EventLog) -> Counter[tuple[str, str]]:
    """Total number of consecutive occurrences of each ordered pair.

    Unlike :meth:`EventLog.pair_trace_counts`, this counts every occurrence
    (a pair appearing twice in one trace counts twice).  Definition 1 uses
    the per-trace version; this one feeds the SEQ-pattern composite
    candidate discovery (Section 5.1 of the paper), which needs occurrence
    counts to decide whether two activities *always* appear together.
    """
    counts: Counter[tuple[str, str]] = Counter()
    for trace in log:
        counts.update(trace.pairs())
    return counts


def activity_occurrence_counts(log: EventLog) -> Counter[str]:
    """Total number of occurrences of each activity across all traces."""
    counts: Counter[str] = Counter()
    for trace in log:
        counts.update(trace.activities)
    return counts
