"""Online log statistics: dependency-graph inputs from a trace stream.

The paper's motivating systems (OA/ERP) log continuously; a production
integration recomputes matchings as data arrives.  This accumulator
ingests traces one at a time in O(trace length) and can emit a
:class:`~repro.logs.stats.LogStatistics` snapshot — identical to the
batch computation — at any point, so dependency graphs (and matchings)
can be refreshed incrementally without retaining the raw log.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.exceptions import EventLogError
from repro.logs.events import Trace
from repro.logs.log import RESERVED_ACTIVITY, EventLog
from repro.logs.stats import LogStatistics


class OnlineStatistics:
    """Streaming accumulator of Definition 1's normalized frequencies."""

    __slots__ = ("_trace_count", "_activity_counts", "_pair_counts")

    def __init__(self):
        self._trace_count = 0
        self._activity_counts: Counter[str] = Counter()
        self._pair_counts: Counter[tuple[str, str]] = Counter()

    @property
    def trace_count(self) -> int:
        return self._trace_count

    def add_trace(self, trace: Trace | Iterable[str]) -> None:
        """Ingest one completed trace."""
        if not isinstance(trace, Trace):
            trace = Trace(trace)
        if len(trace) == 0:
            raise EventLogError("empty traces carry no information")
        if RESERVED_ACTIVITY in trace.distinct_activities():
            raise EventLogError(
                f"activity name {RESERVED_ACTIVITY!r} is reserved"
            )
        self._trace_count += 1
        self._activity_counts.update(trace.distinct_activities())
        self._pair_counts.update(set(trace.pairs()))

    def add_log(self, log: EventLog) -> None:
        """Ingest every trace of *log*."""
        for trace in log:
            self.add_trace(trace)

    def merge(self, other: "OnlineStatistics") -> "OnlineStatistics":
        """Combine two accumulators (e.g. from parallel shards)."""
        merged = OnlineStatistics()
        merged._trace_count = self._trace_count + other._trace_count
        merged._activity_counts = self._activity_counts + other._activity_counts
        merged._pair_counts = self._pair_counts + other._pair_counts
        return merged

    def snapshot(self) -> LogStatistics:
        """The statistics of everything ingested so far."""
        if self._trace_count == 0:
            raise EventLogError("no traces ingested yet")
        return LogStatistics(
            trace_count=self._trace_count,
            activity_frequencies={
                activity: count / self._trace_count
                for activity, count in self._activity_counts.items()
            },
            pair_frequencies={
                pair: count / self._trace_count
                for pair, count in self._pair_counts.items()
            },
        )

    def __repr__(self) -> str:
        return (
            f"OnlineStatistics(traces={self._trace_count}, "
            f"activities={len(self._activity_counts)})"
        )
