"""Online log statistics: dependency-graph inputs from a trace stream.

The paper's motivating systems (OA/ERP) log continuously; a production
integration recomputes matchings as data arrives.  This accumulator
ingests traces one at a time in O(trace length) and can emit a
:class:`~repro.logs.stats.LogStatistics` snapshot — identical to the
batch computation — at any point, so dependency graphs (and matchings)
can be refreshed incrementally without retaining the raw log.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.exceptions import EventLogError
from repro.logs.events import Trace
from repro.logs.log import RESERVED_ACTIVITY, EventLog
from repro.logs.stats import LogStatistics


class OnlineStatistics:
    """Streaming accumulator of Definition 1's normalized frequencies."""

    __slots__ = ("_trace_count", "_activity_counts", "_pair_counts")

    def __init__(self):
        self._trace_count = 0
        self._activity_counts: Counter[str] = Counter()
        self._pair_counts: Counter[tuple[str, str]] = Counter()

    @property
    def trace_count(self) -> int:
        return self._trace_count

    @property
    def activity_counts(self) -> Counter[str]:
        """Raw per-activity trace counts (treat as read-only)."""
        return self._activity_counts

    @property
    def pair_counts(self) -> Counter[tuple[str, str]]:
        """Raw per-pair trace counts (treat as read-only)."""
        return self._pair_counts

    def add_sequence(self, activities: Sequence[str]) -> None:
        """Ingest one completed trace given only its activity sequence.

        The counter updates are exactly those of :meth:`add_trace` — the
        sharded ingestion pipeline uses this to count spilled trace
        blocks without rebuilding :class:`~repro.logs.events.Event`
        objects, and the differential suites hold the two entry points
        to identical statistics.
        """
        sequence = tuple(activities)
        if not sequence:
            raise EventLogError("empty traces carry no information")
        distinct = frozenset(sequence)
        if RESERVED_ACTIVITY in distinct:
            raise EventLogError(
                f"activity name {RESERVED_ACTIVITY!r} is reserved"
            )
        self._trace_count += 1
        self._activity_counts.update(distinct)
        self._pair_counts.update(set(zip(sequence, sequence[1:])))

    def add_trace(self, trace: Trace | Iterable[str]) -> None:
        """Ingest one completed trace."""
        if isinstance(trace, Trace):
            self.add_sequence(trace.activities)
        else:
            self.add_sequence(tuple(trace))

    def add_log(self, log: EventLog) -> None:
        """Ingest every trace of *log*."""
        for trace in log:
            self.add_trace(trace)

    def seed_counts(
        self,
        trace_count: int,
        activity_counts: Counter[str] | dict[str, int],
        pair_counts: Counter[tuple[str, str]] | dict[tuple[str, str], int],
    ) -> None:
        """Install previously computed raw counts (store restore path).

        The accumulator must be empty; the caller vouches that the counts
        came from a real trace population (the persistent
        :class:`~repro.store.LogStore` digest-verifies them on load).
        """
        if self._trace_count:
            raise EventLogError("cannot seed a non-empty accumulator")
        if trace_count < 0:
            raise EventLogError(f"trace_count must be >= 0, got {trace_count}")
        self._trace_count = trace_count
        self._activity_counts = Counter(activity_counts)
        self._pair_counts = Counter(
            {tuple(pair): count for pair, count in dict(pair_counts).items()}
        )

    def merge(self, other: "OnlineStatistics") -> "OnlineStatistics":
        """Combine two accumulators (e.g. from parallel shards).

        Pure: both inputs are left untouched.  An N-way reduce through
        this method allocates fresh counters at every step; use
        :meth:`merge_into` when folding many shards into one accumulator.
        """
        merged = OnlineStatistics()
        merged._trace_count = self._trace_count + other._trace_count
        merged._activity_counts = self._activity_counts + other._activity_counts
        merged._pair_counts = self._pair_counts + other._pair_counts
        return merged

    def merge_into(self, other: "OnlineStatistics") -> None:
        """Fold this accumulator's counts into *other*, in place.

        The destructive counterpart of :meth:`merge`: ``other`` absorbs
        ``self`` without allocating fresh counters, so an N-shard reduce
        is O(touched keys) per shard instead of O(N · vocabulary)
        allocations.  ``self`` is left untouched; after the call
        ``other`` equals ``other.merge(self)`` key for key.
        """
        other._trace_count += self._trace_count
        other._activity_counts.update(self._activity_counts)
        other._pair_counts.update(self._pair_counts)

    def snapshot(self) -> LogStatistics:
        """The statistics of everything ingested so far."""
        if self._trace_count == 0:
            raise EventLogError("no traces ingested yet")
        return LogStatistics(
            trace_count=self._trace_count,
            activity_frequencies={
                activity: count / self._trace_count
                for activity, count in self._activity_counts.items()
            },
            pair_frequencies={
                pair: count / self._trace_count
                for pair, count in self._pair_counts.items()
            },
        )

    def __repr__(self) -> str:
        return (
            f"OnlineStatistics(traces={self._trace_count}, "
            f"activities={len(self._activity_counts)})"
        )
