"""Event-log substrate: traces, logs, statistics and serialization.

This package is the paper's input layer: an event log is a multiset of
traces (Section 2), and the dependency graph consumes the normalized
frequency statistics computed here.
"""

from repro.logs.events import Event, Trace
from repro.logs.footprint import Footprint, Relation, compute_footprint, footprint_agreement
from repro.logs.log import RESERVED_ACTIVITY, EventLog
from repro.logs.compare import LogComparison, compare_logs
from repro.logs.streaming import OnlineStatistics
from repro.logs.stats import (
    LogStatistics,
    LogSummary,
    compute_statistics,
    summarize,
)

__all__ = [
    "Event",
    "Trace",
    "EventLog",
    "RESERVED_ACTIVITY",
    "Footprint",
    "Relation",
    "compute_footprint",
    "footprint_agreement",
    "OnlineStatistics",
    "LogComparison",
    "compare_logs",
    "LogStatistics",
    "LogSummary",
    "compute_statistics",
    "summarize",
]
