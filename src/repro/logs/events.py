"""Core event-data value types: :class:`Event` and :class:`Trace`.

An *event* is one recorded execution step of a business process; its
``activity`` is the label under which the step was logged (the paper calls
this the *event name*, which may be opaque).  A *trace* is the finite
sequence of events recorded for one case (one order, one ticket, ...).

These types are deliberately small and immutable: the heavy lifting lives
in :class:`repro.logs.log.EventLog` and the dependency-graph layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping


@dataclass(frozen=True, slots=True)
class Event:
    """A single recorded event.

    Parameters
    ----------
    activity:
        The event name (label).  This is the unit of matching: two logs are
        matched activity-by-activity, not occurrence-by-occurrence.
    timestamp:
        Optional completion time, seconds since an arbitrary epoch.  Only
        used by the XES/CSV serializers; the matching algorithms rely purely
        on the ordering within a trace.
    attributes:
        Optional extra payload (resource, cost...), preserved through
        serialization round-trips but ignored by matching.
    """

    activity: str
    timestamp: float | None = None
    attributes: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.activity, str):
            raise TypeError(f"activity must be a string, got {type(self.activity).__name__}")
        if not self.activity:
            raise ValueError("activity must be a non-empty string")

    def with_activity(self, activity: str) -> "Event":
        """Return a copy of this event relabelled to *activity*."""
        return Event(activity, self.timestamp, self.attributes)


class Trace:
    """An immutable, ordered sequence of :class:`Event` objects.

    A trace records the steps taken for one case.  Traces compare equal when
    their activity sequences are equal — timestamps and attributes are
    treated as annotations, matching the paper's trace model in which a
    trace is an element of ``V*``.
    """

    __slots__ = ("_events", "_activities", "case_id")

    def __init__(self, events: Iterable[Event | str], case_id: str | None = None):
        normalized = tuple(
            event if isinstance(event, Event) else Event(event) for event in events
        )
        self._events: tuple[Event, ...] = normalized
        self._activities: tuple[str, ...] = tuple(event.activity for event in normalized)
        self.case_id = case_id

    @property
    def events(self) -> tuple[Event, ...]:
        """The events of this trace, in order."""
        return self._events

    @property
    def activities(self) -> tuple[str, ...]:
        """The activity sequence of this trace."""
        return self._activities

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._activities == other._activities

    def __hash__(self) -> int:
        return hash(self._activities)

    def __repr__(self) -> str:
        label = f" case_id={self.case_id!r}" if self.case_id is not None else ""
        return f"Trace({list(self._activities)!r}{label})"

    def pairs(self) -> Iterator[tuple[str, str]]:
        """Yield every consecutive activity pair ``(a_i, a_{i+1})``."""
        for first, second in zip(self._activities, self._activities[1:]):
            yield first, second

    def distinct_activities(self) -> frozenset[str]:
        """The set of activities occurring in this trace."""
        return frozenset(self._activities)

    def drop_prefix(self, count: int) -> "Trace":
        """Return this trace without its first *count* events.

        Used to synthesize dislocated logs (Section 5.2, Figure 9 of the
        paper removes the first ``m`` events of each trace).  Dropping more
        events than the trace holds yields an empty trace, which callers are
        expected to filter out.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return Trace(self._events[count:], case_id=self.case_id)

    def drop_suffix(self, count: int) -> "Trace":
        """Return this trace without its last *count* events."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return Trace(self._events, case_id=self.case_id)
        return Trace(self._events[:-count], case_id=self.case_id)

    def relabel(self, mapping: Mapping[str, str]) -> "Trace":
        """Return a copy with each activity renamed through *mapping*.

        Activities absent from *mapping* are kept unchanged.
        """
        return Trace(
            (
                event.with_activity(mapping.get(event.activity, event.activity))
                for event in self._events
            ),
            case_id=self.case_id,
        )

    def replace_run(self, run: tuple[str, ...], replacement: str) -> "Trace":
        """Collapse every consecutive occurrence of *run* into *replacement*.

        This is the trace-level primitive behind composite-event merging:
        merging the composite ``{C, D}`` rewrites ``... C D ...`` into
        ``... C+D ...``.  Non-contiguous occurrences are left untouched.
        """
        if not run:
            raise ValueError("run must be a non-empty activity sequence")
        events: list[Event] = []
        i = 0
        n = len(self._events)
        width = len(run)
        while i < n:
            if self._activities[i : i + width] == run:
                anchor = self._events[i]
                events.append(Event(replacement, anchor.timestamp, anchor.attributes))
                i += width
            else:
                events.append(self._events[i])
                i += 1
        return Trace(events, case_id=self.case_id)
