"""The :class:`EventLog`: a multiset of traces.

An event log is the paper's input object (Section 2): ``a multi-set of
traces from V*``.  The class keeps traces in insertion order (duplicates
allowed — the *multiset* part matters, because dependency-graph frequencies
are fractions of traces) and offers the derived views the matching layer
needs.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, Mapping

from repro.exceptions import EventLogError
from repro.logs.events import Event, Trace

#: Reserved activity name used for the artificial event in dependency
#: graphs.  Logs must not contain it; :class:`EventLog` enforces this.
RESERVED_ACTIVITY = "⊥X"  # "⊥X"


class EventLog:
    """A multiset of :class:`Trace` objects with a name.

    Parameters
    ----------
    traces:
        The traces of the log.  Bare activity-string sequences are accepted
        and wrapped.  Empty traces are rejected — an empty trace carries no
        behavioural information and would corrupt frequency normalization.
    name:
        A human-readable identifier used in reports.
    """

    __slots__ = ("_traces", "name")

    def __init__(
        self,
        traces: Iterable[Trace | Iterable[Event | str]] = (),
        name: str = "log",
    ):
        self.name = name
        self._traces: list[Trace] = []
        for trace in traces:
            self.append(trace if isinstance(trace, Trace) else Trace(trace))

    def append(self, trace: Trace) -> None:
        """Add *trace* to the log, validating it."""
        if not isinstance(trace, Trace):
            raise TypeError(f"expected Trace, got {type(trace).__name__}")
        if len(trace) == 0:
            raise EventLogError("empty traces are not allowed in an event log")
        if RESERVED_ACTIVITY in trace.distinct_activities():
            raise EventLogError(
                f"activity name {RESERVED_ACTIVITY!r} is reserved for the artificial event"
            )
        self._traces.append(trace)

    @property
    def traces(self) -> tuple[Trace, ...]:
        """The traces of the log, in insertion order (duplicates allowed)."""
        return tuple(self._traces)

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventLog):
            return NotImplemented
        return Counter(self._traces) == Counter(other._traces)

    def __repr__(self) -> str:
        return (
            f"EventLog(name={self.name!r}, traces={len(self._traces)}, "
            f"activities={len(self.activities())})"
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def activities(self) -> frozenset[str]:
        """All distinct activities appearing in the log."""
        names: set[str] = set()
        for trace in self._traces:
            names.update(trace.distinct_activities())
        return frozenset(names)

    def activity_trace_counts(self) -> Counter[str]:
        """For each activity, the number of traces that contain it.

        This is the numerator of the node frequency ``f(v)`` in
        Definition 1 (``the fraction of traces in L that contain v``).
        """
        counts: Counter[str] = Counter()
        for trace in self._traces:
            counts.update(trace.distinct_activities())
        return counts

    def pair_trace_counts(self) -> Counter[tuple[str, str]]:
        """For each ordered pair, the number of traces where it occurs
        consecutively at least once (edge frequency numerator,
        Definition 1)."""
        counts: Counter[tuple[str, str]] = Counter()
        for trace in self._traces:
            counts.update(set(trace.pairs()))
        return counts

    def variant_counts(self) -> Counter[tuple[str, ...]]:
        """Multiplicity of each distinct activity sequence (trace variant)."""
        return Counter(trace.activities for trace in self._traces)

    # ------------------------------------------------------------------
    # Transformations (all return new logs; logs are append-only otherwise)
    # ------------------------------------------------------------------
    def map_traces(
        self, transform: Callable[[Trace], Trace | None], name: str | None = None
    ) -> "EventLog":
        """Apply *transform* to every trace; ``None`` or empty results are
        dropped.  The workhorse behind the mutation operators."""
        result = EventLog(name=name if name is not None else self.name)
        for trace in self._traces:
            new_trace = transform(trace)
            if new_trace is not None and len(new_trace) > 0:
                result.append(new_trace)
        return result

    def relabel(self, mapping: Mapping[str, str], name: str | None = None) -> "EventLog":
        """Rename activities through *mapping* (used by opacification)."""
        return self.map_traces(lambda trace: trace.relabel(mapping), name=name)

    def merge_composite(
        self, run: tuple[str, ...], replacement: str, name: str | None = None
    ) -> "EventLog":
        """Collapse consecutive occurrences of *run* into *replacement*."""
        return self.map_traces(lambda trace: trace.replace_run(run, replacement), name=name)

    def filter_traces(
        self, predicate: Callable[[Trace], bool], name: str | None = None
    ) -> "EventLog":
        """Keep only the traces satisfying *predicate*."""
        result = EventLog(name=name if name is not None else self.name)
        for trace in self._traces:
            if predicate(trace):
                result.append(trace)
        return result
