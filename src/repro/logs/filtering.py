"""Trace- and event-level filtering utilities for event logs.

These helpers are the log-surgery layer the evaluation section relies on:
dislocation is injected by dropping trace prefixes/suffixes (Figure 9),
and infrequent-behaviour filtering keeps synthetic corpora realistic.
"""

from __future__ import annotations

from repro.logs.events import Trace
from repro.logs.log import EventLog


def drop_trace_prefixes(log: EventLog, count: int, name: str | None = None) -> EventLog:
    """Remove the first *count* events of every trace.

    Traces that become empty are dropped.  This is exactly the dislocation
    synthesis of the paper's Figure 9: "we synthetically remove the first m
    events of each trace in one event log".
    """
    return log.map_traces(lambda trace: trace.drop_prefix(count), name=name)


def drop_trace_suffixes(log: EventLog, count: int, name: str | None = None) -> EventLog:
    """Remove the last *count* events of every trace."""
    return log.map_traces(lambda trace: trace.drop_suffix(count), name=name)


def remove_activities(log: EventLog, activities: frozenset[str] | set[str],
                      name: str | None = None) -> EventLog:
    """Delete every occurrence of the given *activities* from all traces."""
    removed = frozenset(activities)

    def strip(trace: Trace) -> Trace:
        return Trace(
            (event for event in trace if event.activity not in removed),
            case_id=trace.case_id,
        )

    return log.map_traces(strip, name=name)


def keep_frequent_variants(log: EventLog, min_count: int, name: str | None = None) -> EventLog:
    """Keep only traces whose variant occurs at least *min_count* times."""
    if min_count < 1:
        raise ValueError(f"min_count must be >= 1, got {min_count}")
    counts = log.variant_counts()
    return log.filter_traces(
        lambda trace: counts[trace.activities] >= min_count, name=name
    )


def truncate_traces(log: EventLog, max_length: int, name: str | None = None) -> EventLog:
    """Cut every trace down to its first *max_length* events."""
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")
    return log.map_traces(
        lambda trace: Trace(trace.events[:max_length], case_id=trace.case_id), name=name
    )


def sample_traces(log: EventLog, indices: list[int], name: str | None = None) -> EventLog:
    """Build a sub-log from the traces at the given *indices* (with repeats)."""
    traces = log.traces
    result = EventLog(name=name if name is not None else log.name)
    for index in indices:
        result.append(traces[index])
    return result
