"""Minimal XES (eXtensible Event Stream, IEEE 1849) reader and writer.

Only the subset of XES the matching pipeline needs is supported: traces
with ``concept:name`` (case id), events with ``concept:name`` (activity),
optional ``time:timestamp``, and flat string attributes.  This keeps the
library dependency-free while staying interoperable with standard process
mining tools — logs written here load in ProM/pm4py and vice versa for
logs using only these elements.

:func:`read_xes` supports the same ``on_error="raise"|"skip"|"repair"``
fault modes as the CSV reader.  Parsing is streaming end to end: the
document is walked with :func:`xml.etree.ElementTree.iterparse` and each
``<trace>`` element is released as soon as it has been converted, so
memory is O(largest trace), not O(document).  Expat defers end-of-input
errors until the stream is exhausted, which makes truncation salvage
(the classic failure of an interrupted export) fall out of the same
single pass: every trace completed before the break has already been
yielded when the parse error surfaces, and in the non-raising modes the
truncation is recorded in the :class:`~repro.runtime.IngestionReport`
instead of raised.  Event-level faults (missing ``concept:name``,
malformed timestamps) are dropped or repaired per mode.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from datetime import datetime, timezone
from typing import IO, Callable, Iterator

from repro.exceptions import LogFormatError
from repro.logs.events import Event, Trace
from repro.logs.log import EventLog
from repro.runtime.report import IngestionReport

ON_ERROR_MODES = ("raise", "skip", "repair")

_CONCEPT_NAME = "concept:name"
_TIMESTAMP = "time:timestamp"
_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)


def _format_timestamp(seconds: float) -> str:
    moment = datetime.fromtimestamp(seconds, tz=timezone.utc)
    return moment.strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3] + "+00:00"


def _parse_timestamp(text: str) -> float:
    try:
        moment = datetime.fromisoformat(text)
    except ValueError as exc:
        raise LogFormatError(f"invalid XES timestamp {text!r}") from exc
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=timezone.utc)
    return (moment - _EPOCH).total_seconds()


def write_xes(log: EventLog, destination: str | os.PathLike[str] | IO[bytes]) -> None:
    """Serialize *log* to XES at *destination* (path or binary file)."""
    root = ET.Element("log", attrib={"xes.version": "1.0", "xes.features": ""})
    name_attr = ET.SubElement(root, "string")
    name_attr.set("key", _CONCEPT_NAME)
    name_attr.set("value", log.name)
    for index, trace in enumerate(log):
        trace_el = ET.SubElement(root, "trace")
        case_id = trace.case_id if trace.case_id is not None else f"case-{index}"
        case_el = ET.SubElement(trace_el, "string")
        case_el.set("key", _CONCEPT_NAME)
        case_el.set("value", case_id)
        for event in trace:
            event_el = ET.SubElement(trace_el, "event")
            activity_el = ET.SubElement(event_el, "string")
            activity_el.set("key", _CONCEPT_NAME)
            activity_el.set("value", event.activity)
            if event.timestamp is not None:
                ts_el = ET.SubElement(event_el, "date")
                ts_el.set("key", _TIMESTAMP)
                ts_el.set("value", _format_timestamp(event.timestamp))
            for key, value in event.attributes.items():
                attr_el = ET.SubElement(event_el, "string")
                attr_el.set("key", key)
                attr_el.set("value", value)
    tree = ET.ElementTree(root)
    ET.indent(tree)
    tree.write(destination, encoding="utf-8", xml_declaration=True)


def _local(tag_name: str) -> str:
    return tag_name.rsplit("}", 1)[-1]


def iter_xes_traces(
    source: str | os.PathLike[str] | IO[bytes],
    on_error: str = "raise",
    report: IngestionReport | None = None,
    name_sink: Callable[[str], None] | None = None,
) -> Iterator[Trace]:
    """Stream the traces of an XES document one at a time.

    The out-of-core entry point: traces are yielded as their ``</trace>``
    closes and the consumed subtree is cleared from the in-progress tree,
    so memory stays O(largest trace) no matter how large the document is.
    *name_sink* (if given) receives each ``concept:name`` value found at
    log level — the last call carries the log's name, exactly the value
    the batch reader would have used.

    Fault modes match :func:`read_xes`: under ``on_error="raise"`` a
    malformed document aborts with a :class:`LogFormatError`; otherwise
    every trace completed before the defect is yielded and the break is
    recorded as a truncation in *report*.  A root element other than
    ``<log>`` always raises.
    """
    if on_error not in ON_ERROR_MODES:
        raise ValueError(f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}")
    if report is None:
        report = IngestionReport(mode=on_error)
    if isinstance(source, (str, os.PathLike)) and not report.source:
        report.source = os.fspath(source)
    return _iter_traces(source, on_error, report, name_sink)


def _iter_traces(
    source: str | os.PathLike[str] | IO[bytes],
    on_error: str,
    report: IngestionReport,
    name_sink: Callable[[str], None] | None,
) -> Iterator[Trace]:
    if isinstance(source, (str, os.PathLike)):
        with open(source, "rb") as handle:
            yield from _iter_stream(handle, on_error, report, name_sink)
    else:
        yield from _iter_stream(source, on_error, report, name_sink)


def _iter_stream(
    handle: IO[bytes],
    on_error: str,
    report: IngestionReport,
    name_sink: Callable[[str], None] | None,
) -> Iterator[Trace]:
    root: ET.Element | None = None
    depth = 0
    trace_index = 0
    try:
        for kind, element in ET.iterparse(handle, events=("start", "end")):
            if kind == "start":
                if root is None:
                    root = element
                    if _local(element.tag) != "log":  # tolerate a default namespace
                        raise LogFormatError(
                            f"expected a <log> root element, found <{element.tag}>"
                        )
                depth += 1
                continue
            depth -= 1
            if depth != 1:
                continue  # only direct children of <log>
            tag = _local(element.tag)
            if tag == "trace":
                trace = _parse_trace(element, trace_index, on_error, report)
                trace_index += 1
                if trace is not None:
                    yield trace
            elif tag == "string" and element.get("key") == _CONCEPT_NAME:
                if name_sink is not None:
                    name_sink(element.get("value", "log"))
            # Release the consumed subtree: this is what bounds memory.
            assert root is not None
            root.clear()
    except ET.ParseError as exc:
        # Expat defers end-of-input errors until the stream runs dry, so
        # every trace that closed before the defect was already yielded —
        # the salvage semantics fall out of the single streaming pass.
        if on_error == "raise":
            raise LogFormatError(f"malformed XES document: {exc}") from exc
        report.record_truncation(str(exc))


def read_xes(
    source: str | os.PathLike[str] | IO[bytes],
    on_error: str = "raise",
    report: IngestionReport | None = None,
) -> EventLog:
    """Parse an XES document at *source* into an :class:`EventLog`.

    See the module docstring for the ``on_error`` fault modes; pass an
    :class:`~repro.runtime.IngestionReport` to receive the accounting of
    dropped/repaired events and of a salvaged truncation.
    """
    log = EventLog(name="log")

    def name_sink(value: str) -> None:
        log.name = value

    for trace in iter_xes_traces(source, on_error, report, name_sink):
        log.append(trace)
    return log


def _parse_trace(
    trace_el: ET.Element,
    trace_index: int,
    on_error: str,
    report: IngestionReport,
) -> Trace | None:
    case_id: str | None = None
    events: list[Event] = []
    event_index = 0
    for child in trace_el:
        child_tag = _local(child.tag)
        if child_tag == "string" and child.get("key") == _CONCEPT_NAME:
            case_id = child.get("value")
        elif child_tag == "event":
            report.record_row(loaded=False)
            event = _parse_event(
                child, f"trace {trace_index} event {event_index}", on_error, report
            )
            event_index += 1
            if event is not None:
                report.events_loaded += 1
                events.append(event)
    if not events:
        return None
    return Trace(events, case_id=case_id)


def _parse_event(
    event_el: ET.Element,
    location: str,
    on_error: str,
    report: IngestionReport,
) -> Event | None:
    activity: str | None = None
    timestamp: float | None = None
    attributes: dict[str, str] = {}
    for attr in event_el:
        key = attr.get("key")
        value = attr.get("value")
        if key is None or value is None:
            continue
        if key == _CONCEPT_NAME:
            activity = value
        elif key == _TIMESTAMP:
            try:
                timestamp = _parse_timestamp(value)
            except LogFormatError:
                problem = f"invalid timestamp {value!r}"
                if on_error == "raise":
                    raise LogFormatError(f"{location}: {problem}") from None
                if on_error == "skip":
                    report.record_dropped(
                        location, problem, ET.tostring(event_el)
                    )
                    return None
                report.record_repaired(location, f"{problem} treated as missing")
                timestamp = None
        elif _local(attr.tag) == "string":
            attributes[key] = value
    if activity is None or not activity.strip():
        problem = "event without a concept:name activity"
        if on_error == "raise":
            raise LogFormatError(f"{location}: {problem}")
        report.record_dropped(location, problem, ET.tostring(event_el))
        return None
    return Event(activity, timestamp, attributes)
