"""Minimal XES (eXtensible Event Stream, IEEE 1849) reader and writer.

Only the subset of XES the matching pipeline needs is supported: traces
with ``concept:name`` (case id), events with ``concept:name`` (activity),
optional ``time:timestamp``, and flat string attributes.  This keeps the
library dependency-free while staying interoperable with standard process
mining tools — logs written here load in ProM/pm4py and vice versa for
logs using only these elements.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from datetime import datetime, timezone
from typing import IO

from repro.exceptions import LogFormatError
from repro.logs.events import Event, Trace
from repro.logs.log import EventLog

_CONCEPT_NAME = "concept:name"
_TIMESTAMP = "time:timestamp"
_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)


def _format_timestamp(seconds: float) -> str:
    moment = datetime.fromtimestamp(seconds, tz=timezone.utc)
    return moment.strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3] + "+00:00"


def _parse_timestamp(text: str) -> float:
    try:
        moment = datetime.fromisoformat(text)
    except ValueError as exc:
        raise LogFormatError(f"invalid XES timestamp {text!r}") from exc
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=timezone.utc)
    return (moment - _EPOCH).total_seconds()


def write_xes(log: EventLog, destination: str | os.PathLike[str] | IO[bytes]) -> None:
    """Serialize *log* to XES at *destination* (path or binary file)."""
    root = ET.Element("log", attrib={"xes.version": "1.0", "xes.features": ""})
    name_attr = ET.SubElement(root, "string")
    name_attr.set("key", _CONCEPT_NAME)
    name_attr.set("value", log.name)
    for index, trace in enumerate(log):
        trace_el = ET.SubElement(root, "trace")
        case_id = trace.case_id if trace.case_id is not None else f"case-{index}"
        case_el = ET.SubElement(trace_el, "string")
        case_el.set("key", _CONCEPT_NAME)
        case_el.set("value", case_id)
        for event in trace:
            event_el = ET.SubElement(trace_el, "event")
            activity_el = ET.SubElement(event_el, "string")
            activity_el.set("key", _CONCEPT_NAME)
            activity_el.set("value", event.activity)
            if event.timestamp is not None:
                ts_el = ET.SubElement(event_el, "date")
                ts_el.set("key", _TIMESTAMP)
                ts_el.set("value", _format_timestamp(event.timestamp))
            for key, value in event.attributes.items():
                attr_el = ET.SubElement(event_el, "string")
                attr_el.set("key", key)
                attr_el.set("value", value)
    tree = ET.ElementTree(root)
    ET.indent(tree)
    tree.write(destination, encoding="utf-8", xml_declaration=True)


def read_xes(source: str | os.PathLike[str] | IO[bytes]) -> EventLog:
    """Parse an XES document at *source* into an :class:`EventLog`."""
    try:
        tree = ET.parse(source)
    except ET.ParseError as exc:
        raise LogFormatError(f"malformed XES document: {exc}") from exc
    root = tree.getroot()
    tag = root.tag.rsplit("}", 1)[-1]  # tolerate a default namespace
    if tag != "log":
        raise LogFormatError(f"expected a <log> root element, found <{root.tag}>")

    def local(tag_name: str) -> str:
        return tag_name.rsplit("}", 1)[-1]

    log_name = "log"
    for child in root:
        if local(child.tag) == "string" and child.get("key") == _CONCEPT_NAME:
            log_name = child.get("value", "log")
    log = EventLog(name=log_name)
    for trace_el in root:
        if local(trace_el.tag) != "trace":
            continue
        case_id: str | None = None
        events: list[Event] = []
        for child in trace_el:
            child_tag = local(child.tag)
            if child_tag == "string" and child.get("key") == _CONCEPT_NAME:
                case_id = child.get("value")
            elif child_tag == "event":
                events.append(_parse_event(child, local))
        if events:
            log.append(Trace(events, case_id=case_id))
    return log


def _parse_event(event_el: ET.Element, local) -> Event:
    activity: str | None = None
    timestamp: float | None = None
    attributes: dict[str, str] = {}
    for attr in event_el:
        key = attr.get("key")
        value = attr.get("value")
        if key is None or value is None:
            continue
        if key == _CONCEPT_NAME:
            activity = value
        elif key == _TIMESTAMP:
            timestamp = _parse_timestamp(value)
        elif local(attr.tag) == "string":
            attributes[key] = value
    if activity is None:
        raise LogFormatError("event element without a concept:name attribute")
    return Event(activity, timestamp, attributes)
