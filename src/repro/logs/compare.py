"""Structured comparison of two event logs.

The pre-matching diagnostic an integrator runs first: which activities
exist only on one side, how far the shared activities' frequencies have
drifted, and which footprint relations disagree.  The same machinery
doubles as a *concept-drift* check between two time windows of one log.

All comparisons are name-based; for vocabulary-heterogeneous logs, pass
the correspondence mapping produced by a matcher to compare through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.logs.footprint import compute_footprint
from repro.logs.log import EventLog
from repro.logs.stats import compute_statistics


@dataclass(frozen=True, slots=True)
class FrequencyDrift:
    """Frequency change of one activity between the two logs."""

    activity: str
    frequency_first: float
    frequency_second: float

    @property
    def delta(self) -> float:
        return self.frequency_second - self.frequency_first


@dataclass(frozen=True, slots=True)
class RelationChange:
    """A footprint relation that differs between the two logs."""

    pair: tuple[str, str]
    relation_first: str
    relation_second: str


@dataclass(frozen=True, slots=True)
class LogComparison:
    """The structured diff of two event logs."""

    only_first: tuple[str, ...]
    only_second: tuple[str, ...]
    shared: tuple[str, ...]
    drifts: tuple[FrequencyDrift, ...]
    relation_changes: tuple[RelationChange, ...]
    name_first: str = field(default="first", compare=False)
    name_second: str = field(default="second", compare=False)

    @property
    def vocabulary_overlap(self) -> float:
        """Jaccard overlap of the two activity vocabularies."""
        union = len(self.only_first) + len(self.only_second) + len(self.shared)
        return len(self.shared) / union if union else 1.0

    @property
    def max_drift(self) -> float:
        return max((abs(d.delta) for d in self.drifts), default=0.0)

    def render(self) -> str:
        lines = [f"Log comparison: {self.name_first} vs {self.name_second}", ""]
        lines.append(
            f"vocabulary overlap: {self.vocabulary_overlap:.2f} "
            f"({len(self.shared)} shared, {len(self.only_first)} only-first, "
            f"{len(self.only_second)} only-second)"
        )
        if self.only_first:
            lines.append(f"only in {self.name_first}: {', '.join(self.only_first)}")
        if self.only_second:
            lines.append(f"only in {self.name_second}: {', '.join(self.only_second)}")
        notable = [d for d in self.drifts if abs(d.delta) >= 0.05]
        if notable:
            lines.append("")
            lines.append("frequency drift (|delta| >= 0.05):")
            for drift in sorted(notable, key=lambda d: -abs(d.delta)):
                lines.append(
                    f"  {drift.activity}: {drift.frequency_first:.2f} -> "
                    f"{drift.frequency_second:.2f} ({drift.delta:+.2f})"
                )
        if self.relation_changes:
            lines.append("")
            lines.append("footprint relation changes:")
            for change in self.relation_changes:
                a, b = change.pair
                lines.append(
                    f"  ({a}, {b}): {change.relation_first} -> {change.relation_second}"
                )
        return "\n".join(lines)


def compare_logs(
    log_first: EventLog,
    log_second: EventLog,
    mapping: Mapping[str, str] | None = None,
) -> LogComparison:
    """Diff two logs; *mapping* translates first-log names if given."""
    if mapping:
        log_first = log_first.relabel(dict(mapping))
    stats_first = compute_statistics(log_first)
    stats_second = compute_statistics(log_second)
    activities_first = stats_first.activities
    activities_second = stats_second.activities
    shared = tuple(sorted(activities_first & activities_second))

    drifts = tuple(
        FrequencyDrift(
            activity,
            stats_first.activity_frequencies[activity],
            stats_second.activity_frequencies[activity],
        )
        for activity in shared
    )

    footprint_first = compute_footprint(log_first)
    footprint_second = compute_footprint(log_second)
    changes: list[RelationChange] = []
    for index, a in enumerate(shared):
        for b in shared[index + 1 :]:
            relation_first = footprint_first.relation(a, b)
            relation_second = footprint_second.relation(a, b)
            if relation_first != relation_second:
                changes.append(
                    RelationChange((a, b), relation_first.value, relation_second.value)
                )

    return LogComparison(
        only_first=tuple(sorted(activities_first - activities_second)),
        only_second=tuple(sorted(activities_second - activities_first)),
        shared=shared,
        drifts=drifts,
        relation_changes=tuple(changes),
        name_first=log_first.name,
        name_second=log_second.name,
    )
