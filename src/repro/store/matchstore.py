"""Persistent match store: similarity matrices and SQL-aggregated counts.

PR 8's :class:`~repro.store.logstore.LogStore` made *ingestion* skip
parse and count on a hit; the matching stage still rebuilt both graphs
and re-ran the EMS fixpoint every invocation.  The :class:`MatchStore`
extends the same SQLite file with two more structures so a repeated (or
grown) log pair skips the fixpoint too:

* a ``matrices`` table — one digest-verified, LRU-bounded row per
  (counts key pair, graph threshold, ``EMSConfig`` knobs, label scorer)
  under :func:`matrix_content_key`, holding the per-direction similarity
  arrays at the dtype the fixpoint ran at (``EMSConfig.np_dtype``; a
  float32 run stores float32 — half the bytes, exact round-trip).  The
  combined matrix is *not* stored: it is recomputed on load with the
  same reduction the live engine uses
  (:func:`repro.core.ems.combine_directional`), so a served result is
  bit-identical to the stored run.
* an ``events`` table — the normalized trace rows
  ``(counts key, trace index, position, activity)`` of stored logs, so
  Definition-1 counting can be pushed down into SQL window functions
  (:meth:`MatchStore.sql_statistics`) instead of materializing per-trace
  Python counters: ``COUNT(DISTINCT trace_id)`` per activity, and
  ``LEAD() OVER (PARTITION BY trace_id ORDER BY pos)`` for the directly-
  follows pairs — exactly the traces-containing semantics of
  :meth:`~repro.logs.streaming.OnlineStatistics.add_sequence`.

Durability mirrors the log store: matrix rows are sha256-verified on
load, a torn row is deleted and answered as a miss
(``match_store_corrupt_total``), and SQL-served counts are cross-checked
against the expected trace count when one is known — corruption always
degrades to a logged cold computation, never a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from collections import Counter
from typing import Any, Iterable

import numpy as np

from repro.core.config import EMSConfig
from repro.core.ems import EMSResult
from repro.logs.streaming import OnlineStatistics
from repro.obs import get_logger
from repro.store.logstore import LogStore

_logger = get_logger(__name__)

#: Trace rows are written in batches of this many event rows.
_ROW_BATCH = 4096

#: Record fields every stored matrix row must carry.
_MATRIX_FIELDS = frozenset(
    {"rows", "cols", "directional", "iterations", "pair_updates",
     "converged", "estimated", "log_names"}
)


def matrix_content_key(
    counts_key_first: str,
    counts_key_second: str,
    min_frequency: float,
    config: EMSConfig,
    label_key: str = "opaque",
) -> str:
    """Content key of one similarity-matrix computation.

    Keys on everything that determines the matrix values: the two counts
    keys (which already encode file content, format and parse mode), the
    graph threshold, the label scorer, and every ``EMSConfig`` knob the
    fixpoint reads — including ``kernel`` and ``dtype``, conservatively:
    kernels are pinned bit-identical by the differential suites, but a
    distinct row per kernel can only cost a miss, never a wrong answer.
    ``threshold`` is *not* part of the key; it filters pairs after the
    assignment and never touches matrix values.  Floats go through
    ``repr`` so equal values — and only equal values — share a row.
    """
    payload = [
        counts_key_first,
        counts_key_second,
        repr(min_frequency),
        label_key,
        repr(config.alpha),
        repr(config.c),
        repr(config.epsilon),
        config.max_iterations,
        config.direction,
        config.use_pruning,
        config.estimation_iterations,
        config.use_edge_weights,
        config.kernel,
        config.dtype,
    ]
    return hashlib.sha256(
        json.dumps(payload, separators=(",", ":")).encode()
    ).hexdigest()


def matrix_record(
    result: EMSResult,
    config: EMSConfig,
    log_names: tuple[str, str],
) -> dict[str, Any]:
    """The storable form of a finished :class:`EMSResult`.

    Only the directional arrays are kept, narrowed to the dtype the
    fixpoint ran at (float32 runs store float32 — lossless, half the
    bytes); the combined matrix is recomputed on restore with the same
    reduction the engine uses, so nothing redundant is persisted.
    """
    assert result.directional is not None
    dtype = config.np_dtype
    return {
        "rows": result.matrix.rows,
        "cols": result.matrix.cols,
        "directional": {
            name: matrix.to_record(dtype)
            for name, matrix in result.directional.items()
        },
        "iterations": result.iterations,
        "pair_updates": result.pair_updates,
        "converged": result.converged,
        "estimated": result.estimated,
        "log_names": tuple(log_names),
    }


def restore_result(record: dict[str, Any]) -> EMSResult:
    """Rebuild the :class:`EMSResult` a :func:`matrix_record` captured."""
    directional_values = {
        name: sub["values"] for name, sub in record["directional"].items()
    }
    return EMSResult.from_directional(
        tuple(record["rows"]),
        tuple(record["cols"]),
        directional_values,
        iterations=int(record["iterations"]),
        pair_updates=int(record["pair_updates"]),
        converged=bool(record["converged"]),
        estimated=bool(record["estimated"]),
    )


class MatchStore(LogStore):
    """A :class:`LogStore` that also persists matrices and trace rows.

    Backward- and forward-compatible with plain log stores: the extra
    tables are additive (``CREATE TABLE IF NOT EXISTS``), so a database
    written by either class opens under the other.
    """

    generic_tables = LogStore.generic_tables + ("matrices",)

    def _create_extra_tables(self, connection: sqlite3.Connection) -> None:
        connection.execute(
            "CREATE TABLE IF NOT EXISTS events ("
            "  key TEXT NOT NULL,"
            "  trace_id INTEGER NOT NULL,"
            "  pos INTEGER NOT NULL,"
            "  activity TEXT NOT NULL"
            ")"
        )
        connection.execute(
            "CREATE INDEX IF NOT EXISTS events_by_key "
            "ON events (key, trace_id, pos)"
        )

    # ------------------------------------------------------------------
    # Similarity matrices
    # ------------------------------------------------------------------
    def _match_hit(self) -> None:
        self.observer.count(
            "match_store_hits_total",
            help="match lookups served from a persisted similarity matrix",
        )

    def _match_miss(self) -> None:
        self.observer.count(
            "match_store_misses_total",
            help="match lookups that fell through to the EMS fixpoint",
        )

    def _row_rejected(self, table: str) -> None:
        # A digest-rejected matrices row belongs in the matrix quartet
        # too, so `match_store_corrupt_total` covers every rejection
        # reason — torn bytes and malformed records alike.
        if table == "matrices":
            self.observer.count(
                "match_store_corrupt_total",
                help="stored similarity matrices rejected at load time (cold path)",
            )

    def get_matrix(self, key: str) -> dict[str, Any] | None:
        """The stored matrix record for *key*, or ``None``.

        The record is the dict :meth:`put_matrix` stored; a malformed
        record (missing fields, directional arrays not matching the
        label grid) is treated exactly like a corrupt row: deleted,
        counted, answered as a miss.
        """
        with self._lock:
            return self._get_matrix_locked(key)

    def _get_matrix_locked(self, key: str) -> dict[str, Any] | None:
        value = self._get("matrices", key)
        if value is None:
            self._match_miss()
            return None
        if not self._matrix_record_ok(value):
            _logger.warning(
                "store matrix row %s... has an unexpected shape; computing cold",
                key[:12],
            )
            self.observer.count("store_corrupt_total")
            self.observer.count(
                "match_store_corrupt_total",
                help="stored similarity matrices rejected at load time (cold path)",
            )
            self._execute("DELETE FROM matrices WHERE key = ?", (key,))
            self._commit()
            self._match_miss()
            return None
        self._match_hit()
        return value

    @staticmethod
    def _matrix_record_ok(value: Any) -> bool:
        if not isinstance(value, dict) or not _MATRIX_FIELDS.issubset(value):
            return False
        rows, cols = value["rows"], value["cols"]
        directional = value["directional"]
        if not isinstance(directional, dict) or not directional:
            return False
        for record in directional.values():
            if not isinstance(record, dict) or "values" not in record:
                return False
            values = record["values"]
            if not isinstance(values, np.ndarray):
                return False
            if values.shape != (len(rows), len(cols)):
                return False
        return True

    def put_matrix(self, key: str, record: dict[str, Any]) -> None:
        self._put("matrices", key, record)

    def delete_matrix(self, key: str) -> None:
        self._execute("DELETE FROM matrices WHERE key = ?", (key,))
        self._commit()

    # ------------------------------------------------------------------
    # Trace rows (SQL push-down)
    # ------------------------------------------------------------------
    def insert_event_rows(
        self, rows: Iterable[tuple[str, int, int, str]]
    ) -> None:
        """Stage a batch of ``(key, trace_id, pos, activity)`` rows.

        Deliberately does *not* commit: the ingestion pipeline stages
        rows while streaming traces and commits them atomically with the
        counts row (``put_counts``), so a crash mid-stream never leaves
        partial rows behind a completed-looking key.
        """
        with self._lock:
            if self._connection is None:
                self._connect()
            try:
                assert self._connection is not None
                self._connection.executemany(
                    "INSERT INTO events (key, trace_id, pos, activity) "
                    "VALUES (?, ?, ?, ?)",
                    rows,
                )
            except sqlite3.DatabaseError as error:
                _logger.warning(
                    "could not stage trace rows (%s); SQL push-down disabled "
                    "for this ingest", error,
                )

    def delete_trace_rows(self, key: str) -> None:
        self._execute("DELETE FROM events WHERE key = ?", (key,))

    def rekey_trace_rows(self, old_key: str, new_key: str) -> None:
        """Move stored trace rows to a new counts key (append fast path)."""
        with self._lock:
            self._execute("DELETE FROM events WHERE key = ?", (new_key,))
            self._execute(
                "UPDATE events SET key = ? WHERE key = ?", (new_key, old_key)
            )

    def rollback(self) -> None:
        """Discard staged-but-uncommitted work (failed ingest cleanup)."""
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.rollback()
                except sqlite3.Error:
                    pass

    def stored_trace_count(self, key: str) -> int:
        with self._lock:
            cursor = self._execute(
                "SELECT COUNT(DISTINCT trace_id) FROM events WHERE key = ?",
                (key,),
            )
            row = cursor.fetchone() if cursor is not None else None
            return int(row[0]) if row else 0

    def sql_statistics(
        self, key: str, expected_traces: int | None = None
    ) -> OnlineStatistics | None:
        """Definition-1 counts of a stored log, aggregated inside SQLite.

        Activity counts are traces-containing counts
        (``COUNT(DISTINCT trace_id)`` per activity) and pair counts use
        the ``LEAD`` window function over ``(trace_id, pos)`` — the exact
        distinct-per-trace semantics of
        :meth:`~repro.logs.streaming.OnlineStatistics.add_sequence`, so
        the returned accumulator is bit-identical to Python counting.
        No per-trace Python structure is ever materialized.

        When *expected_traces* is given (from a digest-verified counts
        row) and the stored rows disagree, the rows are treated as
        corrupt: deleted, counted, answered ``None`` — a cold parse,
        never a wrong answer.
        """
        with self._lock, self.observer.span("store.sql", table="events"):
            trace_count = self.stored_trace_count(key)
            if trace_count == 0:
                return None
            if expected_traces is not None and trace_count != expected_traces:
                _logger.warning(
                    "stored trace rows for %s... count %d traces but the "
                    "counts row has %d; dropping rows and computing cold",
                    key[:12], trace_count, expected_traces,
                )
                self.observer.count("store_corrupt_total")
                self.observer.count(
                    "match_store_corrupt_total",
                    help="stored similarity matrices rejected at load time "
                         "(cold path)",
                )
                self.delete_trace_rows(key)
                self._commit()
                return None
            cursor = self._execute(
                "SELECT activity, COUNT(DISTINCT trace_id) FROM events "
                "WHERE key = ? GROUP BY activity",
                (key,),
            )
            if cursor is None:
                return None
            activity_counts: Counter[str] = Counter(dict(cursor.fetchall()))
            cursor = self._execute(
                "WITH seq AS ("
                "  SELECT trace_id, activity,"
                "         LEAD(activity) OVER ("
                "           PARTITION BY trace_id ORDER BY pos"
                "         ) AS next"
                "  FROM events WHERE key = ?"
                ") "
                "SELECT activity, next, COUNT(DISTINCT trace_id) FROM seq "
                "WHERE next IS NOT NULL GROUP BY activity, next",
                (key,),
            )
            if cursor is None:
                return None
            pair_counts: Counter[tuple[str, str]] = Counter(
                {(source, target): count for source, target, count in cursor}
            )
            stats = OnlineStatistics()
            stats.seed_counts(trace_count, activity_counts, pair_counts)
            return stats

    # ------------------------------------------------------------------
    def _on_evicted(self, table: str, keys: list[str]) -> None:
        if table == "counts":
            # Trace rows are reachable only through their counts key;
            # evicting the row orphans them, so cascade the delete.
            marks = ",".join("?" for _ in keys)
            self._execute(f"DELETE FROM events WHERE key IN ({marks})", keys)
        elif table == "matrices":
            self.observer.count(
                "match_store_evictions_total",
                amount=float(len(keys)),
                help="stored similarity matrices dropped by the LRU bound",
            )
