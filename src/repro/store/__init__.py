"""Sharded, out-of-core ingestion and the persistent log store.

The scale layer of the pipeline (see ``docs/scale.md``): streaming
trace ingestion with spill-to-disk blocks
(:mod:`~repro.store.blocks`, :mod:`~repro.store.sharding`), parallel
per-shard statistics over the supervised worker pool, and a SQLite
:class:`LogStore` that memoizes content-addressed counts and dependency
graphs across runs (:mod:`~repro.store.logstore`).
:func:`ingest_statistics` / :func:`ingest_graph`
(:mod:`~repro.store.pipeline`) tie the routes together and always yield
results bit-identical to the batch path.
"""

from repro.store.blocks import (
    DEFAULT_BLOCK_TRACES,
    TraceBlockWriter,
    iter_block,
)
from repro.store.logstore import (
    LogStore,
    case_digest,
    counts_content_key,
    file_digest,
    graph_content_key,
    ingest_key,
)
from repro.store.pipeline import IngestResult, ingest_graph, ingest_statistics
from repro.store.sharding import (
    DEFAULT_PARTITIONS,
    partition_csv,
    resolve_format,
    shard_statistics,
    spill_blocks,
    stream_traces,
)

__all__ = [
    "DEFAULT_BLOCK_TRACES",
    "DEFAULT_PARTITIONS",
    "IngestResult",
    "LogStore",
    "TraceBlockWriter",
    "case_digest",
    "counts_content_key",
    "file_digest",
    "graph_content_key",
    "ingest_graph",
    "ingest_key",
    "ingest_statistics",
    "iter_block",
    "partition_csv",
    "resolve_format",
    "shard_statistics",
    "spill_blocks",
    "stream_traces",
]
