"""Sharded, out-of-core ingestion and the persistent log store.

The scale layer of the pipeline (see ``docs/scale.md``): streaming
trace ingestion with spill-to-disk blocks
(:mod:`~repro.store.blocks`, :mod:`~repro.store.sharding`), parallel
per-shard statistics over the supervised worker pool, and a SQLite
:class:`LogStore` that memoizes content-addressed counts and dependency
graphs across runs (:mod:`~repro.store.logstore`).
:func:`ingest_statistics` / :func:`ingest_graph`
(:mod:`~repro.store.pipeline`) tie the routes together and always yield
results bit-identical to the batch path.

On top of the log store sits the :class:`MatchStore`
(:mod:`~repro.store.matchstore`): persisted similarity matrices keyed by
content digests of both logs plus the matcher configuration, stored
per-trace event rows for SQL count push-down, and
:func:`match_stored` — the warm end-to-end match path that serves a
repeated pair straight from the store and warm-starts a grown one.
"""

from repro.store.blocks import (
    DEFAULT_BLOCK_TRACES,
    TraceBlockWriter,
    iter_block,
)
from repro.store.logstore import (
    LogStore,
    case_digest,
    counts_content_key,
    file_digest,
    graph_content_key,
    ingest_key,
)
from repro.store.matchstore import (
    MatchStore,
    matrix_content_key,
    matrix_record,
    restore_result,
)
from repro.store.pipeline import (
    IngestResult,
    ingest_graph,
    ingest_statistics,
    match_stored,
)
from repro.store.sharding import (
    DEFAULT_PARTITIONS,
    partition_csv,
    resolve_format,
    shard_statistics,
    spill_blocks,
    stream_traces,
)

__all__ = [
    "DEFAULT_BLOCK_TRACES",
    "DEFAULT_PARTITIONS",
    "IngestResult",
    "LogStore",
    "MatchStore",
    "TraceBlockWriter",
    "case_digest",
    "counts_content_key",
    "file_digest",
    "graph_content_key",
    "ingest_graph",
    "ingest_key",
    "ingest_statistics",
    "iter_block",
    "match_stored",
    "matrix_content_key",
    "matrix_record",
    "partition_csv",
    "restore_result",
    "resolve_format",
    "shard_statistics",
    "spill_blocks",
    "stream_traces",
]
