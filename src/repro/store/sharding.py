"""Streaming shard ingestion: bounded-memory trace streams and fan-out.

Two halves:

* :func:`stream_traces` turns a CSV or XES file into an iterator of
  ``(case_id, activities)`` pairs without ever materializing the whole
  :class:`~repro.logs.log.EventLog`.  XES streams directly — traces are
  self-contained elements, so :func:`~repro.logs.xes.iter_xes_traces`
  already yields them in O(trace) memory.  CSV rows of one case can be
  interleaved arbitrarily far apart, so a single forward pass cannot
  know a case is complete before EOF; instead the rows are *partitioned
  by case-id hash* into spill files in one streaming pass, and each
  partition (which holds every row of its cases) is then parsed with the
  very same ``_read_rows`` routine as the batch reader.  Peak memory is
  O(largest partition) — 1/``partitions`` of the log for any realistic
  case-id distribution.

* :func:`shard_statistics` fans per-block :class:`OnlineStatistics`
  across the supervised worker pool (crash/timeout/retry semantics
  reused verbatim from :mod:`repro.runtime.supervise`) and folds the
  results with :meth:`OnlineStatistics.merge_into`.  Definition-1
  statistics are pure integer sums over traces, so any partition of the
  traces reduces to counts — and therefore frequencies, and therefore
  dependency graphs — bit-identical to the monolithic computation.
  Because the sums need *every* shard, a shard that exhausts its retries
  is not quarantined-and-skipped like a poison composite candidate: it
  raises :class:`~repro.exceptions.ShardIngestionError` instead of
  biasing the counts (a loud failure, never a wrong answer).

Accounting caveats of the partitioned CSV pass (documented in
``docs/scale.md``): row numbers in error messages and the
:class:`~repro.runtime.IngestionReport` are partition-relative, and
trace order follows partition order rather than first appearance.
Statistics are order-insensitive, so results are unaffected.
"""

from __future__ import annotations

import csv
import io
import os
import zlib
from concurrent.futures.process import ProcessPoolExecutor
from pathlib import Path
from typing import IO, Callable, Iterator, Sequence

from repro.exceptions import LogFormatError, ShardIngestionError
from repro.logs.csvio import ACTIVITY_COLUMN, CASE_COLUMN, _read_rows
from repro.logs.streaming import OnlineStatistics
from repro.logs.xes import iter_xes_traces
from repro.obs import NULL_OBSERVER, Observer, get_logger
from repro.runtime.report import IngestionReport
from repro.runtime.supervise import RetryPolicy, SupervisedPool
from repro.store.blocks import (
    DEFAULT_BLOCK_TRACES,
    TraceBlockWriter,
    iter_block,
)

_logger = get_logger(__name__)

#: Case-hash partitions of the CSV spill pass.  Sixteen bounds peak
#: parse memory to ~1/16 of the log while keeping the open-file count
#: trivial.
DEFAULT_PARTITIONS = 16

#: Write-buffer size of each open partition file.  Without it ``open``
#: sizes the buffer from the filesystem's reported block size, which can
#: be 128 KiB+ — across ``partitions`` simultaneous writers that fixed
#: cost would dwarf the rows actually in flight.
_SPILL_BUFFER_BYTES = 8192


def resolve_format(path: str | os.PathLike[str], fmt: str = "auto") -> str:
    """``"xes"`` or ``"csv"``, inferred from the suffix when ``auto``."""
    if fmt == "auto":
        suffix = Path(path).suffix.lower()
        if suffix == ".xes":
            return "xes"
        if suffix == ".csv":
            return "csv"
        raise LogFormatError(
            f"cannot infer the format of {os.fspath(path)!r}; pass an explicit format"
        )
    if fmt not in ("xes", "csv"):
        raise LogFormatError(f"unknown format {fmt!r}")
    return fmt


def stream_traces(
    source: str | os.PathLike[str],
    fmt: str = "auto",
    on_error: str = "raise",
    report: IngestionReport | None = None,
    *,
    spill_dir: str | os.PathLike[str] | None = None,
    partitions: int = DEFAULT_PARTITIONS,
    name_sink: Callable[[str], None] | None = None,
) -> Iterator[tuple[str | None, tuple[str, ...]]]:
    """Stream ``(case_id, activities)`` pairs from a log file.

    *spill_dir* receives the CSV partition files (required for CSV,
    unused for XES); the caller owns its lifetime — pass a temporary
    directory and the spill disappears with it.  *name_sink*, when
    given, receives the log's name (XES ``concept:name`` / CSV stem).
    """
    fmt = resolve_format(source, fmt)
    if report is None:
        report = IngestionReport(mode=on_error)
    if not report.source:
        report.source = os.fspath(source)
    if fmt == "xes":
        return _stream_xes(source, on_error, report, name_sink)
    if spill_dir is None:
        raise ValueError("streaming CSV ingestion needs a spill_dir")
    if name_sink is not None:
        name_sink(Path(source).stem)
    return _stream_csv_partitioned(
        source, on_error, report, Path(spill_dir), partitions
    )


def _stream_xes(
    source: str | os.PathLike[str],
    on_error: str,
    report: IngestionReport,
    name_sink: Callable[[str], None] | None,
) -> Iterator[tuple[str | None, tuple[str, ...]]]:
    for trace in iter_xes_traces(source, on_error, report, name_sink):
        yield trace.case_id, trace.activities


def partition_csv(
    source: str | os.PathLike[str] | IO[str],
    spill_dir: str | os.PathLike[str],
    partitions: int = DEFAULT_PARTITIONS,
) -> list[Path]:
    """One streaming pass: route CSV rows into case-hash partition files.

    Every partition file carries the original header, and every row of a
    given case lands in the same partition (``crc32(case_id) % N``), so
    parsing partitions independently reconstructs exactly the batch
    reader's cases.  Rows that the batch reader would reject — too few
    columns, an empty case id — cannot be hashed and are routed to
    partition 0, where ``_read_rows`` applies the identical reject
    accounting.  File-level faults (empty document, missing required
    header columns) raise here, before any spill is written.
    """
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    spill = Path(spill_dir)
    spill.mkdir(parents=True, exist_ok=True)
    if isinstance(source, (str, os.PathLike)):
        with open(source, newline="", encoding="utf-8") as handle:
            return _partition_rows(handle, spill, partitions)
    return _partition_rows(source, spill, partitions)


def _partition_rows(
    handle: IO[str], spill: Path, partitions: int
) -> list[Path]:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise LogFormatError("empty CSV document") from None
    try:
        case_idx = header.index(CASE_COLUMN)
        header.index(ACTIVITY_COLUMN)
    except ValueError:
        raise LogFormatError(
            f"CSV header must contain {CASE_COLUMN!r} and {ACTIVITY_COLUMN!r}; got {header!r}"
        ) from None

    paths = [spill / f"part-{index:04d}.csv" for index in range(partitions)]
    handles: list[IO[str]] = []
    # One shared csv.writer formats every record into a small scratch
    # buffer that is then copied to the right sink: the C csv writer
    # keeps a ~128 KiB record buffer per instance, which across
    # ``partitions`` simultaneous writers would dominate the pipeline's
    # whole memory budget.
    scratch = io.StringIO()
    formatter = csv.writer(scratch)

    def formatted(row: list[str]) -> str:
        scratch.seek(0)
        scratch.truncate()
        formatter.writerow(row)
        return scratch.getvalue()

    try:
        header_record = formatted(header)
        for path in paths:
            sink = open(
                path, "w", newline="", encoding="utf-8",
                buffering=_SPILL_BUFFER_BYTES,
            )
            handles.append(sink)
            sink.write(header_record)
        for row in reader:
            if not row:
                continue  # blank line; the batch reader skips it too
            if case_idx < len(row) and row[case_idx].strip():
                index = zlib.crc32(row[case_idx].encode("utf-8")) % partitions
            else:
                index = 0  # unroutable; partition 0 rejects it identically
            handles[index].write(formatted(row))
    finally:
        for sink in handles:
            sink.close()
    return paths


def _stream_csv_partitioned(
    source: str | os.PathLike[str],
    on_error: str,
    report: IngestionReport,
    spill: Path,
    partitions: int,
) -> Iterator[tuple[str | None, tuple[str, ...]]]:
    name = Path(source).stem
    for path in partition_csv(source, spill, partitions):
        with open(path, newline="", encoding="utf-8") as handle:
            partial = _read_rows(handle, name, on_error, report)
        for trace in partial:
            yield trace.case_id, trace.activities


def spill_blocks(
    traces: Iterator[tuple[str | None, Sequence[str]]],
    directory: str | os.PathLike[str],
    block_traces: int = DEFAULT_BLOCK_TRACES,
) -> list[Path]:
    """Spill a trace stream into numbered block files; returns the paths."""
    writer = TraceBlockWriter(directory, block_traces=block_traces)
    for case_id, activities in traces:
        writer.add(case_id, activities)
    return writer.finish()


def _block_statistics(block: str | os.PathLike[str]) -> OnlineStatistics:
    stats = OnlineStatistics()
    for _, activities in iter_block(block):
        stats.add_sequence(activities)
    return stats


def _shard_statistics_task(
    payload: tuple[str, int]
) -> tuple[int, dict[str, int], dict[tuple[str, str], int]]:
    """Worker-side: count one block, return plain picklable counts."""
    block_path, _attempt = payload
    stats = _block_statistics(block_path)
    return (
        stats.trace_count,
        dict(stats.activity_counts),
        dict(stats.pair_counts),
    )


def shard_statistics(
    blocks: Sequence[str | os.PathLike[str]],
    *,
    workers: int = 0,
    policy: RetryPolicy | None = None,
    task_timeout: float | None = None,
    observer: Observer | None = None,
) -> OnlineStatistics:
    """Count every block and reduce to one :class:`OnlineStatistics`.

    ``workers <= 1`` counts serially, wrapping each block in an
    ``ingest.shard[i]`` span; ``workers > 1`` fans the blocks across a
    :class:`~repro.runtime.supervise.SupervisedPool` (retry with
    backoff, pool respawn on crashes and timeouts) and reduces the
    outcomes in block order with :meth:`OnlineStatistics.merge_into`.
    A shard the supervisor gives up on raises
    :class:`ShardIngestionError` — partial counts are never returned.
    """
    observer = observer if observer is not None else NULL_OBSERVER
    total = OnlineStatistics()
    if workers <= 1:
        for index, block in enumerate(blocks):
            with observer.span(
                f"ingest.shard[{index}]", block=os.fspath(block)
            ) as span:
                shard = _block_statistics(block)
                span.attributes["traces"] = shard.trace_count
            observer.count(
                "ingest_shards_total",
                help="trace shards counted by the ingestion pipeline",
            )
            shard.merge_into(total)
        return total

    pool = SupervisedPool(
        factory=lambda: ProcessPoolExecutor(max_workers=workers),
        fn=_shard_statistics_task,
        payload=lambda task, attempt: (os.fspath(task), attempt),
        describe=lambda task: (0, (Path(task).name,)),
        policy=policy,
        task_timeout=task_timeout,
        observer=observer,
    )
    try:
        with observer.span("ingest.shards", blocks=len(blocks), workers=workers):
            outcomes = pool.run_wave(list(blocks))
    finally:
        pool.shutdown()
    for outcome in outcomes:
        if outcome.quarantined is not None:
            record = outcome.quarantined
            raise ShardIngestionError(
                f"shard {record.run[0]} failed "
                f"{record.attempts} attempt(s) ({record.error_type}: "
                f"{record.error_message}); statistics would be biased, "
                f"aborting the sharded ingestion",
                shard=record.run[0],
                attempts=record.attempts,
            )
        trace_count, activity_counts, pair_counts = outcome.value
        shard = OnlineStatistics()
        shard.seed_counts(trace_count, activity_counts, pair_counts)
        shard.merge_into(total)
        observer.count(
            "ingest_shards_total",
            help="trace shards counted by the ingestion pipeline",
        )
    return total
