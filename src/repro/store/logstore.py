"""Persistent, content-addressed store of log-derived results (SQLite).

Parsing and counting dominate the cost of re-matching a log that has not
changed — and production logs are re-matched constantly (nightly jobs,
config sweeps, appended extracts).  The :class:`LogStore` memoizes the
two derived artifacts the pipeline needs, keyed so a hit is *provably*
the same computation:

* **raw counts** (trace count, per-activity and per-pair trace counts,
  plus compact per-case digests) under
  :func:`counts_content_key` — a SHA-256 over the input file's content
  digest and the parse mode.  Counts, not frequencies, are stored: exact
  integers merge losslessly with an appended tail, while floats do not.
* **dependency graphs** under :func:`graph_content_key`, which extends
  the counts key with the graph parameters (``min_frequency``), so a
  Figure-7 sweep over thresholds shares one counts row.

An ``ingests`` table additionally remembers, per source path, how many
bytes were ingested and their prefix digest — the *append fast path*:
when a CSV grows, the stored counts are reused and only the tail is
parsed, provided the old prefix is byte-identical and the tail's cases
are disjoint from the stored case-digest set (otherwise the store falls
back to a cold full parse; correctness is never traded for the
shortcut).

Durability follows the evalcache/checkpoint playbook: every row embeds
the SHA-256 of its payload and is re-verified on load — a torn or
bit-flipped row is deleted, counted (``store_corrupt_total``) and
answered with a miss; a database SQLite itself rejects is renamed aside
and recreated empty.  Corruption therefore always degrades to a logged
cold path, never a wrong answer and never a crash.  Tables are
LRU-bounded by a ``last_used`` column (hits touch their row), with
evictions counted.

Concurrency: *processes* sharing one store file coordinate through WAL
journaling plus the busy-timeout/lock-retry discipline in
:meth:`LogStore._execute`.  *Threads* sharing one store **object** (the
``repro serve`` daemon answers from a thread pool, not forks) are safe
too: the connection is opened with ``check_same_thread=False`` and every
public operation holds an internal re-entrant lock for its whole
read-verify-touch-commit sequence, so one thread can never commit — or
roll back — another thread's half-staged transaction.  The one pattern
that spans *multiple* calls on purpose, the
:class:`~repro.store.matchstore.MatchStore` event-row staging during an
ingest, still wants one store object per thread (as the daemon's
scheduler threads do); everything else can share freely.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any

from repro.exceptions import StoreError
from repro.graph.dependency import DependencyGraph
from repro.obs import NULL_OBSERVER, Observer, get_logger

_logger = get_logger(__name__)

#: Bump when the row payload schema changes: a version-mismatched store
#: is renamed aside and rebuilt rather than misread.  New *tables* are
#: additive (``CREATE TABLE IF NOT EXISTS``) and do not bump the version,
#: so a store written before a table existed keeps serving its old rows.
_SCHEMA_VERSION = 1

#: How often a statement blocked by another writer is retried before the
#: operation degrades to a miss (on top of SQLite's own busy timeout).
_LOCK_RETRIES = 5
_LOCK_RETRY_WAIT = 0.05


def _is_lock_error(error: sqlite3.OperationalError) -> bool:
    message = str(error).lower()
    return "locked" in message or "busy" in message


def file_digest(path: str | os.PathLike[str], limit: int | None = None) -> str:
    """SHA-256 of a file's first *limit* bytes (all of them when ``None``).

    Streams in 1 MiB chunks, so hashing never materializes the file —
    the whole point of the out-of-core pipeline.
    """
    digest = hashlib.sha256()
    remaining = limit
    with open(path, "rb") as handle:
        while True:
            size = 1 << 20 if remaining is None else min(1 << 20, remaining)
            if size == 0:
                break
            chunk = handle.read(size)
            if not chunk:
                break
            digest.update(chunk)
            if remaining is not None:
                remaining -= len(chunk)
    return digest.hexdigest()


def case_digest(case_id: str | None) -> bytes:
    """Compact (8-byte) digest of one case id for disjointness checks."""
    data = b"\x00" if case_id is None else case_id.encode("utf-8")
    return hashlib.blake2b(data, digest_size=8).digest()


def counts_content_key(content_digest: str, fmt: str, on_error: str) -> str:
    """Content key of one (file content, format, parse mode) ingestion."""
    return hashlib.sha256(
        json.dumps([content_digest, fmt, on_error], separators=(",", ":")).encode()
    ).hexdigest()


def graph_content_key(counts_key: str, min_frequency: float) -> str:
    """Content key of a dependency graph derived from stored counts.

    ``repr(min_frequency)`` round-trips the float exactly, so equal
    thresholds — and only equal thresholds — share a graph row.
    """
    return hashlib.sha256(
        json.dumps([counts_key, repr(min_frequency)], separators=(",", ":")).encode()
    ).hexdigest()


def ingest_key(source: str | os.PathLike[str], fmt: str, on_error: str) -> str:
    """Key of the per-path append bookkeeping row."""
    resolved = os.fspath(Path(source).resolve())
    return hashlib.sha256(
        json.dumps([resolved, fmt, on_error], separators=(",", ":")).encode()
    ).hexdigest()


class LogStore:
    """One SQLite database of content-keyed counts, graphs and ingests.

    Parameters
    ----------
    path:
        The database file (created, with parents, on first use).
    max_entries:
        LRU bound per table (``counts`` and ``graphs`` each); ``None``
        disables eviction.  The ``ingests`` table is one small row per
        source path and is not bounded.
    observer:
        Metric sink for ``store_{hits,misses,evictions,corrupt}_total``
        and the ``store.{get,put}`` spans.
    """

    #: Generic digest-verified LRU tables.  Subclasses extend this tuple
    #: (and override :meth:`_create_extra_tables` for non-generic ones);
    #: the schema builder and the eviction machinery follow it.
    generic_tables: tuple[str, ...] = ("counts", "graphs")

    def __init__(
        self,
        path: str | os.PathLike[str],
        max_entries: int | None = 1024,
        observer: Observer | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise StoreError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.path = Path(path)
        self.max_entries = max_entries
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.hits = 0
        self.misses = 0
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise StoreError(f"cannot create store directory: {error}") from error
        #: Serializes whole operations (not just statements) across
        #: threads sharing this object; re-entrant so compound methods
        #: can call the locked primitives they are built from.
        self._lock = threading.RLock()
        self._connection: sqlite3.Connection | None = None
        self._connect()

    # ------------------------------------------------------------------
    # Connection lifecycle and corruption quarantine
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        try:
            # ``check_same_thread=False``: the daemon constructs a store
            # in one thread and serves from others; cross-thread *use* is
            # serialized by ``self._lock``, which is what the flag's
            # default check exists to force.
            connection = sqlite3.connect(self.path, check_same_thread=False)
            self._configure(connection)
            version = connection.execute("PRAGMA user_version").fetchone()[0]
            if version not in (0, _SCHEMA_VERSION):
                connection.close()
                self._set_aside(f"schema version {version} is not {_SCHEMA_VERSION}")
                connection = sqlite3.connect(self.path)
                self._configure(connection)
            self._create_schema(connection)
        except sqlite3.DatabaseError as error:
            # Not a SQLite file at all, or damaged beyond opening: set it
            # aside and start empty — a cold store, not a crash.
            self._set_aside(str(error))
            connection = sqlite3.connect(self.path)
            self._configure(connection)
            self._create_schema(connection)
        self._connection = connection

    @staticmethod
    def _configure(connection: sqlite3.Connection) -> None:
        """Concurrency pragmas: let two processes share one store.

        WAL journaling allows a reader during a write, and the busy
        timeout makes a second writer wait instead of failing instantly;
        a statement that still times out is retried a few times in
        :meth:`_execute` and then degrades to a miss — never a crash,
        never a set-aside of a database another process is using.
        """
        connection.execute("PRAGMA busy_timeout = 5000")
        connection.execute("PRAGMA journal_mode = WAL")

    def _create_schema(self, connection: sqlite3.Connection) -> None:
        """Create every table this store class needs (idempotent)."""
        connection.execute(f"PRAGMA user_version = {_SCHEMA_VERSION}")
        for table in self.generic_tables:
            connection.execute(
                f"CREATE TABLE IF NOT EXISTS {table} ("
                "  key TEXT PRIMARY KEY,"
                "  payload BLOB NOT NULL,"
                "  digest TEXT NOT NULL,"
                "  created REAL NOT NULL,"
                "  last_used REAL NOT NULL"
                ")"
            )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS ingests ("
            "  key TEXT PRIMARY KEY,"
            "  byte_count INTEGER NOT NULL,"
            "  prefix_digest TEXT NOT NULL,"
            "  header TEXT NOT NULL,"
            "  counts_key TEXT NOT NULL"
            ")"
        )
        self._create_extra_tables(connection)
        connection.commit()

    def _create_extra_tables(self, connection: sqlite3.Connection) -> None:
        """Hook for subclasses with tables outside the generic shape."""

    def _set_aside(self, reason: str) -> None:
        """Rename an unusable database out of the way (best effort)."""
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = None
        aside = self.path.with_name(self.path.name + ".corrupt")
        _logger.warning(
            "log store %s is unusable (%s); renaming to %s and starting cold",
            self.path, reason, aside,
        )
        self.observer.count(
            "store_corrupt_total",
            help="store rows or databases rejected at load time (cold path)",
        )
        try:
            os.replace(self.path, aside)
        except OSError:
            try:
                os.unlink(self.path)
            except OSError:
                pass
        # A recreated database must not inherit the old WAL sidecars.
        for suffix in ("-wal", "-shm"):
            try:
                os.unlink(os.fspath(self.path) + suffix)
            except OSError:
                pass

    def _execute(self, *args) -> sqlite3.Cursor | None:
        """Run one statement; database-level corruption degrades to None.

        A database held by a concurrent writer is *not* corruption: the
        statement is retried (on top of SQLite's busy timeout) and, if the
        lock persists, degrades to ``None`` — a miss — without touching
        the other process's data.
        """
        with self._lock:
            if self._connection is None:
                self._connect()
            for _ in range(_LOCK_RETRIES):
                try:
                    assert self._connection is not None
                    return self._connection.execute(*args)
                except sqlite3.OperationalError as error:
                    if not _is_lock_error(error):
                        self._set_aside(str(error))
                        self._connect()
                        return None
                    time.sleep(_LOCK_RETRY_WAIT)
                except sqlite3.DatabaseError as error:
                    self._set_aside(str(error))
                    self._connect()
                    return None
            _logger.warning(
                "log store %s is locked by another process; degrading to a miss",
                self.path,
            )
            return None

    def _commit(self) -> None:
        with self._lock:
            if self._connection is None:
                return
            for _ in range(_LOCK_RETRIES):
                try:
                    self._connection.commit()
                    return
                except sqlite3.OperationalError as error:
                    if not _is_lock_error(error):
                        self._set_aside(str(error))
                        self._connect()
                        return
                    time.sleep(_LOCK_RETRY_WAIT)
                except sqlite3.DatabaseError as error:
                    self._set_aside(str(error))
                    self._connect()
                    return
            _logger.warning(
                "log store %s commit blocked by another process; rolling back",
                self.path,
            )
            try:
                self._connection.rollback()
            except sqlite3.Error:
                pass

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    # ------------------------------------------------------------------
    # Generic verified rows
    # ------------------------------------------------------------------
    def _miss(self) -> None:
        self.misses += 1
        self.observer.count(
            "store_misses_total",
            help="log-store lookups that fell through to a cold computation",
        )

    def _hit(self) -> None:
        self.hits += 1
        self.observer.count(
            "store_hits_total",
            help="log-store lookups served from persisted results",
        )

    def _row_rejected(self, table: str) -> None:
        """Hook for subclasses that keep per-table corruption counters."""

    def _get(self, table: str, key: str) -> Any | None:
        # The lock spans the whole select-verify-touch-commit sequence:
        # a second thread must not commit between our SELECT and our
        # last_used UPDATE, or interleave a conflicting write.
        with self._lock, self.observer.span("store.get", table=table):
            cursor = self._execute(
                f"SELECT payload, digest FROM {table} WHERE key = ?", (key,)
            )
            row = cursor.fetchone() if cursor is not None else None
            if row is None:
                self._miss()
                return None
            payload, digest = row
            value = None
            reason = None
            if hashlib.sha256(payload).hexdigest() != digest:
                reason = "payload digest mismatch (corrupt or torn row)"
            else:
                try:
                    value = pickle.loads(payload)
                except Exception as error:
                    reason = f"unreadable payload ({error})"
            if value is None:
                _logger.warning(
                    "ignoring store row %s/%s...: %s; computing cold",
                    table, key[:12], reason,
                )
                self.observer.count(
                    "store_corrupt_total",
                    help="store rows or databases rejected at load time (cold path)",
                )
                self._row_rejected(table)
                self._execute(f"DELETE FROM {table} WHERE key = ?", (key,))
                self._commit()
                self._miss()
                return None
            self._execute(
                f"UPDATE {table} SET last_used = ? WHERE key = ?",
                (time.time(), key),
            )
            self._commit()
            self._hit()
            return value

    def _put(self, table: str, key: str, value: Any) -> None:
        with self._lock, self.observer.span("store.put", table=table):
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest()
            now = time.time()
            self._execute(
                f"INSERT OR REPLACE INTO {table} "
                "(key, payload, digest, created, last_used) VALUES (?, ?, ?, ?, ?)",
                (key, payload, digest, now, now),
            )
            self._evict(table)
            self._commit()

    def _evict(self, table: str) -> None:
        if self.max_entries is None:
            return
        cursor = self._execute(f"SELECT COUNT(*) FROM {table}")
        if cursor is None:
            return
        excess = cursor.fetchone()[0] - self.max_entries
        if excess <= 0:
            return
        cursor = self._execute(
            f"SELECT key FROM {table} ORDER BY last_used ASC LIMIT ?", (excess,)
        )
        keys = [row[0] for row in cursor.fetchall()] if cursor is not None else []
        if not keys:
            return
        marks = ",".join("?" for _ in keys)
        self._execute(f"DELETE FROM {table} WHERE key IN ({marks})", keys)
        self.observer.count(
            "store_evictions_total",
            amount=float(len(keys)),
            help="store rows dropped by the LRU size bound",
        )
        self._on_evicted(table, keys)

    def _on_evicted(self, table: str, keys: list[str]) -> None:
        """Hook: rows of *table* were LRU-evicted (cascade cleanup)."""

    # ------------------------------------------------------------------
    # Typed accessors
    # ------------------------------------------------------------------
    def get_counts(self, key: str) -> dict[str, Any] | None:
        """The stored raw-count record for *key*, or ``None``.

        The record is the dict :meth:`put_counts` stored: ``trace_count``,
        ``activity_counts``, ``pair_counts``, ``case_digests`` and
        ``log_name``.  A malformed record (wrong type, missing fields) is
        treated exactly like a corrupt row.
        """
        with self._lock:
            return self._get_counts_locked(key)

    def _get_counts_locked(self, key: str) -> dict[str, Any] | None:
        value = self._get("counts", key)
        if value is None:
            return None
        required = {"trace_count", "activity_counts", "pair_counts",
                    "case_digests", "log_name"}
        if not isinstance(value, dict) or not required.issubset(value):
            _logger.warning(
                "store counts row %s... has an unexpected shape; computing cold",
                key[:12],
            )
            self.observer.count("store_corrupt_total")
            self._execute("DELETE FROM counts WHERE key = ?", (key,))
            self._commit()
            return None
        return value

    def put_counts(self, key: str, record: dict[str, Any]) -> None:
        self._put("counts", key, record)

    def get_graph(self, key: str) -> DependencyGraph | None:
        with self._lock:
            return self._get_graph_locked(key)

    def _get_graph_locked(self, key: str) -> DependencyGraph | None:
        value = self._get("graphs", key)
        if value is None:
            return None
        if not isinstance(value, DependencyGraph):
            _logger.warning(
                "store graph row %s... has an unexpected shape; computing cold",
                key[:12],
            )
            self.observer.count("store_corrupt_total")
            self._execute("DELETE FROM graphs WHERE key = ?", (key,))
            self._commit()
            return None
        return value

    def put_graph(self, key: str, graph: DependencyGraph) -> None:
        self._put("graphs", key, graph)

    # ------------------------------------------------------------------
    # Append bookkeeping
    # ------------------------------------------------------------------
    def get_ingest(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            return self._get_ingest_locked(key)

    def _get_ingest_locked(self, key: str) -> dict[str, Any] | None:
        cursor = self._execute(
            "SELECT byte_count, prefix_digest, header, counts_key "
            "FROM ingests WHERE key = ?",
            (key,),
        )
        row = cursor.fetchone() if cursor is not None else None
        if row is None:
            return None
        return {
            "byte_count": row[0],
            "prefix_digest": row[1],
            "header": row[2],
            "counts_key": row[3],
        }

    def put_ingest(
        self,
        key: str,
        byte_count: int,
        prefix_digest: str,
        header: str,
        counts_key: str,
    ) -> None:
        with self._lock:
            self._execute(
                "INSERT OR REPLACE INTO ingests "
                "(key, byte_count, prefix_digest, header, counts_key) "
                "VALUES (?, ?, ?, ?, ?)",
                (key, byte_count, prefix_digest, header, counts_key),
            )
            self._commit()
