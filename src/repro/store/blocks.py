"""Spill-to-disk trace blocks: the unit of sharded ingestion.

A *block* is a bounded run of traces reduced to what Definition-1
statistics actually consume — ``(case_id, activity sequence)`` pairs —
serialized one JSON array per line::

    ["case-17", ["register", "triage", "close"]]

JSONL was chosen over pickle deliberately: a block is plain data with no
code-execution surface, it is inspectable with standard tools when an
ingestion goes wrong, and a torn final line (crash mid-spill) fails
loudly at ``json.loads`` instead of deserializing garbage.  Blocks are
written to a caller-owned spill directory as ``block-000000.jsonl``,
``block-000001.jsonl``, ... and deleted with that directory; they are
scratch space, not durable state (durable derived results live in the
:class:`~repro.store.LogStore`).

Memory contract: :class:`TraceBlockWriter` holds at most ``block_traces``
traces before flushing, and :func:`iter_block` yields one trace at a
time — both ends of the spill are O(block), which is what makes the
sharded pipeline's peak ingestion memory O(shard) instead of O(log).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterator, Sequence

from repro.exceptions import LogFormatError

#: Traces per block unless the caller says otherwise.  Big enough that a
#: worker's per-task overhead (process dispatch, file open) amortizes,
#: small enough that a block of long traces stays comfortably in memory.
DEFAULT_BLOCK_TRACES = 512


class TraceBlockWriter:
    """Accumulate traces and spill them to numbered block files.

    Usage::

        writer = TraceBlockWriter(spill_dir, block_traces=512)
        for case_id, activities in traces:
            writer.add(case_id, activities)
        blocks = writer.finish()   # list of block paths, spill complete

    The writer never holds more than one block of traces; ``finish()``
    flushes the partial last block and returns every path written, in
    order.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        block_traces: int = DEFAULT_BLOCK_TRACES,
    ):
        if block_traces < 1:
            raise ValueError(f"block_traces must be >= 1, got {block_traces}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.block_traces = block_traces
        self.traces_written = 0
        self._pending: list[tuple[str | None, Sequence[str]]] = []
        self._paths: list[Path] = []
        self._finished = False

    def add(self, case_id: str | None, activities: Sequence[str]) -> None:
        """Buffer one trace; spills a block when the buffer fills."""
        if self._finished:
            raise ValueError("writer already finished")
        self._pending.append((case_id, activities))
        self.traces_written += 1
        if len(self._pending) >= self.block_traces:
            self._flush()

    def finish(self) -> list[Path]:
        """Flush the partial last block and return all block paths."""
        if not self._finished:
            if self._pending:
                self._flush()
            self._finished = True
        return list(self._paths)

    def _flush(self) -> None:
        path = self.directory / f"block-{len(self._paths):06d}.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for case_id, activities in self._pending:
                json.dump(
                    [case_id, list(activities)],
                    handle,
                    ensure_ascii=False,
                    separators=(",", ":"),
                )
                handle.write("\n")
        self._paths.append(path)
        self._pending.clear()


def iter_block(
    source: str | os.PathLike[str] | IO[str],
) -> Iterator[tuple[str | None, tuple[str, ...]]]:
    """Stream the ``(case_id, activities)`` pairs of one block file.

    A malformed line — torn write, foreign file in the spill directory —
    raises :class:`LogFormatError` naming the line, so a bad block fails
    the shard loudly instead of contributing partial counts.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, encoding="utf-8") as handle:
            yield from _iter_lines(handle, os.fspath(source))
    else:
        yield from _iter_lines(source, getattr(source, "name", "<stream>"))


def _iter_lines(
    handle: IO[str], origin: str
) -> Iterator[tuple[str | None, tuple[str, ...]]]:
    for line_number, line in enumerate(handle, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            case_id, activities = record
        except (ValueError, TypeError) as exc:
            raise LogFormatError(
                f"corrupt trace block {origin} line {line_number}: {exc}"
            ) from None
        if case_id is not None and not isinstance(case_id, str):
            raise LogFormatError(
                f"corrupt trace block {origin} line {line_number}: "
                f"case id must be a string or null"
            )
        if not isinstance(activities, list) or not all(
            isinstance(activity, str) for activity in activities
        ):
            raise LogFormatError(
                f"corrupt trace block {origin} line {line_number}: "
                f"activities must be a list of strings"
            )
        yield case_id, tuple(activities)
