"""Ingestion orchestration: store lookup → append → sharded → streamed.

:func:`ingest_statistics` is the out-of-core front door.  For one input
file it produces the exact :class:`~repro.logs.stats.LogStatistics` the
batch path (``read_csv``/``read_xes`` + ``compute_statistics``) would,
choosing the cheapest sound route:

1. **store hit** — the file's content digest matches a persisted counts
   row: no parsing, no counting;
2. **append fast path** (CSV, with a store) — the file grew but its old
   prefix is byte-identical to what was ingested before: only the tail
   is parsed, and its counts are merged into the stored ones.  Sound
   only when the tail's cases are disjoint from the stored case-digest
   set — otherwise a case's rows would be split across two parses — so
   any overlap falls back to a cold full parse;
3. **sharded** (``shard_traces`` set) — the trace stream is spilled into
   bounded blocks and counted per block, optionally across the
   supervised worker pool; peak memory is O(shard);
4. **streamed** — the trace stream feeds one accumulator directly;
   still never materializes an :class:`~repro.logs.log.EventLog`.

Every route ends in the same integer counts, so the emitted statistics
(and any graph built from them) are bit-identical across routes — the
property the differential and Hypothesis suites pin.

The result records which route ran (``mode``) so callers — the CLI, the
benchmarks — can assert they exercised the path they meant to.
"""

from __future__ import annotations

import io
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.core.ems import WarmStart
from repro.exceptions import LogFormatError
from repro.graph.dependency import DependencyGraph
from repro.graph.reachability import real_ancestors, real_descendants
from repro.logs.csvio import _read_rows
from repro.logs.stats import LogStatistics
from repro.logs.streaming import OnlineStatistics
from repro.logs.xes import iter_xes_traces
from repro.obs import NULL_OBSERVER, Observer, get_logger
from repro.runtime.report import IngestionReport
from repro.runtime.supervise import RetryPolicy
from repro.store.logstore import (
    LogStore,
    case_digest,
    counts_content_key,
    file_digest,
    graph_content_key,
    ingest_key,
)
from repro.store.matchstore import (
    MatchStore,
    matrix_content_key,
    matrix_record,
    restore_result,
)
from repro.store.sharding import (
    resolve_format,
    shard_statistics,
    spill_blocks,
    stream_traces,
)

if TYPE_CHECKING:
    from repro.baselines.common import MatchOutcome
    from repro.matchers import EMSMatcher

_logger = get_logger(__name__)


@dataclass(frozen=True, slots=True)
class IngestResult:
    """What one ingestion produced and how.

    ``mode`` is ``"store"`` (counts served entirely from the store),
    ``"store-append"`` (stored prefix counts + freshly parsed tail),
    ``"sharded"`` (spilled blocks, per-shard counting) or ``"streamed"``
    (single-pass accumulation).  ``shards`` is the number of blocks
    counted (0 unless sharded); ``counts_key`` the store key used, when
    a store was attached.
    """

    statistics: LogStatistics
    log_name: str
    mode: str
    shards: int = 0
    counts_key: str | None = None
    #: On the append fast path, the counts key the file had *before* it
    #: grew — the match store looks up the previous pair's similarity
    #: matrix under it to warm-start the fixpoint (a partial hit).
    previous_counts_key: str | None = None


class _NameSink:
    __slots__ = ("value",)

    def __init__(self, default: str):
        self.value = default

    def __call__(self, value: str) -> None:
        self.value = value


def _counts_record(
    stats: OnlineStatistics, digests: frozenset[bytes], log_name: str
) -> dict[str, Any]:
    return {
        "trace_count": stats.trace_count,
        "activity_counts": dict(stats.activity_counts),
        "pair_counts": dict(stats.pair_counts),
        "case_digests": digests,
        "log_name": log_name,
    }


def _seed_from_record(record: dict[str, Any]) -> OnlineStatistics:
    stats = OnlineStatistics()
    stats.seed_counts(
        record["trace_count"], record["activity_counts"], record["pair_counts"]
    )
    return stats


def _digesting(
    traces: Iterator[tuple[str | None, tuple[str, ...]]],
    sink: set[bytes],
) -> Iterator[tuple[str | None, tuple[str, ...]]]:
    for case_id, activities in traces:
        sink.add(case_digest(case_id))
        yield case_id, activities


#: Event rows are staged into the match store in batches of this size.
_ROW_BATCH = 4096


def _recording_rows(
    traces: Iterator[tuple[str | None, tuple[str, ...]]],
    store: "MatchStore",
    key: str,
    start: int = 0,
) -> Iterator[tuple[str | None, tuple[str, ...]]]:
    """Tee the trace stream into the store's ``events`` table.

    Rows are staged (not committed) while streaming; the caller's final
    ``put_counts`` commits them atomically with the counts row, so a
    crash mid-stream never leaves partial rows behind a valid-looking
    counts key.
    """
    batch: list[tuple[str, int, int, str]] = []
    index = start
    for case_id, activities in traces:
        for pos, activity in enumerate(activities):
            batch.append((key, index, pos, activity))
        index += 1
        if len(batch) >= _ROW_BATCH:
            store.insert_event_rows(batch)
            batch.clear()
        yield case_id, activities
    if batch:
        store.insert_event_rows(batch)


def _xes_append_offset(path: str | os.PathLike[str]) -> int | None:
    """Byte offset of the final ``</log`` closing tag, or ``None``.

    An XES file "grows" by rewriting its closing tag further down — the
    stable prefix ends where ``</log>`` began.  Only the unprefixed
    closing tag is recognized (namespace-prefixed documents get no
    bookkeeping and simply never take the fast path).
    """
    size = os.path.getsize(path)
    window = min(size, 1 << 16)
    with open(path, "rb") as handle:
        handle.seek(size - window)
        tail = handle.read(window)
    found = tail.rfind(b"</log")
    if found < 0:
        return None
    return size - window + found


def _parse_xes_tail(
    tail_bytes: bytes, on_error: str, report: IngestionReport
) -> list[tuple[str | None, tuple[str, ...]]] | None:
    """Parse the appended region of a grown XES file, or ``None``.

    The tail (everything from the old ``</log>`` offset on: the new
    traces, the relocated closing tag, any trailing whitespace) is
    wrapped in a synthetic ``<log>`` root and streamed through the
    ordinary reader.  A tail the wrapper cannot parse returns ``None`` —
    the cold path re-parses the whole file and reports any genuine
    defect with full context.
    """
    try:
        return [
            (trace.case_id, trace.activities)
            for trace in iter_xes_traces(
                io.BytesIO(b"<log>" + tail_bytes), on_error, report
            )
        ]
    except LogFormatError:
        return None


def _ends_in_newline(path: str | os.PathLike[str]) -> bool:
    with open(path, "rb") as handle:
        handle.seek(-1, os.SEEK_END)
        return handle.read(1) == b"\n"


def _csv_header(path: str | os.PathLike[str]) -> str | None:
    """The raw first line (terminator included), or ``None`` when the
    file does not end in a newline — an append could then continue the
    final row mid-field, so the append bookkeeping is skipped."""
    with open(path, "rb") as handle:
        header = handle.readline()
        if not header.endswith(b"\n"):
            return None
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) != b"\n":
            return None
    try:
        return header.decode("utf-8")
    except UnicodeDecodeError:
        return None


def ingest_statistics(
    source: str | os.PathLike[str],
    fmt: str = "auto",
    on_error: str = "raise",
    report: IngestionReport | None = None,
    *,
    shard_traces: int | None = None,
    workers: int = 0,
    store: LogStore | None = None,
    policy: RetryPolicy | None = None,
    task_timeout: float | None = None,
    observer: Observer | None = None,
) -> IngestResult:
    """Statistics of the log at *source*, by the cheapest sound route.

    See the module docstring for route selection.  ``shard_traces`` is
    the traces-per-block bound of the sharded route; ``workers > 1``
    fans block counting across the supervised pool.  Note that a
    store-served result skips parsing entirely, so *report* then
    reflects only what was actually parsed (nothing on a full hit, the
    tail on an append).
    """
    observer = observer if observer is not None else NULL_OBSERVER
    fmt = resolve_format(source, fmt)
    if report is None:
        report = IngestionReport(mode=on_error)
    if not report.source:
        report.source = os.fspath(source)

    counts_key: str | None = None
    if store is not None:
        content = file_digest(source)
        counts_key = counts_content_key(content, fmt, on_error)
        record = store.get_counts(counts_key)
        if record is not None:
            # Leg 2 of the match store: for a MatchStore the per-trace
            # event rows are aggregated by SQL window functions inside
            # SQLite (verified against the counts row's trace count), so
            # no per-trace Python structure is ever touched.  A plain
            # LogStore — or missing/corrupt rows — seeds from the
            # aggregated counts blob instead; both are bit-identical.
            stats = None
            if isinstance(store, MatchStore):
                stats = store.sql_statistics(
                    counts_key, expected_traces=record["trace_count"]
                )
            if stats is None:
                stats = _seed_from_record(record)
            return IngestResult(
                statistics=stats.snapshot(),
                log_name=record["log_name"],
                mode="store",
                counts_key=counts_key,
            )
        appended = None
        if fmt in ("csv", "xes"):
            appended = _try_append(
                source, fmt, on_error, report, store, counts_key, content, observer
            )
        if appended is not None:
            return appended

    digests: set[bytes] = set()
    name_sink = _NameSink(Path(source).stem)
    mode = "streamed"
    shards = 0
    recording = isinstance(store, MatchStore) and counts_key is not None
    with tempfile.TemporaryDirectory(prefix="repro-ingest-") as scratch:
        scratch_dir = Path(scratch)
        traces = stream_traces(
            source, fmt, on_error, report,
            spill_dir=scratch_dir / "partitions",
            name_sink=name_sink,
        )
        if store is not None:
            traces = _digesting(traces, digests)
        if recording:
            assert isinstance(store, MatchStore) and counts_key is not None
            store.delete_trace_rows(counts_key)
            traces = _recording_rows(traces, store, counts_key)
        try:
            if shard_traces is not None:
                if shard_traces < 1:
                    raise ValueError(f"shard_traces must be >= 1, got {shard_traces}")
                with observer.span("ingest.spill", source=os.fspath(source)):
                    blocks = spill_blocks(
                        traces, scratch_dir / "blocks", block_traces=shard_traces
                    )
                shards = len(blocks)
                stats = shard_statistics(
                    blocks, workers=workers, policy=policy,
                    task_timeout=task_timeout, observer=observer,
                )
                mode = "sharded"
            else:
                stats = OnlineStatistics()
                with observer.span("ingest.stream", source=os.fspath(source)):
                    for _, activities in traces:
                        stats.add_sequence(activities)
        except BaseException:
            # Drop any staged trace rows: a half-streamed ingest must not
            # leave rows that a later SQL aggregation could mistake for a
            # complete log.
            if recording:
                assert isinstance(store, MatchStore)
                store.rollback()
            raise

    if store is not None and counts_key is not None:
        store.put_counts(
            counts_key, _counts_record(stats, frozenset(digests), name_sink.value)
        )
        if fmt == "csv":
            header = _csv_header(source)
            if header is not None:
                store.put_ingest(
                    ingest_key(source, fmt, on_error),
                    os.path.getsize(source),
                    content,
                    header,
                    counts_key,
                )
        elif fmt == "xes":
            offset = _xes_append_offset(source)
            if offset is not None and offset > 0:
                store.put_ingest(
                    ingest_key(source, fmt, on_error),
                    offset,
                    file_digest(source, limit=offset),
                    "",
                    counts_key,
                )
    return IngestResult(
        statistics=stats.snapshot(),
        log_name=name_sink.value,
        mode=mode,
        shards=shards,
        counts_key=counts_key,
    )


def _try_append(
    source: str | os.PathLike[str],
    fmt: str,
    on_error: str,
    report: IngestionReport,
    store: LogStore,
    counts_key: str,
    content: str,
    observer: Observer,
) -> IngestResult | None:
    """The append fast path (CSV and XES), or ``None`` when inapplicable.

    Every check errs toward the cold path: a shrunk or rewritten
    prefix, a prior row whose counts were evicted, a tail that cannot be
    parsed in isolation, or tail cases overlapping the stored case set
    all return ``None`` — the caller then parses everything from scratch.

    For CSV the stable prefix is the whole previously ingested file; for
    XES it ends at the old ``</log>`` offset (appending to XES rewrites
    the closing tag further down), and the tail is parsed by wrapping it
    in a synthetic ``<log>`` root.
    """
    key = ingest_key(source, fmt, on_error)
    prior = store.get_ingest(key)
    if prior is None:
        return None
    size = os.path.getsize(source)
    if fmt == "csv":
        if size <= prior["byte_count"]:
            return None
        new_byte_count = size
    else:
        offset = _xes_append_offset(source)
        if offset is None or offset < prior["byte_count"]:
            return None
        new_byte_count = offset
    if file_digest(source, limit=prior["byte_count"]) != prior["prefix_digest"]:
        return None
    record = store.get_counts(prior["counts_key"])
    if record is None:
        return None
    with open(source, "rb") as handle:
        handle.seek(prior["byte_count"])
        tail_bytes = handle.read()

    with observer.span("ingest.append", source=os.fspath(source)):
        if fmt == "csv":
            try:
                tail_text = tail_bytes.decode("utf-8")
            except UnicodeDecodeError:
                return None
            tail_log = _read_rows(
                io.StringIO(prior["header"] + tail_text),
                Path(source).stem, on_error, report,
            )
            tail_traces = [
                (trace.case_id, trace.activities) for trace in tail_log
            ]
        else:
            parsed = _parse_xes_tail(tail_bytes, on_error, report)
            if parsed is None:
                return None
            tail_traces = parsed
        stored_digests: frozenset[bytes] = record["case_digests"]
        tail_digests = {case_digest(case_id) for case_id, _ in tail_traces}
        if tail_digests & stored_digests:
            _logger.info(
                "append fast path for %s declined: tail cases overlap the "
                "stored prefix; re-parsing in full", os.fspath(source),
            )
            return None
        tail_stats = OnlineStatistics()
        for _, activities in tail_traces:
            tail_stats.add_sequence(activities)
        total = _seed_from_record(record)
        tail_stats.merge_into(total)

    if isinstance(store, MatchStore):
        _extend_trace_rows(
            store, prior["counts_key"], counts_key,
            record["trace_count"], tail_traces,
        )
    store.put_counts(
        counts_key,
        _counts_record(
            total, stored_digests | tail_digests, record["log_name"]
        ),
    )
    # Refresh the bookkeeping for the *next* append — unless the grown
    # CSV no longer ends in a newline (a future append could then
    # continue the torn final row mid-field, and the prefix digest would
    # not catch it; the stale row stays and the case-overlap gate forces
    # the next ingest cold).
    if fmt == "xes":
        store.put_ingest(
            key, new_byte_count,
            file_digest(source, limit=new_byte_count), "", counts_key,
        )
    elif _ends_in_newline(source):
        store.put_ingest(key, new_byte_count, content, prior["header"], counts_key)
    return IngestResult(
        statistics=total.snapshot(),
        log_name=record["log_name"],
        mode="store-append",
        counts_key=counts_key,
        previous_counts_key=prior["counts_key"],
    )


def _extend_trace_rows(
    store: MatchStore,
    old_key: str,
    new_key: str,
    stored_traces: int,
    tail_traces: list[tuple[str | None, tuple[str, ...]]],
) -> None:
    """Carry stored trace rows across an append (staged, not committed).

    Only sound when the old key's rows are complete (their trace count
    matches the digest-verified counts row); otherwise any rows under
    either key are dropped and SQL push-down simply has nothing for this
    log until the next cold ingest.
    """
    if store.stored_trace_count(old_key) == stored_traces:
        store.rekey_trace_rows(old_key, new_key)
        rows: list[tuple[str, int, int, str]] = []
        for index, (_, activities) in enumerate(tail_traces, start=stored_traces):
            for pos, activity in enumerate(activities):
                rows.append((new_key, index, pos, activity))
        store.insert_event_rows(rows)
    else:
        store.delete_trace_rows(old_key)
        store.delete_trace_rows(new_key)


def ingest_graph(
    source: str | os.PathLike[str],
    fmt: str = "auto",
    on_error: str = "raise",
    report: IngestionReport | None = None,
    *,
    min_frequency: float = 0.0,
    shard_traces: int | None = None,
    workers: int = 0,
    store: LogStore | None = None,
    policy: RetryPolicy | None = None,
    task_timeout: float | None = None,
    observer: Observer | None = None,
) -> tuple[DependencyGraph, IngestResult]:
    """The dependency graph of the log at *source*, store-accelerated.

    Statistics come from :func:`ingest_statistics`; the derived graph is
    additionally memoized per ``min_frequency`` in the store's graph
    table, so repeated matchings skip even the graph construction.
    """
    observer = observer if observer is not None else NULL_OBSERVER
    result = ingest_statistics(
        source, fmt, on_error, report,
        shard_traces=shard_traces, workers=workers, store=store,
        policy=policy, task_timeout=task_timeout, observer=observer,
    )
    graph_key = None
    if store is not None and result.counts_key is not None:
        graph_key = graph_content_key(result.counts_key, min_frequency)
        graph = store.get_graph(graph_key)
        if graph is not None:
            return graph, result
    with observer.span("graph.build", source=os.fspath(source)):
        graph = DependencyGraph.from_statistics(
            result.statistics, name=result.log_name, min_frequency=min_frequency
        )
    if store is not None and graph_key is not None:
        store.put_graph(graph_key, graph)
    return graph, result


# ----------------------------------------------------------------------
# Warm end-to-end matching
# ----------------------------------------------------------------------
def match_stored(
    source_first: str | os.PathLike[str],
    source_second: str | os.PathLike[str],
    fmt: str = "auto",
    on_error: str = "raise",
    *,
    matcher: "EMSMatcher",
    store: MatchStore,
    reports: tuple[IngestionReport | None, IngestionReport | None] = (None, None),
    shard_traces: int | None = None,
    workers: int = 0,
    policy: RetryPolicy | None = None,
    task_timeout: float | None = None,
    label_key: str = "opaque",
    observer: Observer | None = None,
) -> tuple["MatchOutcome", dict[str, Any]]:
    """Match two log files through the match store, warmest route first.

    Route selection, every step bit-identical to a cold in-memory match:

    1. **full hit** — both files' content digests and the matcher's
       configuration key to a stored similarity matrix: the restored
       matrix goes straight to assignment; no parse, no graphs, no
       fixpoint (``match_mode="store"``);
    2. **partial hit** — the pair misses but one (or both) sides grew
       via the append fast path and the *previous* pair's matrix is
       stored: the fixpoint is warm-started from it, re-iterating only
       pairs whose Proposition-4 dependency closure the appended tail
       could have changed (``match_mode="store-partial"``);
    3. **computed** — a cold fixpoint; the finished matrix is persisted
       for next time when it is exact, converged and unbudgeted
       (``match_mode="computed"``).

    Budgeted matchers bypass the matrix store entirely (the evalcache
    precedent: budget accounting must reflect real work), but still use
    the counts/graph stores underneath.

    Returns ``(outcome, provenance)`` — provenance carries
    ``match_mode``, the matrix key, per-side ingest modes and log names.
    """
    observer = observer if observer is not None else NULL_OBSERVER
    config = matcher.config
    min_frequency = matcher.min_edge_frequency
    usable = matcher.budget is None

    fmt_first = resolve_format(source_first, fmt)
    fmt_second = resolve_format(source_second, fmt)
    ck_first = counts_content_key(file_digest(source_first), fmt_first, on_error)
    ck_second = counts_content_key(file_digest(source_second), fmt_second, on_error)
    mkey = matrix_content_key(ck_first, ck_second, min_frequency, config, label_key)

    if usable:
        with observer.span("match.store.lookup", key=mkey[:12]):
            record = store.get_matrix(mkey)
        if record is not None:
            outcome = matcher.outcome_from_result(restore_result(record))
            names = record["log_names"]
            return outcome, {
                "match_mode": "store",
                "matrix_key": mkey,
                "ingest_modes": ("store", "store"),
                "log_names": (str(names[0]), str(names[1])),
                "pairs_warm": 0,
            }

    sides = []
    for source, side_fmt, report in (
        (source_first, fmt_first, reports[0]),
        (source_second, fmt_second, reports[1]),
    ):
        try:
            sides.append(ingest_graph(
                source, side_fmt, on_error, report,
                min_frequency=min_frequency, shard_traces=shard_traces,
                workers=workers, store=store, policy=policy,
                task_timeout=task_timeout, observer=observer,
            ))
        except LogFormatError as error:
            # Tag the failing side so callers can dead-letter the right
            # file — both sides are ingested inside this one call.
            error.source = os.fspath(source)  # type: ignore[attr-defined]
            raise
    (graph_first, res_first), (graph_second, res_second) = sides

    fixed: dict[str, WarmStart] = {}
    # Partial warm starts are only sound when each pair's final value is
    # determined by its own dependency closure: Proposition-2 pruning
    # freezes every pair at its level, independent of global stopping.
    # Without pruning (or with the closed-form estimation) the global
    # iteration count couples all pairs, so fall back to a cold fixpoint.
    if (
        usable
        and config.use_pruning
        and config.estimation_iterations is None
        and (res_first.previous_counts_key or res_second.previous_counts_key)
    ):
        fixed = _stored_warm_starts(
            store, (graph_first, graph_second), (res_first, res_second),
            min_frequency, config, label_key, observer,
        )

    outcome, result, runtime = matcher.match_graphs_detailed(
        graph_first, graph_second,
        fixed_forward=fixed.get("forward"),
        fixed_backward=fixed.get("backward"),
    )
    if (
        usable
        and runtime.stage == "exact"
        and result.converged
        and not result.estimated
        and result.directional
    ):
        store.put_matrix(
            mkey,
            matrix_record(result, config, (res_first.log_name, res_second.log_name)),
        )
    return outcome, {
        "match_mode": "store-partial" if fixed else "computed",
        "matrix_key": mkey,
        "ingest_modes": (res_first.mode, res_second.mode),
        "log_names": (res_first.log_name, res_second.log_name),
        "pairs_warm": sum(w.pairs_fixed for w in fixed.values()),
    }


def _stored_warm_starts(
    store: MatchStore,
    graphs: tuple[DependencyGraph, DependencyGraph],
    results: tuple[IngestResult, IngestResult],
    min_frequency: float,
    config: Any,
    label_key: str,
    observer: Observer,
) -> dict[str, WarmStart]:
    """Warm starts from the previous pair's stored matrix, or ``{}``.

    Every bail-out path returns ``{}`` — a cold fixpoint, never a wrong
    answer.
    """
    prev_first = results[0].previous_counts_key or results[0].counts_key
    prev_second = results[1].previous_counts_key or results[1].counts_key
    if prev_first is None or prev_second is None:
        return {}
    old_key = matrix_content_key(
        prev_first, prev_second, min_frequency, config, label_key
    )
    with observer.span("match.store.lookup", key=old_key[:12]):
        record = store.get_matrix(old_key)
    if record is None:
        return {}

    changed: list[set[str]] = []
    for side, (graph, result, prev_key, labels) in enumerate(
        (
            (graphs[0], results[0], prev_first, tuple(record["rows"])),
            (graphs[1], results[1], prev_second, tuple(record["cols"])),
        )
    ):
        if result.previous_counts_key is None:
            # This side did not grow: the stored matrix was computed on
            # this very graph — provided the stored grid matches it.
            if labels != graph.nodes:
                return {}
            changed.append(set())
            continue
        old_graph = _stored_graph(store, prev_key, min_frequency)
        if old_graph is None or labels != old_graph.nodes:
            return {}
        changed.append(_changed_nodes(old_graph, graph))

    directional = record["directional"]
    warm: dict[str, WarmStart] = {}
    for name in (
        ("forward", "backward") if config.direction == "both"
        else (config.direction,)
    ):
        stored = directional.get(name)
        if stored is None:
            return {}
        if name == "forward":
            dirty_first = _dirty_mask(
                graphs[0], changed[0], real_descendants)
            dirty_second = _dirty_mask(
                graphs[1], changed[1], real_descendants)
        else:
            dirty_first = _dirty_mask(graphs[0], changed[0], real_ancestors)
            dirty_second = _dirty_mask(graphs[1], changed[1], real_ancestors)
        values = _mapped_values(
            stored["values"],
            tuple(record["rows"]), tuple(record["cols"]),
            graphs[0].nodes, graphs[1].nodes,
            config.np_dtype,
        )
        warm[name] = WarmStart(
            values=values,
            dirty=dirty_first[:, None] | dirty_second[None, :],
        )
    return warm


def _stored_graph(
    store: MatchStore, counts_key: str, min_frequency: float
) -> DependencyGraph | None:
    """The dependency graph of a *previous* stored ingest, if recoverable."""
    graph = store.get_graph(graph_content_key(counts_key, min_frequency))
    if graph is not None:
        return graph
    record = store.get_counts(counts_key)
    if record is None:
        return None
    stats = _seed_from_record(record)
    return DependencyGraph.from_statistics(
        stats.snapshot(), name=record["log_name"], min_frequency=min_frequency
    )


def _changed_nodes(old: DependencyGraph, new: DependencyGraph) -> set[str]:
    """Nodes of *new* whose local structure differs from *old*.

    A node is changed when it is new, its frequency moved, or any
    incident real edge appeared, disappeared or changed weight.
    Artificial edges carry the node's own frequency on both ends, so the
    frequency check covers them.  A node *removed* by the append (its
    frequency fell below ``min_frequency``) marks its old neighbours
    through the edge differences.
    """
    old_nodes, new_nodes = set(old.nodes), set(new.nodes)
    changed = new_nodes - old_nodes
    for node in old_nodes & new_nodes:
        if old.frequency(node) != new.frequency(node):
            changed.add(node)
    old_edges, new_edges = old.real_edges, new.real_edges
    for edge in set(old_edges).symmetric_difference(new_edges):
        changed.update(edge)
    for edge in set(old_edges) & set(new_edges):
        if old_edges[edge] != new_edges[edge]:
            changed.update(edge)
    return changed & new_nodes


def _dirty_mask(graph: DependencyGraph, changed: set[str], closure) -> np.ndarray:
    """Boolean dirty flags over ``graph.nodes``: changed plus closure.

    *closure* is ``real_descendants`` for the forward direction (a
    pair's value depends on its predecessors, so changes flow downstream)
    and ``real_ancestors`` for the backward one (which runs on reversed
    graphs).
    """
    if changed:
        dirty = set(changed) | closure(graph, changed)
    else:
        dirty = set()
    return np.array([node in dirty for node in graph.nodes], dtype=bool)


def _mapped_values(
    stored: np.ndarray,
    old_rows: tuple[str, ...],
    old_cols: tuple[str, ...],
    new_rows: tuple[str, ...],
    new_cols: tuple[str, ...],
    dtype: Any,
) -> np.ndarray:
    """Stored similarity values re-indexed onto the new node grids.

    Pairs without a stored value (a node the append introduced) are left
    at zero — they are necessarily dirty and re-iterate from scratch.
    """
    values = np.zeros((len(new_rows), len(new_cols)), dtype=dtype)
    row_pos = {node: i for i, node in enumerate(old_rows)}
    col_pos = {node: j for j, node in enumerate(old_cols)}
    rows_new = [i for i, node in enumerate(new_rows) if node in row_pos]
    rows_old = [row_pos[node] for node in new_rows if node in row_pos]
    cols_new = [j for j, node in enumerate(new_cols) if node in col_pos]
    cols_old = [col_pos[node] for node in new_cols if node in col_pos]
    if rows_new and cols_new:
        values[np.ix_(rows_new, cols_new)] = stored[
            np.ix_(rows_old, cols_old)
        ].astype(dtype)
    return values

