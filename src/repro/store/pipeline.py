"""Ingestion orchestration: store lookup → append → sharded → streamed.

:func:`ingest_statistics` is the out-of-core front door.  For one input
file it produces the exact :class:`~repro.logs.stats.LogStatistics` the
batch path (``read_csv``/``read_xes`` + ``compute_statistics``) would,
choosing the cheapest sound route:

1. **store hit** — the file's content digest matches a persisted counts
   row: no parsing, no counting;
2. **append fast path** (CSV, with a store) — the file grew but its old
   prefix is byte-identical to what was ingested before: only the tail
   is parsed, and its counts are merged into the stored ones.  Sound
   only when the tail's cases are disjoint from the stored case-digest
   set — otherwise a case's rows would be split across two parses — so
   any overlap falls back to a cold full parse;
3. **sharded** (``shard_traces`` set) — the trace stream is spilled into
   bounded blocks and counted per block, optionally across the
   supervised worker pool; peak memory is O(shard);
4. **streamed** — the trace stream feeds one accumulator directly;
   still never materializes an :class:`~repro.logs.log.EventLog`.

Every route ends in the same integer counts, so the emitted statistics
(and any graph built from them) are bit-identical across routes — the
property the differential and Hypothesis suites pin.

The result records which route ran (``mode``) so callers — the CLI, the
benchmarks — can assert they exercised the path they meant to.
"""

from __future__ import annotations

import io
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.graph.dependency import DependencyGraph
from repro.logs.csvio import _read_rows
from repro.logs.stats import LogStatistics
from repro.logs.streaming import OnlineStatistics
from repro.obs import NULL_OBSERVER, Observer, get_logger
from repro.runtime.report import IngestionReport
from repro.runtime.supervise import RetryPolicy
from repro.store.logstore import (
    LogStore,
    case_digest,
    counts_content_key,
    file_digest,
    graph_content_key,
    ingest_key,
)
from repro.store.sharding import (
    resolve_format,
    shard_statistics,
    spill_blocks,
    stream_traces,
)

_logger = get_logger(__name__)


@dataclass(frozen=True, slots=True)
class IngestResult:
    """What one ingestion produced and how.

    ``mode`` is ``"store"`` (counts served entirely from the store),
    ``"store-append"`` (stored prefix counts + freshly parsed tail),
    ``"sharded"`` (spilled blocks, per-shard counting) or ``"streamed"``
    (single-pass accumulation).  ``shards`` is the number of blocks
    counted (0 unless sharded); ``counts_key`` the store key used, when
    a store was attached.
    """

    statistics: LogStatistics
    log_name: str
    mode: str
    shards: int = 0
    counts_key: str | None = None


class _NameSink:
    __slots__ = ("value",)

    def __init__(self, default: str):
        self.value = default

    def __call__(self, value: str) -> None:
        self.value = value


def _counts_record(
    stats: OnlineStatistics, digests: frozenset[bytes], log_name: str
) -> dict[str, Any]:
    return {
        "trace_count": stats.trace_count,
        "activity_counts": dict(stats.activity_counts),
        "pair_counts": dict(stats.pair_counts),
        "case_digests": digests,
        "log_name": log_name,
    }


def _seed_from_record(record: dict[str, Any]) -> OnlineStatistics:
    stats = OnlineStatistics()
    stats.seed_counts(
        record["trace_count"], record["activity_counts"], record["pair_counts"]
    )
    return stats


def _digesting(
    traces: Iterator[tuple[str | None, tuple[str, ...]]],
    sink: set[bytes],
) -> Iterator[tuple[str | None, tuple[str, ...]]]:
    for case_id, activities in traces:
        sink.add(case_digest(case_id))
        yield case_id, activities


def _csv_header(path: str | os.PathLike[str]) -> str | None:
    """The raw first line (terminator included), or ``None`` when the
    file does not end in a newline — an append could then continue the
    final row mid-field, so the append bookkeeping is skipped."""
    with open(path, "rb") as handle:
        header = handle.readline()
        if not header.endswith(b"\n"):
            return None
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) != b"\n":
            return None
    try:
        return header.decode("utf-8")
    except UnicodeDecodeError:
        return None


def ingest_statistics(
    source: str | os.PathLike[str],
    fmt: str = "auto",
    on_error: str = "raise",
    report: IngestionReport | None = None,
    *,
    shard_traces: int | None = None,
    workers: int = 0,
    store: LogStore | None = None,
    policy: RetryPolicy | None = None,
    task_timeout: float | None = None,
    observer: Observer | None = None,
) -> IngestResult:
    """Statistics of the log at *source*, by the cheapest sound route.

    See the module docstring for route selection.  ``shard_traces`` is
    the traces-per-block bound of the sharded route; ``workers > 1``
    fans block counting across the supervised pool.  Note that a
    store-served result skips parsing entirely, so *report* then
    reflects only what was actually parsed (nothing on a full hit, the
    tail on an append).
    """
    observer = observer if observer is not None else NULL_OBSERVER
    fmt = resolve_format(source, fmt)
    if report is None:
        report = IngestionReport(mode=on_error)
    if not report.source:
        report.source = os.fspath(source)

    counts_key: str | None = None
    if store is not None:
        content = file_digest(source)
        counts_key = counts_content_key(content, fmt, on_error)
        record = store.get_counts(counts_key)
        if record is not None:
            stats = _seed_from_record(record)
            return IngestResult(
                statistics=stats.snapshot(),
                log_name=record["log_name"],
                mode="store",
                counts_key=counts_key,
            )
        appended = None
        if fmt == "csv":
            appended = _try_append(
                source, on_error, report, store, counts_key, content, observer
            )
        if appended is not None:
            return appended

    digests: set[bytes] = set()
    name_sink = _NameSink(Path(source).stem)
    mode = "streamed"
    shards = 0
    with tempfile.TemporaryDirectory(prefix="repro-ingest-") as scratch:
        scratch_dir = Path(scratch)
        traces = stream_traces(
            source, fmt, on_error, report,
            spill_dir=scratch_dir / "partitions",
            name_sink=name_sink,
        )
        if store is not None:
            traces = _digesting(traces, digests)
        if shard_traces is not None:
            if shard_traces < 1:
                raise ValueError(f"shard_traces must be >= 1, got {shard_traces}")
            with observer.span("ingest.spill", source=os.fspath(source)):
                blocks = spill_blocks(
                    traces, scratch_dir / "blocks", block_traces=shard_traces
                )
            shards = len(blocks)
            stats = shard_statistics(
                blocks, workers=workers, policy=policy,
                task_timeout=task_timeout, observer=observer,
            )
            mode = "sharded"
        else:
            stats = OnlineStatistics()
            with observer.span("ingest.stream", source=os.fspath(source)):
                for _, activities in traces:
                    stats.add_sequence(activities)

    if store is not None and counts_key is not None:
        store.put_counts(
            counts_key, _counts_record(stats, frozenset(digests), name_sink.value)
        )
        if fmt == "csv":
            header = _csv_header(source)
            if header is not None:
                store.put_ingest(
                    ingest_key(source, fmt, on_error),
                    os.path.getsize(source),
                    content,
                    header,
                    counts_key,
                )
    return IngestResult(
        statistics=stats.snapshot(),
        log_name=name_sink.value,
        mode=mode,
        shards=shards,
        counts_key=counts_key,
    )


def _try_append(
    source: str | os.PathLike[str],
    on_error: str,
    report: IngestionReport,
    store: LogStore,
    counts_key: str,
    content: str,
    observer: Observer,
) -> IngestResult | None:
    """The CSV append fast path, or ``None`` when it cannot apply.

    Every check errs toward the cold path: a shrunk or rewritten
    prefix, a prior row whose counts were evicted, a tail that is not
    valid UTF-8, or tail cases overlapping the stored case set all
    return ``None`` — the caller then parses everything from scratch.
    """
    key = ingest_key(source, "csv", on_error)
    prior = store.get_ingest(key)
    if prior is None:
        return None
    size = os.path.getsize(source)
    if size <= prior["byte_count"]:
        return None
    if file_digest(source, limit=prior["byte_count"]) != prior["prefix_digest"]:
        return None
    record = store.get_counts(prior["counts_key"])
    if record is None:
        return None
    with open(source, "rb") as handle:
        handle.seek(prior["byte_count"])
        tail_bytes = handle.read()
    try:
        tail_text = tail_bytes.decode("utf-8")
    except UnicodeDecodeError:
        return None

    with observer.span("ingest.append", source=os.fspath(source)):
        tail_log = _read_rows(
            io.StringIO(prior["header"] + tail_text),
            Path(source).stem, on_error, report,
        )
        stored_digests: frozenset[bytes] = record["case_digests"]
        tail_digests = {case_digest(trace.case_id) for trace in tail_log}
        if tail_digests & stored_digests:
            _logger.info(
                "append fast path for %s declined: tail cases overlap the "
                "stored prefix; re-parsing in full", os.fspath(source),
            )
            return None
        tail_stats = OnlineStatistics()
        tail_stats.add_log(tail_log)
        total = _seed_from_record(record)
        tail_stats.merge_into(total)

    store.put_counts(
        counts_key,
        _counts_record(
            total, stored_digests | tail_digests, record["log_name"]
        ),
    )
    store.put_ingest(key, size, content, prior["header"], counts_key)
    return IngestResult(
        statistics=total.snapshot(),
        log_name=record["log_name"],
        mode="store-append",
        counts_key=counts_key,
    )


def ingest_graph(
    source: str | os.PathLike[str],
    fmt: str = "auto",
    on_error: str = "raise",
    report: IngestionReport | None = None,
    *,
    min_frequency: float = 0.0,
    shard_traces: int | None = None,
    workers: int = 0,
    store: LogStore | None = None,
    policy: RetryPolicy | None = None,
    task_timeout: float | None = None,
    observer: Observer | None = None,
) -> tuple[DependencyGraph, IngestResult]:
    """The dependency graph of the log at *source*, store-accelerated.

    Statistics come from :func:`ingest_statistics`; the derived graph is
    additionally memoized per ``min_frequency`` in the store's graph
    table, so repeated matchings skip even the graph construction.
    """
    observer = observer if observer is not None else NULL_OBSERVER
    result = ingest_statistics(
        source, fmt, on_error, report,
        shard_traces=shard_traces, workers=workers, store=store,
        policy=policy, task_timeout=task_timeout, observer=observer,
    )
    graph_key = None
    if store is not None and result.counts_key is not None:
        graph_key = graph_content_key(result.counts_key, min_frequency)
        graph = store.get_graph(graph_key)
        if graph is not None:
            return graph, result
    with observer.span("graph.build", source=os.fspath(source)):
        graph = DependencyGraph.from_statistics(
            result.statistics, name=result.log_name, min_frequency=min_frequency
        )
    if store is not None and graph_key is not None:
        store.put_graph(graph_key, graph)
    return graph, result
