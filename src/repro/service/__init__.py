"""Matching-as-a-service: the long-running ``repro serve`` daemon.

One :class:`MatchingService` owns a store directory and serves matching
jobs continuously — submitted over HTTP (``POST /jobs``) or by dropping
spec files into a watch folder — through a persistent SQLite job queue
with content-hash dedup, checkpoint-backed crash recovery, and a
JSON/REST + Prometheus ``/metrics`` API.  See ``docs/service.md``.
"""

from repro.exceptions import JobSpecError, ServiceError
from repro.service.jobs import (
    STATE_DEAD,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    STATES,
    job_content_key,
    job_id_from_key,
    validate_spec,
)
from repro.service.queue import JobQueue, JobRecord
from repro.service.scheduler import JobScheduler
from repro.service.server import READY_FILE, MatchingService
from repro.service.watcher import FolderWatcher

__all__ = [
    "FolderWatcher",
    "JobQueue",
    "JobRecord",
    "JobScheduler",
    "JobSpecError",
    "MatchingService",
    "READY_FILE",
    "STATES",
    "STATE_DEAD",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "ServiceError",
    "job_content_key",
    "job_id_from_key",
    "validate_spec",
]
