"""Job specifications: validation, normalization, content identity.

A *job* asks the daemon to match one pair of serialized event logs.  Its
specification is a flat JSON object mirroring the ``repro match`` flags
the service supports; :func:`validate_spec` normalizes a submission into
the canonical dict stored in the queue (defaults filled in, unknown
fields rejected loudly — a typo'd knob must not silently select a
default), and :func:`job_content_key` derives the job's identity.

Identity is *content*-addressed, not path-addressed: the key hashes the
two input files' content digests (:func:`repro.store.logstore.file_digest`,
the same digests the match store keys on) together with every knob that
can change the result.  Re-submitting the same pair under different
paths — or the same path after a daemon restart — therefore dedups to
the existing job, which is what makes ``POST /jobs`` idempotent.  The
fault plan (a testing aid) is deliberately excluded from the key: a
fault changes *how* a run fails, never what the converged result is,
and the kill-and-restart path depends on the resumed attempt keeping
the first attempt's identity.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.exceptions import JobSpecError
from repro.store.logstore import file_digest

#: Job states, in lifecycle order (see ``docs/service.md``).
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_DEAD = "dead"
STATES = (STATE_QUEUED, STATE_RUNNING, STATE_DONE, STATE_FAILED, STATE_DEAD)

#: Field name -> (expected types, default).  ``...`` marks a required
#: field.  The two path fields are listed first for error messages but
#: are excluded from the content key (their *digests* stand in).
_SPEC_FIELDS: dict[str, tuple[tuple[type, ...], Any]] = {
    "log_first": ((str,), ...),
    "log_second": ((str,), ...),
    "format": ((str,), "auto"),
    "on_error": ((str,), "raise"),
    "composite": ((bool,), False),
    "labels": ((bool,), False),
    "alpha": ((int, float, type(None)), None),
    "threshold": ((int, float), 0.0),
    "delta": ((int, float), 0.01),
    "estimate": ((int, type(None)), None),
    "timeout": ((int, float, type(None)), None),
    "pair_budget": ((int, type(None)), None),
    "workers": ((int,), 0),
    "fault_plan": ((dict, type(None)), None),
}

_CHOICES = {
    "format": ("auto", "xes", "csv"),
    "on_error": ("raise", "skip", "repair"),
}


def validate_spec(submission: Any) -> dict[str, Any]:
    """The canonical spec dict of one submission, or :class:`JobSpecError`.

    Normalization fills every optional field with its default, so two
    submissions that *mean* the same job serialize — and hash — the
    same.  The input files must exist and be readable at submission
    time: the content key needs their digests, and rejecting a missing
    file here (HTTP 400 + dead letter) beats a queued job that can only
    fail later.
    """
    if not isinstance(submission, dict):
        raise JobSpecError(
            f"a job spec must be a JSON object, got {type(submission).__name__}"
        )
    unknown = sorted(set(submission) - set(_SPEC_FIELDS))
    if unknown:
        raise JobSpecError(
            f"unknown job spec field(s): {', '.join(unknown)}",
            field=unknown[0],
        )
    spec: dict[str, Any] = {}
    for name, (types, default) in _SPEC_FIELDS.items():
        if name in submission:
            value = submission[name]
            # bool is an int subclass; an int field must not accept True.
            if isinstance(value, bool) and bool not in types:
                raise JobSpecError(
                    f"job spec field {name!r} must not be a boolean", field=name
                )
            if not isinstance(value, types):
                raise JobSpecError(
                    f"job spec field {name!r} has type "
                    f"{type(value).__name__}, expected "
                    f"{'/'.join(t.__name__ for t in types)}",
                    field=name,
                )
        elif default is ...:
            raise JobSpecError(
                f"job spec is missing required field {name!r}", field=name
            )
        else:
            value = default
        spec[name] = value
    for name, choices in _CHOICES.items():
        if spec[name] not in choices:
            raise JobSpecError(
                f"job spec field {name!r} must be one of {choices}, "
                f"got {spec[name]!r}",
                field=name,
            )
    if spec["workers"] < 0:
        raise JobSpecError("job spec field 'workers' must be >= 0", field="workers")
    for name in ("log_first", "log_second"):
        path = Path(spec[name])
        if not path.is_file():
            raise JobSpecError(
                f"job spec field {name!r}: no such file: {spec[name]!r}",
                field=name,
            )
    return spec


def job_content_key(spec: dict[str, Any]) -> str:
    """Content identity of a validated spec (hex SHA-256).

    The file paths are replaced by their content digests, and the fault
    plan is dropped — see the module docstring for why.
    """
    canonical = {
        name: value
        for name, value in sorted(spec.items())
        if name not in ("log_first", "log_second", "fault_plan")
    }
    digests = [file_digest(spec["log_first"]), file_digest(spec["log_second"])]
    return hashlib.sha256(
        json.dumps([digests, canonical], sort_keys=True,
                   separators=(",", ":"), default=repr).encode()
    ).hexdigest()


def job_id_from_key(content_key: str) -> str:
    """The short public job id (the key's 16-hex-char prefix)."""
    return content_key[:16]
