"""Async job scheduler: worker threads draining the persistent queue.

Each worker thread loops claim -> run -> settle.  Running a job mirrors
the CLI paths exactly — the singleton route goes through
:func:`repro.store.pipeline.match_stored` (warm matrix reuse), the
composite route through :class:`repro.matchers.EMSCompositeMatcher`
with the daemon's checkpoint directory — so a job's result is
bit-identical to the same invocation on the command line.

Settlement policy (see ``docs/service.md``):

* a :class:`~repro.exceptions.ReproError` is a *deterministic input
  problem*: the job moves to ``failed`` and its spec is dead-lettered
  with provenance — retrying the same bytes cannot succeed;
* any other exception is treated as transient: the job is re-queued
  until its attempt budget runs out, then moves to ``dead`` (poison
  job) and is dead-lettered;
* an *interrupted* partial result (daemon shutdown, or the scripted
  ``search.round``/``interrupt`` fault) leaves the job ``running`` on
  purpose: :meth:`~repro.service.queue.JobQueue.recover` re-queues it at
  the next startup and the re-run resumes from the flushed checkpoint.

A job's inline fault plan is armed only on its **first** attempt —
faults exist to test the recovery path, and recovery must see the run
behave normally.  Fault plans are excluded from the checkpoint content
key, so the resumed attempt finds the interrupted attempt's snapshot.

Threads never share a :class:`~repro.store.matchstore.MatchStore`
object: each worker owns one handle on the shared database file (the
WAL discipline coordinates them), because the store's event-row staging
spans multiple calls during an ingest.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any

from repro.core.config import EMSConfig
from repro.exceptions import ReproError
from repro.matchers import EMSCompositeMatcher, EMSMatcher
from repro.obs import NULL_OBSERVER, Observer, get_logger
from repro.runtime import (
    CheckpointManager,
    DeadLetterArchive,
    DegradationPolicy,
    FaultPlan,
    InterruptGuard,
    MatchBudget,
)
from repro.service.queue import JobQueue, JobRecord
from repro.similarity.labels import QGramCosineSimilarity
from repro.store import MatchStore, match_stored

_logger = get_logger(__name__)


def build_matcher_inputs(spec: dict[str, Any]):
    """(config, label_similarity, budget, degradation) of one job spec.

    Must mirror ``repro.cli._match_setup`` knob for knob — the service's
    acceptance bar is a result bitwise-identical to the CLI path.
    """
    label_similarity = QGramCosineSimilarity() if spec["labels"] else None
    alpha = spec["alpha"]
    if alpha is None:
        alpha = 0.5 if spec["labels"] else 1.0
    config = EMSConfig(
        alpha=alpha,
        estimation_iterations=spec["estimate"],
    )
    budget = None
    if spec["timeout"] is not None or spec["pair_budget"] is not None:
        budget = MatchBudget(
            deadline=spec["timeout"], max_pair_updates=spec["pair_budget"]
        )
    return config, label_similarity, budget, DegradationPolicy()


class JobScheduler:
    """N worker threads executing jobs from a :class:`JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        store_dir: str | Path,
        archive: DeadLetterArchive,
        observer: Observer | None = None,
        workers: int = 1,
        max_attempts: int = 3,
        poll_interval: float = 0.1,
    ):
        if workers < 1:
            raise ValueError(f"scheduler workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.queue = queue
        self.store_dir = Path(store_dir)
        self.archive = archive
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.workers = workers
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._threads: list[threading.Thread] = []
        #: Inert interrupt guards of the jobs currently running, tripped
        #: together at shutdown so every in-flight search unwinds through
        #: its checkpoint flush.
        self._active_guards: dict[str, InterruptGuard] = {}
        self._guards_lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-scheduler-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 30.0) -> None:
        """Trip every in-flight job, then join the worker threads.

        Interrupted composite jobs flush a final checkpoint and stay
        ``running`` in the queue; the next startup resumes them.
        """
        self._stop.set()
        self._wake.set()
        with self._guards_lock:
            for guard in self._active_guards.values():
                guard.trip("shutdown")
        for thread in self._threads:
            thread.join(timeout=timeout)

    def notify(self) -> None:
        """Wake a sleeping worker (a job was just submitted)."""
        self._wake.set()

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        store: MatchStore | None = None
        try:
            while not self._stop.is_set():
                job = self.queue.claim()
                if job is None:
                    self._wake.wait(timeout=self.poll_interval)
                    self._wake.clear()
                    continue
                if store is None:
                    store = MatchStore(
                        self.store_dir / "match.db", observer=self.observer
                    )
                self._run_job(job, store)
        finally:
            if store is not None:
                store.close()

    def _run_job(self, job: JobRecord, store: MatchStore) -> None:
        started = time.monotonic()
        guard = InterruptGuard(signals=())
        with self._guards_lock:
            self._active_guards[job.id] = guard
        try:
            with self.observer.span(
                "service.job", id=job.id, attempt=job.attempts
            ):
                result, interrupted = self._execute(job, store, guard)
            if interrupted:
                # Parked as `running`: recover() re-queues it at the
                # next startup and the re-run resumes the checkpoint.
                _logger.warning(
                    "job %s interrupted mid-run; parked for restart resume",
                    job.id,
                )
                return
            self.queue.finish(job.id, result)
            self.observer.observe(
                "job_latency_seconds",
                time.monotonic() - started,
                help="wall-clock seconds from claim to settled result",
            )
        except ReproError as error:
            self._settle_failed(job, error, terminal=True)
        except Exception as error:  # noqa: BLE001 - routed to the queue
            self._settle_failed(job, error, terminal=False)
        finally:
            with self._guards_lock:
                self._active_guards.pop(job.id, None)

    def _settle_failed(
        self, job: JobRecord, error: BaseException, *, terminal: bool
    ) -> None:
        message = f"{type(error).__name__}: {error}"
        if terminal:
            _logger.warning("job %s failed on bad input: %s", job.id, message)
            self.queue.fail(job.id, message)
            self._dead_letter(job, message, "input-error")
        elif job.attempts >= self.max_attempts:
            _logger.warning(
                "job %s dead after %d attempt(s): %s",
                job.id, job.attempts, message,
            )
            self.queue.bury(job.id, message)
            self._dead_letter(job, message, "poison")
        else:
            _logger.warning(
                "job %s attempt %d failed transiently (%s); re-queued",
                job.id, job.attempts, message,
            )
            self.queue.requeue(job.id, message)
            self.notify()

    def _dead_letter(self, job: JobRecord, message: str, reason: str) -> None:
        self.archive.put(
            json.dumps(job.spec, sort_keys=True, indent=2).encode(),
            {
                "source": f"job:{job.id}",
                "problem": message,
                "mode": reason,
                "attempts": job.attempts,
                "submitted_via": job.source,
            },
        )

    # ------------------------------------------------------------------
    def _execute(
        self, job: JobRecord, store: MatchStore, guard: InterruptGuard
    ) -> tuple[dict[str, Any], bool]:
        """Run one job; returns (result payload, interrupted flag)."""
        spec = job.spec
        config, label_similarity, budget, degradation = build_matcher_inputs(spec)
        if spec["composite"]:
            outcome, provenance = self._execute_composite(
                job, config, label_similarity, budget, degradation, guard
            )
        else:
            matcher = EMSMatcher(
                config, label_similarity, threshold=spec["threshold"],
                budget=budget, degradation=degradation, observer=self.observer,
            )
            outcome, stored = match_stored(
                spec["log_first"], spec["log_second"],
                spec["format"], spec["on_error"],
                matcher=matcher, store=store, observer=self.observer,
            )
            provenance = {
                "match_mode": stored["match_mode"],
                "log_names": list(stored["log_names"]),
            }
        runtime = outcome.runtime
        interrupted = (
            runtime is not None
            and runtime.stage == "partial"
            and runtime.reason == "interrupted"
        )
        result = {
            "objective": outcome.objective,
            "correspondences": [
                {"left": sorted(c.left), "right": sorted(c.right)}
                for c in outcome.correspondences
            ],
            "diagnostics": dict(outcome.diagnostics),
            "runtime": runtime.to_dict() if runtime is not None else None,
            "provenance": provenance,
        }
        return result, interrupted

    def _execute_composite(
        self, job, config, label_similarity, budget, degradation, guard
    ):
        from repro.cli import load_log

        spec = job.spec
        faults = None
        if spec["fault_plan"] is not None and job.attempts <= 1:
            faults = FaultPlan.from_json(json.dumps(spec["fault_plan"]))
        checkpoints = CheckpointManager(
            self.store_dir / "checkpoints",
            observer=self.observer,
            faults=faults,
        )
        with self.observer.span("service.ingest", source=spec["log_first"]):
            log_first = load_log(
                spec["log_first"], spec["format"], spec["on_error"]
            )
        with self.observer.span("service.ingest", source=spec["log_second"]):
            log_second = load_log(
                spec["log_second"], spec["format"], spec["on_error"]
            )
        matcher = EMSCompositeMatcher(
            config, label_similarity,
            threshold=spec["threshold"], delta=spec["delta"],
            budget=budget, degradation=degradation,
            workers=spec["workers"], observer=self.observer,
            faults=faults, checkpoints=checkpoints,
            resume=True,  # cold start when no snapshot matches
            interrupt=guard,
        )
        outcome = matcher.match(log_first, log_second)
        return outcome, {
            "match_mode": "composite",
            "log_names": [log_first.name, log_second.name],
        }
