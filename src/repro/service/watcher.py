"""Watch-folder ingestion: drop a job-spec JSON file, get a job.

A stdlib-only polling watcher (no inotify dependency): every interval it
scans the watch directory for ``*.json`` files, validates each as a job
spec, submits it to the queue, and renames the file out of the way —
``<name>.json.accepted`` on success (with the job id recorded inside),
``<name>.json.rejected`` on a malformed spec, whose original bytes and
error context also land in the dead-letter archive.  The rename is what
makes the scan idempotent across polls and restarts: a file is acted on
exactly once, whatever happens to the daemon in between.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.exceptions import JobSpecError
from repro.obs import NULL_OBSERVER, Observer, get_logger
from repro.runtime import DeadLetterArchive
from repro.service.jobs import validate_spec
from repro.service.queue import JobQueue

_logger = get_logger(__name__)


class FolderWatcher:
    """Polls one directory for job-spec files and feeds the queue."""

    def __init__(
        self,
        directory: str | Path,
        queue: JobQueue,
        archive: DeadLetterArchive,
        observer: Observer | None = None,
        poll_interval: float = 0.5,
        on_submit=None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.queue = queue
        self.archive = archive
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.poll_interval = poll_interval
        self.on_submit = on_submit
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="repro-watcher", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    def scan_once(self) -> int:
        """One pass over the folder; returns how many files were acted on."""
        acted = 0
        for path in sorted(self.directory.glob("*.json")):
            if self._ingest(path):
                acted += 1
        return acted

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.scan_once()
            except Exception:  # noqa: BLE001 - the watcher must survive
                _logger.exception("watch-folder scan failed; retrying")
            self._stop.wait(timeout=self.poll_interval)

    def _ingest(self, path: Path) -> bool:
        with self.observer.span("service.ingest", source=str(path)):
            try:
                payload = path.read_bytes()
            except OSError:
                return False  # raced with a concurrent producer/cleanup
            try:
                spec = validate_spec(json.loads(payload.decode("utf-8")))
            except (ValueError, UnicodeDecodeError, JobSpecError) as error:
                self.observer.count(
                    "service_ingest_rejected_total",
                    help="watch-folder files rejected as malformed job specs",
                )
                self.archive.put(
                    payload,
                    {"source": str(path), "problem": str(error), "mode": "watch"},
                )
                self._retire(path, ".rejected", {"error": str(error)})
                _logger.warning(
                    "rejected watch-folder submission %s: %s", path.name, error
                )
                return True
            record, created = self.queue.submit(spec, source="watch")
            self._retire(
                path, ".accepted", {"job": record.id, "created": created}
            )
            if created and self.on_submit is not None:
                self.on_submit()
            _logger.info(
                "watch-folder submission %s -> job %s (%s)",
                path.name, record.id, "created" if created else "deduped",
            )
            return True

    @staticmethod
    def _retire(path: Path, suffix: str, receipt: dict) -> None:
        target = path.with_name(path.name + suffix)
        try:
            target.write_text(json.dumps(receipt, indent=2) + "\n")
            path.unlink()
        except OSError:  # pragma: no cover - best effort
            pass
