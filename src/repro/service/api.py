"""The daemon's JSON/REST surface (stdlib ``http.server``).

Routes
------
``POST /jobs``
    Submit a job spec (JSON body).  201 with the job document when a new
    job was created, 200 when the content-hash dedup answered with an
    existing job (the ``deduped`` field tells them apart), 400 with the
    problem — and a dead-letter entry — for malformed submissions.
``GET /jobs``
    Every job, oldest first.
``GET /jobs/{id}``
    One job's status document.
``GET /jobs/{id}/result``
    The result payload of a ``done`` job; 409 with the current state
    while it is still pending, 404 for unknown ids.
``GET /healthz``
    Liveness: ``{"status": "ok", "queue_depth": N, ...}``.
``GET /metrics``
    Prometheus text exposition (:data:`repro.obs.PROMETHEUS_CONTENT_TYPE`).
``GET /deadletters``
    Digest + context of every archived rejection, for offline triage.

The handler holds no state of its own — it reads everything through the
:class:`~repro.service.server.MatchingService` facade passed in at
class-creation time, and the queue's internal lock makes each request
a consistent snapshot.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler
from typing import Any

from repro.exceptions import JobSpecError
from repro.obs import PROMETHEUS_CONTENT_TYPE, get_logger
from repro.service.jobs import STATE_DONE, validate_spec

_logger = get_logger(__name__)

_JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Request bodies beyond this size are rejected outright (a job spec is
#: a handful of paths and knobs; anything larger is not a job spec).
_MAX_BODY_BYTES = 1 << 20


def make_handler(service) -> type[BaseHTTPRequestHandler]:
    """A request-handler class bound to one service instance."""

    class ServiceAPIHandler(BaseHTTPRequestHandler):
        # Keep connections simple and short-lived; the interesting
        # concurrency lives in the scheduler, not the socket layer.
        protocol_version = "HTTP/1.1"

        # ------------------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            try:
                self._route_get()
            except Exception:  # noqa: BLE001 - a handler must not die
                _logger.exception("GET %s failed", self.path)
                self._send_json(500, {"error": "internal error"})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            try:
                self._route_post()
            except Exception:  # noqa: BLE001 - a handler must not die
                _logger.exception("POST %s failed", self.path)
                self._send_json(500, {"error": "internal error"})

        # ------------------------------------------------------------------
        def _route_get(self) -> None:
            service.observer.count(
                "service_requests_total", help="HTTP requests served"
            )
            path = self.path.rstrip("/") or "/"
            if path == "/healthz":
                self._send_json(200, service.health())
            elif path == "/metrics":
                self._send_text(
                    200,
                    service.observer.metrics.to_prometheus_text(),
                    PROMETHEUS_CONTENT_TYPE,
                )
            elif path == "/jobs":
                self._send_json(
                    200,
                    {"jobs": [job.to_dict() for job in service.queue.jobs()]},
                )
            elif path == "/deadletters":
                self._send_json(200, {"deadletters": service.dead_letters()})
            elif path.startswith("/jobs/"):
                self._route_job(path.removeprefix("/jobs/"))
            else:
                self._send_json(404, {"error": f"no such route: {self.path}"})

        def _route_job(self, rest: str) -> None:
            job_id, _, tail = rest.partition("/")
            job = service.queue.get(job_id)
            if job is None or tail not in ("", "result"):
                self._send_json(404, {"error": f"no such job: {rest!r}"})
            elif tail == "":
                self._send_json(200, job.to_dict())
            elif job.state != STATE_DONE:
                self._send_json(
                    409,
                    {
                        "error": f"job {job.id} is {job.state}, not done",
                        "state": job.state,
                    },
                )
            else:
                self._send_json(200, {"id": job.id, "result": job.result})

        def _route_post(self) -> None:
            service.observer.count(
                "service_requests_total", help="HTTP requests served"
            )
            if self.path.rstrip("/") != "/jobs":
                self._send_json(404, {"error": f"no such route: {self.path}"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0 or length > _MAX_BODY_BYTES:
                self._send_json(
                    400, {"error": f"request body must be 1..{_MAX_BODY_BYTES} bytes"}
                )
                return
            payload = self.rfile.read(length)
            try:
                spec = validate_spec(json.loads(payload.decode("utf-8")))
            except (ValueError, UnicodeDecodeError, JobSpecError) as error:
                service.reject_submission(payload, str(error))
                self._send_json(400, {"error": str(error)})
                return
            record, created = service.submit(spec)
            document = record.to_dict()
            document["deduped"] = not created
            self._send_json(201 if created else 200, document)

        # ------------------------------------------------------------------
        def _send_json(self, status: int, document: dict[str, Any]) -> None:
            self._send_text(
                status,
                json.dumps(document, indent=2, sort_keys=True) + "\n",
                _JSON_CONTENT_TYPE,
            )

        def _send_text(self, status: int, text: str, content_type: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args: Any) -> None:
            # Route access logs through the library logger instead of
            # stderr; --log-level decides whether they surface.
            _logger.debug("%s - %s", self.address_string(), format % args)

    return ServiceAPIHandler
