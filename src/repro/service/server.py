"""The long-running matching daemon: ``repro serve``.

:class:`MatchingService` wires the pieces together around one *store
directory*, the daemon's single durable root:

* ``jobs.db`` — the persistent job queue (:class:`JobQueue`);
* ``match.db`` — the shared :class:`~repro.store.matchstore.MatchStore`
  the scheduler threads answer warm matches from;
* ``checkpoints/`` — composite-search snapshots, which is what lets an
  interrupted job resume bit-identically after a restart;
* ``deadletters/`` — malformed submissions and poison jobs, with
  provenance;
* ``service.json`` — the *ready file*, written after the socket is
  bound: ``{"host", "port", "pid"}``.  Binding to port 0 picks an
  ephemeral port, and the ready file is how tests and scripts discover
  it without racing the daemon's stdout.

Startup order matters: recover (re-queue ``running`` jobs from the
previous life), then schedulers, then the watcher, then HTTP — by the
time a request can arrive, the machinery behind it is live.  Shutdown
is the reverse, and in-flight composite jobs are tripped so they flush
a final checkpoint and stay ``running`` for the next life to resume.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from http.server import ThreadingHTTPServer
from pathlib import Path

from repro.exceptions import ServiceError
from repro.obs import MetricsRegistry, Observer, get_logger
from repro.runtime import DeadLetterArchive
from repro.service.api import make_handler
from repro.service.jobs import validate_spec
from repro.service.queue import JobQueue
from repro.service.scheduler import JobScheduler
from repro.service.watcher import FolderWatcher

_logger = get_logger(__name__)

#: Name of the ready file inside the store directory.
READY_FILE = "service.json"


class MatchingService:
    """One daemon instance: queue + scheduler + watcher + HTTP API."""

    def __init__(
        self,
        store_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        watch_dir: str | Path | None = None,
        observer: Observer | None = None,
        max_attempts: int = 3,
        poll_interval: float = 0.1,
    ):
        self.store_dir = Path(store_dir)
        try:
            self.store_dir.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ServiceError(
                f"cannot create store directory {store_dir!r}: {error}"
            ) from error
        # The daemon always carries a metrics registry — /metrics is
        # part of its contract — plus whatever tracer the caller wired.
        if observer is None:
            observer = Observer(metrics=MetricsRegistry())
        elif observer.metrics is None:
            observer = Observer(tracer=observer.tracer, metrics=MetricsRegistry())
        self.observer = observer
        self.queue = JobQueue(self.store_dir / "jobs.db", observer=observer)
        self.archive = DeadLetterArchive(
            self.store_dir / "deadletters", observer=observer
        )
        self.scheduler = JobScheduler(
            self.queue, self.store_dir, self.archive, observer=observer,
            workers=workers, max_attempts=max_attempts,
            poll_interval=poll_interval,
        )
        self.watcher = (
            FolderWatcher(
                watch_dir, self.queue, self.archive, observer=observer,
                poll_interval=max(poll_interval, 0.2),
                on_submit=self.scheduler.notify,
            )
            if watch_dir is not None
            else None
        )
        try:
            self._http = ThreadingHTTPServer(
                (host, port), make_handler(self)
            )
        except OSError as error:
            raise ServiceError(f"cannot bind {host}:{port}: {error}") from error
        self._http.daemon_threads = True
        self._http_thread: threading.Thread | None = None
        self._stopped = threading.Event()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    # ------------------------------------------------------------------
    # API-facing operations (called by the handler)
    # ------------------------------------------------------------------
    def submit(self, spec, source: str = "http") -> tuple:
        """Validate, normalize and enqueue one submission (idempotent).

        Validation here (again, for callers that already validated) keeps
        embedding users honest: the queue only ever stores canonical
        specs, whichever door a submission came through.
        """
        record, created = self.queue.submit(validate_spec(spec), source=source)
        if created:
            self.scheduler.notify()
        return record, created

    def reject_submission(self, payload: bytes, problem: str) -> str:
        """Dead-letter a malformed HTTP submission; returns its digest."""
        self.observer.count(
            "service_ingest_rejected_total",
            help="submissions rejected as malformed job specs",
        )
        return self.archive.put(
            payload, {"source": "http:/jobs", "problem": problem, "mode": "http"}
        )

    def health(self) -> dict:
        return {
            "status": "ok",
            "queue_depth": self.queue.depth(),
            "workers": self.scheduler.workers,
            "store_dir": str(self.store_dir),
        }

    def dead_letters(self) -> list[dict]:
        entries = []
        for digest in self.archive.entries():
            try:
                _, context = self.archive.load(digest)
            except (KeyError, ValueError):  # pragma: no cover - racing cleanup
                continue
            entries.append(context)
        return entries

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        recovered = self.queue.recover()
        if recovered:
            self.observer.count(
                "jobs_recovered_total",
                amount=float(recovered),
                help="running jobs re-queued for checkpoint resume at startup",
            )
        self.scheduler.start()
        if self.watcher is not None:
            self.watcher.start()
        self._http_thread = threading.Thread(
            target=self._http.serve_forever, name="repro-http", daemon=True
        )
        self._http_thread.start()
        ready = {"host": self.host, "port": self.port, "pid": os.getpid()}
        (self.store_dir / READY_FILE).write_text(json.dumps(ready) + "\n")
        _logger.info("matching service listening on %s:%d", self.host, self.port)

    def stop(self) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self.watcher is not None:
            self.watcher.stop()
        self._http.shutdown()
        self._http.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
        self.scheduler.stop()
        self.queue.close()
        try:
            (self.store_dir / READY_FILE).unlink()
        except OSError:
            pass

    def run_until_signal(self) -> None:
        """Serve until SIGTERM/SIGINT, then shut down gracefully."""
        stop_requested = threading.Event()

        def handler(signum, frame):
            _logger.warning(
                "%s received; shutting down (in-flight jobs flush a "
                "checkpoint and resume on the next start)",
                signal.Signals(signum).name,
            )
            stop_requested.set()

        previous = {
            signum: signal.signal(signum, handler)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            self.start()
            stop_requested.wait()
        finally:
            self.stop()
            for signum, old in previous.items():
                signal.signal(signum, old)
