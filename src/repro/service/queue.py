"""The persistent SQLite job queue behind the matching daemon.

One ``jobs.db`` beside the match store, following the same connection
discipline as :mod:`repro.store.logstore`: WAL journaling plus a busy
timeout so a second process can inspect the table while the daemon
writes it, ``check_same_thread=False`` plus a re-entrant lock so the
HTTP threads and the scheduler threads share one queue object safely.

States move ``queued -> running -> done | failed | dead``:

* ``done`` — the job produced a result (stored as JSON in the row);
* ``failed`` — a *deterministic* input problem (unparseable log, bad
  spec knobs at run time): retrying cannot help, the job terminates and
  its spec is dead-lettered;
* ``dead`` — a job that kept failing for non-input reasons until its
  attempt budget ran out (poison job), likewise dead-lettered;
* a job interrupted mid-run (daemon shutdown) deliberately *stays*
  ``running`` — :meth:`JobQueue.recover` re-queues all ``running`` rows
  at startup, which is how a restart resumes in-flight work from its
  checkpoint.

All lifecycle counters (``jobs_submitted_total``, ``jobs_deduped_total``,
``jobs_completed_total``, ``jobs_failed_total``, ``jobs_dead_total``) and
the ``queue_depth`` gauge are maintained here, inside the lock, so the
numbers on ``/metrics`` are consistent with the table at every instant.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import ServiceError
from repro.obs import NULL_OBSERVER, Observer, get_logger
from repro.service.jobs import (
    STATE_DEAD,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    job_content_key,
    job_id_from_key,
)

_logger = get_logger(__name__)


@dataclass(frozen=True, slots=True)
class JobRecord:
    """One row of the job table, decoded."""

    id: str
    content_key: str
    spec: dict[str, Any]
    state: str
    attempts: int
    source: str
    submitted: float
    updated: float
    result: dict[str, Any] | None
    error: str | None

    def to_dict(self) -> dict[str, Any]:
        """The JSON shape ``GET /jobs/{id}`` answers with."""
        return {
            "id": self.id,
            "state": self.state,
            "attempts": self.attempts,
            "source": self.source,
            "submitted": self.submitted,
            "updated": self.updated,
            "spec": self.spec,
            "error": self.error,
        }


class JobQueue:
    """Persistent job table with idempotent submission and atomic claims."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        observer: Observer | None = None,
    ):
        self.path = Path(path)
        self.observer = observer if observer is not None else NULL_OBSERVER
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ServiceError(f"cannot create queue directory: {error}") from error
        self._lock = threading.RLock()
        try:
            self._connection = sqlite3.connect(
                self.path, check_same_thread=False
            )
            self._connection.execute("PRAGMA busy_timeout = 5000")
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS jobs ("
                "  id TEXT PRIMARY KEY,"
                "  content_key TEXT NOT NULL UNIQUE,"
                "  spec TEXT NOT NULL,"
                "  state TEXT NOT NULL,"
                "  attempts INTEGER NOT NULL,"
                "  source TEXT NOT NULL,"
                "  submitted REAL NOT NULL,"
                "  updated REAL NOT NULL,"
                "  result TEXT,"
                "  error TEXT"
                ")"
            )
            self._connection.commit()
        except sqlite3.DatabaseError as error:
            raise ServiceError(f"cannot open job queue {self.path}: {error}") from error
        self._refresh_depth()

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # ------------------------------------------------------------------
    # Submission (idempotent) and startup recovery
    # ------------------------------------------------------------------
    def submit(self, spec: dict[str, Any], source: str) -> tuple[JobRecord, bool]:
        """Insert a validated spec; dedup to the existing job by content.

        Returns ``(record, created)``; ``created`` is ``False`` when an
        identical submission already holds the content key, in which
        case that job is returned untouched — whatever state it is in.
        """
        key = job_content_key(spec)
        job_id = job_id_from_key(key)
        now = time.time()
        with self._lock:
            existing = self._load("content_key", key)
            if existing is not None:
                self.observer.count(
                    "jobs_deduped_total",
                    help="submissions answered with an existing job "
                         "(idempotent content-hash dedup)",
                )
                return existing, False
            self._connection.execute(
                "INSERT INTO jobs (id, content_key, spec, state, attempts, "
                "source, submitted, updated) VALUES (?, ?, ?, ?, 0, ?, ?, ?)",
                (job_id, key, json.dumps(spec, sort_keys=True),
                 STATE_QUEUED, source, now, now),
            )
            self._connection.commit()
            self.observer.count(
                "jobs_submitted_total",
                help="jobs accepted into the queue (HTTP and watch folder)",
            )
            self._refresh_depth()
            record = self._load("id", job_id)
            assert record is not None
            return record, True

    def recover(self) -> int:
        """Re-queue every ``running`` job (startup after crash/SIGTERM).

        The checkpoint machinery makes the re-run cheap: the resumed
        attempt continues from the snapshot the interrupted attempt
        flushed, bit-identically.
        """
        with self._lock:
            cursor = self._connection.execute(
                "UPDATE jobs SET state = ?, updated = ? WHERE state = ?",
                (STATE_QUEUED, time.time(), STATE_RUNNING),
            )
            self._connection.commit()
            recovered = cursor.rowcount
            if recovered:
                _logger.warning(
                    "re-queued %d interrupted job(s) for checkpoint resume",
                    recovered,
                )
            self._refresh_depth()
            return recovered

    # ------------------------------------------------------------------
    # Scheduler side
    # ------------------------------------------------------------------
    def claim(self) -> JobRecord | None:
        """Atomically move the oldest ``queued`` job to ``running``."""
        with self._lock:
            row = self._connection.execute(
                "SELECT id FROM jobs WHERE state = ? "
                "ORDER BY submitted ASC LIMIT 1",
                (STATE_QUEUED,),
            ).fetchone()
            if row is None:
                return None
            self._connection.execute(
                "UPDATE jobs SET state = ?, attempts = attempts + 1, "
                "updated = ? WHERE id = ?",
                (STATE_RUNNING, time.time(), row[0]),
            )
            self._connection.commit()
            self._refresh_depth()
            return self._load("id", row[0])

    def finish(self, job_id: str, result: dict[str, Any]) -> None:
        with self._lock:
            self._transition(job_id, STATE_DONE,
                             result=json.dumps(result, sort_keys=True))
            self.observer.count(
                "jobs_completed_total",
                help="jobs that finished with a result",
            )

    def fail(self, job_id: str, error: str) -> None:
        """Terminal input failure: retrying the same bytes cannot help."""
        with self._lock:
            self._transition(job_id, STATE_FAILED, error=error)
            self.observer.count(
                "jobs_failed_total",
                help="jobs terminated by a deterministic input error",
            )

    def bury(self, job_id: str, error: str) -> None:
        """Poison job: out of attempts, parked as ``dead``."""
        with self._lock:
            self._transition(job_id, STATE_DEAD, error=error)
            self.observer.count(
                "jobs_dead_total",
                help="poison jobs that exhausted their attempt budget",
            )

    def requeue(self, job_id: str, error: str) -> None:
        """Transient failure: back to ``queued`` for another attempt."""
        with self._lock:
            self._transition(job_id, STATE_QUEUED, error=error)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._load("id", job_id)

    def jobs(self) -> Iterator[JobRecord]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT id FROM jobs ORDER BY submitted ASC"
            ).fetchall()
        for (job_id,) in rows:
            record = self.get(job_id)
            if record is not None:
                yield record

    def depth(self) -> int:
        with self._lock:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = ?", (STATE_QUEUED,)
            ).fetchone()
            return int(row[0])

    # ------------------------------------------------------------------
    def _refresh_depth(self) -> None:
        self.observer.gauge(
            "queue_depth",
            value=float(self.depth()),
            help="jobs currently waiting in the queue",
        )

    def _transition(self, job_id: str, state: str, *,
                    result: str | None = None, error: str | None = None) -> None:
        self._connection.execute(
            "UPDATE jobs SET state = ?, updated = ?, result = ?, error = ? "
            "WHERE id = ?",
            (state, time.time(), result, error, job_id),
        )
        self._connection.commit()
        self._refresh_depth()

    def _load(self, column: str, value: str) -> JobRecord | None:
        assert column in ("id", "content_key")
        row = self._connection.execute(
            f"SELECT id, content_key, spec, state, attempts, source, "
            f"submitted, updated, result, error FROM jobs WHERE {column} = ?",
            (value,),
        ).fetchone()
        if row is None:
            return None
        return JobRecord(
            id=row[0], content_key=row[1], spec=json.loads(row[2]),
            state=row[3], attempts=row[4], source=row[5],
            submitted=row[6], updated=row[7],
            result=json.loads(row[8]) if row[8] is not None else None,
            error=row[9],
        )
