"""repro — a reproduction of "Matching Heterogeneous Event Data" (SIGMOD 2014).

The library matches events across heterogeneous event logs — logs that
record the same business process under different vocabularies — using the
paper's EMS similarity: a SimRank-style iterative propagation over
dependency graphs augmented with an artificial start/end event, robust to
opaque names, dislocated traces and composite (m:n) events.

Quickstart::

    from repro import EMSMatcher, EventLog

    log_a = EventLog([...], name="subsidiary-1")
    log_b = EventLog([...], name="subsidiary-2")
    outcome = EMSMatcher().match(log_a, log_b)
    for correspondence in outcome.correspondences:
        print(correspondence)

See ``examples/`` for runnable scenarios and ``python -m
repro.experiments`` for the paper's figures.
"""

from repro.baselines import (
    BHVMatcher,
    EventMatcher,
    GEDMatcher,
    GreedyCompositeWrapper,
    MatchOutcome,
    OPQMatcher,
)
from repro.core import (
    CompositeMatcher,
    CompositeMatchResult,
    EMSConfig,
    EMSEngine,
    EMSResult,
    SimilarityMatrix,
)
from repro.exceptions import BudgetExhausted, LogFormatError, ReproError
from repro.graph import ARTIFICIAL, DependencyGraph
from repro.logs import Event, EventLog, Trace
from repro.matchers import EMSCompositeMatcher, EMSMatcher
from repro.reporting import match_and_report, render_match_report
from repro.matching import Correspondence, MatchEvaluation, evaluate
from repro.runtime import (
    DegradationPolicy,
    IngestionReport,
    MatchBudget,
    RuntimeReport,
)
from repro.similarity import (
    LevenshteinSimilarity,
    OpaqueSimilarity,
    QGramCosineSimilarity,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # logs
    "Event",
    "Trace",
    "EventLog",
    # graphs
    "DependencyGraph",
    "ARTIFICIAL",
    # core
    "EMSConfig",
    "EMSEngine",
    "EMSResult",
    "SimilarityMatrix",
    "CompositeMatcher",
    "CompositeMatchResult",
    # matchers
    "EMSMatcher",
    "EMSCompositeMatcher",
    "EventMatcher",
    "MatchOutcome",
    "BHVMatcher",
    "GEDMatcher",
    "OPQMatcher",
    "GreedyCompositeWrapper",
    # matching & evaluation
    "Correspondence",
    "MatchEvaluation",
    "evaluate",
    "render_match_report",
    "match_and_report",
    # resilient runtime
    "MatchBudget",
    "DegradationPolicy",
    "RuntimeReport",
    "IngestionReport",
    "ReproError",
    "LogFormatError",
    "BudgetExhausted",
    # label similarities
    "OpaqueSimilarity",
    "QGramCosineSimilarity",
    "LevenshteinSimilarity",
]
