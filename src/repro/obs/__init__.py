"""Observability for the matching pipeline: spans, metrics, manifests.

See ``docs/observability.md`` for the span taxonomy, metric names and
exporter formats.  The single entry point most code needs is
:class:`Observer` (default :data:`NULL_OBSERVER`), threaded through the
engine, matchers, composite search and worker pools.
"""

from repro.obs.clock import Clock, FakeClock, default_clock
from repro.obs.logbridge import configure_logging, get_logger
from repro.obs.manifest import RunManifest, environment_metadata, stage_timings
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.trace import Span, TraceError, Tracer

__all__ = [
    "Clock",
    "Counter",
    "FakeClock",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observer",
    "PROMETHEUS_CONTENT_TYPE",
    "RunManifest",
    "Span",
    "TraceError",
    "Tracer",
    "configure_logging",
    "default_clock",
    "environment_metadata",
    "get_logger",
    "stage_timings",
]
