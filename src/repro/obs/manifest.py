"""Run manifests: config + environment + per-stage timings + stats.

A :class:`RunManifest` is the machine-readable receipt of one matching
run, emitted next to results (CLI ``--manifest-out``).  Per-stage
timings are computed from the recorded trace as **exclusive (self)
time** grouped by normalized span name — exclusive times partition the
root span's wall clock, so the stage seconds sum to the total by
construction (the acceptance check of ``docs/observability.md``).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, _json_safe

#: Manifest schema version, bumped on incompatible layout changes.
MANIFEST_VERSION = 1


def environment_metadata() -> dict[str, Any]:
    """Interpreter, platform and library versions for reproducibility."""
    try:  # numpy is an optional runtime dependency of some kernels
        import numpy

        numpy_version: str | None = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is present in CI
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }


def stage_name(span_name: str) -> str:
    """Normalize a span name to its stage: ``ems.iteration[3]`` → ``ems.iteration``."""
    return span_name.split("[", 1)[0]


def stage_timings(roots: list[Span]) -> dict[str, dict[str, Any]]:
    """Exclusive seconds and span counts per stage, over a span forest.

    Because each span's :attr:`~repro.obs.trace.Span.self_time` excludes
    its children, the returned seconds partition the roots' total
    duration: ``sum(stage seconds) == sum(root durations)`` up to float
    rounding.
    """
    stages: dict[str, dict[str, Any]] = {}
    for root in roots:
        for span in root.walk():
            entry = stages.setdefault(
                stage_name(span.name), {"seconds": 0.0, "spans": 0}
            )
            entry["seconds"] += span.self_time
            entry["spans"] += 1
    return stages


@dataclass(slots=True)
class RunManifest:
    """The JSON receipt of one run."""

    config: dict[str, Any] = field(default_factory=dict)
    environment: dict[str, Any] = field(default_factory=environment_metadata)
    stages: dict[str, dict[str, Any]] = field(default_factory=dict)
    total_seconds: float = 0.0
    metrics: dict[str, Any] = field(default_factory=dict)
    stats: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_observer(
        cls,
        observer: Any,
        config: dict[str, Any] | None = None,
        stats: dict[str, Any] | None = None,
    ) -> "RunManifest":
        """Build a manifest from an Observer's trace and metrics."""
        roots: list[Span] = observer.tracer.roots if observer.tracer else []
        metrics: MetricsRegistry | None = observer.metrics
        return cls(
            config=dict(config or {}),
            stages=stage_timings(roots),
            total_seconds=sum(root.duration for root in roots),
            metrics=metrics.as_dict() if metrics is not None else {},
            stats=dict(stats or {}),
        )

    def to_dict(self) -> dict[str, Any]:
        return _json_safe(
            {
                "manifest_version": MANIFEST_VERSION,
                "config": self.config,
                "environment": self.environment,
                "total_seconds": self.total_seconds,
                "stages": self.stages,
                "metrics": self.metrics,
                "stats": self.stats,
            }
        )

    def write(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
