"""The shared injectable clock of the matching pipeline.

Every component that measures wall time — :class:`~repro.runtime.budget.
BudgetMeter`, the :class:`~repro.obs.trace.Tracer`, the matcher adapters
and the experiment harness — reads it through a :data:`Clock` callable
instead of calling :func:`time.perf_counter` directly.  Production code
uses :data:`default_clock`; tests inject a :class:`FakeClock` to make
timings (and therefore budgets, spans and reported wall times)
deterministic.
"""

from __future__ import annotations

import time
from typing import Callable

#: A monotonic wall-clock source: returns seconds as a float.
Clock = Callable[[], float]

#: The production clock.
default_clock: Clock = time.perf_counter


class FakeClock:
    """A deterministic clock for tests.

    Every call returns the current time and then advances it by *step*;
    :meth:`advance` jumps forward explicitly.  With ``step=0`` the clock
    is frozen until advanced.
    """

    __slots__ = ("now", "step")

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        return current

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self.now += seconds
