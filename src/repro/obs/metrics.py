"""A small in-process metrics registry with Prometheus text exposition.

Three metric kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (pair updates,
  candidates screened, shared-memory fallbacks, ...);
* :class:`Gauge` — last-observed values (current round, cache size);
* :class:`Histogram` — cumulative-bucket distributions (per-stage
  seconds).

The registry is deliberately dependency-free and lock-free: the matching
pipeline feeds it from one thread (worker *processes* aggregate through
span fragments and result tuples instead), so plain attribute updates
are sufficient and cost two dict lookups per event.

:meth:`MetricsRegistry.to_prometheus_text` renders the classic text
exposition format (``# HELP`` / ``# TYPE`` / samples) accepted by the
Prometheus ecosystem, node-exporter textfile collectors included.  HTTP
endpoints serving it must send :data:`PROMETHEUS_CONTENT_TYPE` — the
version parameter is how scrapers pick the text parser — and the
exposition itself always ends in a newline, which the format requires
of the final line.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterator

#: The Content-Type a ``/metrics`` endpoint must serve for the classic
#: text exposition format (``version=0.0.4``); without it, strict
#: scrapers refuse the payload as an unknown format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets: latency-shaped, seconds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, math.inf,
)


def _check_name(name: str) -> str:
    if not _NAME_PATTERN.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down; remembers the last set value."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """A cumulative-bucket distribution (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; the last
    bucket is always ``+Inf`` so ``bucket_counts[-1] == count``.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count")

    def __init__(
        self, name: str, help: str = "", buckets: tuple[float, ...] | None = None
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram buckets must be sorted, got {bounds}")
        self.buckets = bounds
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Asking twice for the same name returns the same object; asking for an
    existing name with a different kind raises, so instrumentation typos
    fail loudly instead of splitting a series.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested {cls.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """A JSON-safe snapshot (used by the run manifest)."""
        snapshot: dict[str, Any] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                snapshot[metric.name] = {
                    "kind": metric.kind,
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": {
                        _bucket_label(bound): count
                        for bound, count in zip(metric.buckets, metric.bucket_counts)
                    },
                }
            else:
                snapshot[metric.name] = {"kind": metric.kind, "value": metric.value}
        return snapshot

    def to_prometheus_text(self) -> str:
        """The classic Prometheus text exposition of every metric.

        The output is always newline-terminated — the format requires a
        line feed after the final sample, and scrapers reject a payload
        whose last line is torn — and ``# HELP`` text is escaped per the
        exposition rules (backslash and newline), so free-form help
        strings can never break the line-oriented parse.  Serve it with
        :data:`PROMETHEUS_CONTENT_TYPE`.
        """
        lines: list[str] = []
        for metric in self:
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, count in zip(metric.buckets, metric.bucket_counts):
                    lines.append(
                        f'{metric.name}_bucket{{le="{_bucket_label(bound)}"}} {count}'
                    )
                lines.append(f"{metric.name}_sum {_format_value(metric.sum)}")
                lines.append(f"{metric.name}_count {metric.count}")
            else:
                lines.append(f"{metric.name} {_format_value(metric.value)}")
        return "\n".join(lines) + "\n"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _bucket_label(bound: float) -> str:
    return "+Inf" if bound == math.inf else format(bound, "g")


def _format_value(value: float) -> str:
    return format(value, "g")
