"""The :class:`Observer` handle threaded through the matching pipeline.

One object bundles the four observability capabilities — tracing spans,
metrics, logging and the injectable clock — so instrumented code takes a
single optional parameter instead of four.  Every capability is
individually optional; :data:`NULL_OBSERVER` (the default everywhere)
has none of them and its hot-path methods reduce to attribute checks, so
instrumentation stays out of the inner-loop cost profile.

Design notes
------------
* ``observer.span(...)`` always works as a context manager.  Without a
  tracer it yields a shared, inert :class:`~repro.obs.trace.Span` so the
  call site can set attributes unconditionally (they land in a throwaway
  dict).  Hot paths that would pay even that much guard with
  ``if observer.tracing:`` first.
* The Observer is **never pickled**: worker processes build their own
  local tracer when told to (a plain ``trace: bool`` flag travels in the
  task payload) and ship span fragments back with their results.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.clock import Clock, default_clock
from repro.obs.logbridge import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer


class Observer:
    """Bundle of tracer, metrics registry, logger and clock.

    All components default to absent/cheap: ``Observer()`` observes
    nothing and is safe (and nearly free) to call everywhere.
    """

    __slots__ = ("tracer", "metrics", "logger", "clock")

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        logger: logging.Logger | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.logger = logger if logger is not None else get_logger("repro")
        if clock is None:
            clock = tracer.clock if tracer is not None else default_clock
        self.clock: Clock = clock

    # ------------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        """True when spans are actually being recorded."""
        return self.tracer is not None

    @property
    def enabled(self) -> bool:
        """True when any sink (tracer or metrics) is attached."""
        return self.tracer is not None or self.metrics is not None

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Any:
        """Open a span (no-op context manager when tracing is off)."""
        if self.tracer is not None:
            return self.tracer.span(name, **attributes)
        return _null_span()

    def event(self, name: str, **attributes: Any) -> None:
        """Record an instant marker (dropped when tracing is off)."""
        if self.tracer is not None:
            self.tracer.event(name, **attributes)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0, help: str = "") -> None:
        if self.metrics is not None:
            self.metrics.counter(name, help).inc(amount)

    def gauge(self, name: str, value: float, help: str = "") -> None:
        if self.metrics is not None:
            self.metrics.gauge(name, help).set(value)

    def observe(self, name: str, value: float, help: str = "") -> None:
        if self.metrics is not None:
            self.metrics.histogram(name, help).observe(value)

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------
    def warning(self, message: str, *args: Any) -> None:
        self.logger.warning(message, *args)

    def info(self, message: str, *args: Any) -> None:
        self.logger.info(message, *args)

    def debug(self, message: str, *args: Any) -> None:
        self.logger.debug(message, *args)


#: Shared inert span handed out by the null ``span()`` path.  Its
#: attribute dict is reused (and may accumulate garbage) — that is fine,
#: nobody ever reads it.
_NULL_SPAN = Span(name="null", start=0.0, end=0.0)


@contextmanager
def _null_span() -> Iterator[Span]:
    yield _NULL_SPAN


#: The default observer: no tracer, no metrics, root library logger.
NULL_OBSERVER = Observer()
