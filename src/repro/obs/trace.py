"""Nested, explicitly-clocked tracing spans.

A :class:`Tracer` records a forest of :class:`Span` trees.  Spans are
opened and closed strictly LIFO — the context-manager API makes that
automatic — so every emitted trace is balanced and properly nested by
construction; :meth:`Tracer.finish` raises :class:`TraceError` on any
attempt to close out of order.

The span taxonomy used across the pipeline (see ``docs/observability.md``):

========================  =====================================================
``match``                 root span of one CLI/matcher invocation
``ingest.parse``          reading one event log
``graph.build``           one dependency-graph (re)build
``ems.fixpoint``          one EMS similarity evaluation (all directions)
``ems.iteration[k]``      iteration *k* of one directional fixpoint
``pruning.freeze``        instant marker: Proposition-2/Uc freeze accounting
``composite.round[r]``    greedy round *r* of Algorithm 2
``workers.dispatch``      one round's worker-pool fan-out
``candidate.evaluate``    one candidate evaluation inside a worker process
``match.assign``          the final Hungarian assignment
========================  =====================================================

Worker processes trace into their own :class:`Tracer` and ship
:meth:`~Tracer.export_fragments` (plain dicts) back with their results;
the parent stitches them into its trace with :meth:`~Tracer.adopt`,
re-based onto the enclosing span and tagged with the worker's pid as the
Chrome-trace thread id.

:meth:`Tracer.to_chrome_trace` renders the forest in the Chrome trace
event format (complete ``"X"`` events), loadable in ``chrome://tracing``
and Perfetto.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.clock import Clock, default_clock


class TraceError(RuntimeError):
    """A span was closed out of order (the trace would be unbalanced)."""


def _json_safe(value: Any) -> Any:
    """Coerce *value* into something ``json.dump`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    # NumPy scalars and anything else with an item()/float() view.
    for converter in (lambda v: v.item(), int, float):
        try:
            return converter(value)
        except (AttributeError, TypeError, ValueError):
            continue
    return str(value)


@dataclass(slots=True)
class Span:
    """One timed region with attributes and nested children.

    ``start``/``end`` are raw readings of the owning tracer's clock; an
    unfinished span has ``end = None`` and exports with zero duration.
    ``tid`` distinguishes worker-process fragments in the Chrome export
    (0 = the recording process itself).
    """

    name: str
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    tid: int = 0

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration minus the children's durations, floored at zero."""
        return max(0.0, self.duration - sum(child.duration for child in self.children))

    def shift(self, offset: float) -> None:
        """Translate this span (and its subtree) by *offset* seconds."""
        self.start += offset
        if self.end is not None:
            self.end += offset
        for child in self.children:
            child.shift(offset)

    def set_tid(self, tid: int) -> None:
        self.tid = tid
        for child in self.children:
            child.set_tid(tid)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": _json_safe(self.attributes),
            "children": [child.to_dict() for child in self.children],
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            start=payload["start"],
            end=payload.get("end"),
            attributes=dict(payload.get("attributes", {})),
            children=[cls.from_dict(child) for child in payload.get("children", ())],
            tid=payload.get("tid", 0),
        )


class Tracer:
    """Records a balanced forest of spans against one clock."""

    __slots__ = ("clock", "roots", "_stack")

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock if clock is not None else default_clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 = balanced)."""
        return len(self._stack)

    def start(self, name: str, **attributes: Any) -> Span:
        """Open a span as a child of the innermost open span."""
        span = Span(name=name, start=self.clock(), attributes=attributes)
        (self._stack[-1].children if self._stack else self.roots).append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close *span*; it must be the innermost open span."""
        if not self._stack or self._stack[-1] is not span:
            innermost = self._stack[-1].name if self._stack else None
            raise TraceError(
                f"span {span.name!r} closed out of order "
                f"(innermost open: {innermost!r})"
            )
        span.end = self.clock()
        self._stack.pop()

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """``with tracer.span("ems.fixpoint", pairs=n) as span: ...``"""
        opened = self.start(name, **attributes)
        try:
            yield opened
        finally:
            self.finish(opened)

    def event(self, name: str, **attributes: Any) -> Span:
        """An instant (zero-duration) marker attached at the current depth."""
        now = self.clock()
        span = Span(name=name, start=now, end=now, attributes=attributes)
        (self._stack[-1].children if self._stack else self.roots).append(span)
        return span

    # ------------------------------------------------------------------
    # Worker fragments
    # ------------------------------------------------------------------
    def export_fragments(self) -> list[dict[str, Any]]:
        """The recorded forest as plain dicts (picklable, JSON-safe)."""
        return [root.to_dict() for root in self.roots]

    def adopt(self, fragments: list[dict[str, Any]], tid: int = 0) -> list[Span]:
        """Stitch worker *fragments* into the trace.

        Fragments carry the worker's own clock readings, which share no
        epoch with this tracer's; they are re-based so the earliest
        fragment start coincides with the start of the innermost open
        span (durations are preserved exactly, absolute placement is
        approximate).  Every adopted span gets *tid* as its thread id.
        """
        spans = [Span.from_dict(fragment) for fragment in fragments]
        if not spans:
            return []
        parent_children = self._stack[-1].children if self._stack else self.roots
        base = min(span.start for span in spans)
        placement = self._stack[-1].start if self._stack else base
        for span in spans:
            span.shift(placement - base)
            span.set_tid(tid)
            parent_children.append(span)
        return spans

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def all_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def to_chrome_trace(self, pid: int = 1) -> dict[str, Any]:
        """The forest in Chrome trace event format (``"X"`` events).

        Timestamps are microseconds relative to the earliest recorded
        span, so the trace loads cleanly in ``chrome://tracing`` and
        Perfetto regardless of the clock's epoch.
        """
        spans = list(self.all_spans())
        epoch = min((span.start for span in spans), default=0.0)
        events = []
        for span in spans:
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "pid": pid,
                    "tid": span.tid,
                    "ts": (span.start - epoch) * 1e6,
                    "dur": span.duration * 1e6,
                    "args": _json_safe(span.attributes),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}
