"""The stdlib-``logging`` bridge: per-module loggers under one root.

Every module of the pipeline gets its logger via :func:`get_logger`,
which namespaces under the ``"repro"`` root so one call to
:func:`configure_logging` (the CLI's ``--log-level``) controls the whole
library.  The library itself never configures handlers at import time —
a :class:`logging.NullHandler` on the root keeps it silent by default,
the standard good-citizen behaviour for libraries.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

#: The root logger name every repro logger hangs under.
ROOT_LOGGER = "repro"

#: Handler format used by :func:`configure_logging`.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

# Default: silent unless the application configures logging.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """The logger for *name*, namespaced under ``repro``.

    Accepts either a module ``__name__`` that already starts with
    ``repro`` (the common case) or a bare suffix like ``"obs"``.
    """
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(
    level: int | str | None = "warning", stream: IO[str] | None = None
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root at *level*.

    Idempotent: calling again replaces the previously attached handler
    instead of stacking duplicates.  Returns the configured root logger.
    ``level=None`` leaves the level untouched and only (re)attaches the
    handler.
    """
    root = logging.getLogger(ROOT_LOGGER)
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    if level is not None:
        root.setLevel(level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    handler.set_name("repro-obs-bridge")
    for existing in list(root.handlers):
        if existing.get_name() == handler.get_name():
            root.removeHandler(existing)
    root.addHandler(handler)
    return root
