"""Generic greedy composite matching around any :class:`EventMatcher`.

Figures 10-14 of the paper compare composite event matching across EMS
*and* the baselines.  The baselines have no notion of composite events,
so — as in the paper — they are wrapped in the same greedy loop of
Algorithm 2: in each round, try merging every remaining candidate on
either side, keep the merge that improves the matcher's own objective
the most, stop when the improvement falls below ``delta``.

For similarity measures with expensive evaluations (GED, OPQ) this
wrapper is exactly the cost amplifier the paper describes: "we need to
frequently compute the similarities of events for various combinations of
candidate composite events, which is not affordable for similarity
measures with high computational costs".
"""

from __future__ import annotations

from repro.baselines.common import (
    Evaluation,
    EventMatcher,
    MatchOutcome,
    identity_members,
    pairs_to_outcome,
)
from repro.core.composite import discover_candidates
from repro.exceptions import MatchingError
from repro.graph.merge import merge_run_in_log
from repro.logs.log import EventLog


class GreedyCompositeWrapper(EventMatcher):
    """Algorithm 2 with an arbitrary matcher supplying the objective."""

    def __init__(
        self,
        base: EventMatcher,
        delta: float = 0.01,
        min_confidence: float = 1.0,
        max_run_length: int = 4,
        max_candidates: int | None = None,
        max_rounds: int = 20,
    ):
        if delta < 0.0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        self.base = base
        self.name = base.name
        self.delta = delta
        self.min_confidence = min_confidence
        self.max_run_length = max_run_length
        self.max_candidates = max_candidates
        self.max_rounds = max_rounds

    def evaluate(self, log_first, log_second, members_first, members_second) -> Evaluation:
        return self.base.evaluate(log_first, log_second, members_first, members_second)

    def match(self, log_first: EventLog, log_second: EventLog) -> MatchOutcome:
        logs = [log_first, log_second]
        members = [identity_members(log_first), identity_members(log_second)]
        current = self.base.evaluate(log_first, log_second, members[0], members[1])
        evaluations = 1

        for _ in range(self.max_rounds):
            best: tuple[int, tuple[str, ...], Evaluation] | None = None
            best_objective = current.objective
            for side in (0, 1):
                candidates = discover_candidates(
                    logs[side],
                    min_confidence=self.min_confidence,
                    max_run_length=self.max_run_length,
                    max_candidates=self.max_candidates,
                )
                for run in candidates:
                    merged_log, merged_members = merge_run_in_log(
                        logs[side], run, members[side]
                    )
                    trial_logs = list(logs)
                    trial_members = list(members)
                    trial_logs[side] = merged_log
                    trial_members[side] = merged_members
                    try:
                        outcome = self.base.evaluate(
                            trial_logs[0], trial_logs[1],
                            trial_members[0], trial_members[1],
                        )
                    except MatchingError:
                        continue  # e.g. OPQ budget exceeded on this variant
                    evaluations += 1
                    if outcome.objective > best_objective:
                        best_objective = outcome.objective
                        best = (side, run, outcome)
            if best is None or best_objective - current.objective <= self.delta:
                break
            side, run, outcome = best
            logs[side], members[side] = merge_run_in_log(logs[side], run, members[side])
            current = outcome

        result = pairs_to_outcome(current, members[0], members[1])
        diagnostics = dict(result.diagnostics)
        diagnostics["composite_evaluations"] = float(evaluations)
        return MatchOutcome(result.correspondences, result.objective, diagnostics)
