"""FPT — behavioral-footprint profile matching (an extra baseline).

Not one of the paper's three comparators, but a natural representative of
the behavioral-profile school (Weidlich et al.'s ICoP framework, which
the paper's related work discusses): each activity gets a label-free
fingerprint — the fractions of CAUSAL / REVERSE / PARALLEL / EXCLUSIVE
relations it has against the rest of its log — and activities are paired
by fingerprint agreement with the maximum-total-similarity assignment.

Profiles are position-free, so this baseline is *immune to dislocation*
but also blind to everything the relations abstract away (frequencies,
multi-hop structure); it gives the evaluation a useful fourth reference
point between the local (GED/OPQ) and propagating (BHV/EMS) methods.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.baselines.common import Evaluation, EventMatcher
from repro.logs.footprint import compute_footprint, footprint_agreement
from repro.logs.log import EventLog
from repro.matching.assignment import max_weight_assignment
from repro.similarity.labels import (
    CompositeAwareSimilarity,
    LabelSimilarity,
    OpaqueSimilarity,
)


class ProfileMatcher(EventMatcher):
    """Footprint-profile matching."""

    name = "FPT"

    def __init__(
        self,
        alpha: float = 1.0,
        label_similarity: LabelSimilarity | None = None,
        threshold: float = 0.0,
    ):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha
        self.label_similarity = (
            label_similarity if label_similarity is not None else OpaqueSimilarity()
        )
        self.threshold = threshold

    def evaluate(
        self,
        log_first: EventLog,
        log_second: EventLog,
        members_first: Mapping[str, frozenset[str]],
        members_second: Mapping[str, frozenset[str]],
    ) -> Evaluation:
        footprint_first = compute_footprint(log_first)
        footprint_second = compute_footprint(log_second)
        rows = footprint_first.activities
        cols = footprint_second.activities

        profiles_first = np.array([footprint_first.profile(a) for a in rows])
        profiles_second = np.array([footprint_second.profile(b) for b in cols])
        # L1 agreement of the 4-component profiles, in [0, 1].
        distances = np.abs(
            profiles_first[:, None, :] - profiles_second[None, :, :]
        ).sum(axis=2)
        values = 1.0 - distances / 2.0

        if self.alpha < 1.0 and not isinstance(self.label_similarity, OpaqueSimilarity):
            scorer: LabelSimilarity = CompositeAwareSimilarity(
                self.label_similarity, dict(members_first), dict(members_second)
            )
            labels = np.array([[scorer(a, b) for b in cols] for a in rows])
            values = self.alpha * values + (1.0 - self.alpha) * labels

        assignment = max_weight_assignment(values)
        pairs = tuple(
            (rows[i], cols[j]) for i, j in assignment if values[i, j] > self.threshold
        )
        mapping = {left: right for left, right in pairs}
        objective = footprint_agreement(footprint_first, footprint_second, mapping)
        return Evaluation(
            objective=objective,
            pairs=pairs,
            diagnostics={"profile_agreement": objective},
        )
