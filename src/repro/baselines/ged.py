"""GED — graph edit distance matching (Dijkman et al., BPM 2009).

The business-process graph-edit-distance baseline evaluates a partial
injective mapping ``M`` between the nodes of two dependency graphs by a
weighted sum of three fractions:

* *skipped nodes* — nodes left unmapped on either side;
* *skipped edges* — edges whose endpoints are not both mapped to an edge
  on the other side;
* *substitution cost* — ``1 - sim(a, b)`` averaged over mapped pairs,

and greedily grows ``M`` by always adding the pair that lowers the
distance most (the "greedy algorithm" of the original paper).  The
matcher returns ``1 - distance`` as its objective.

The node substitution similarity uses the label similarity when one is
configured; in the opaque setting it falls back to a structural profile —
the agreement of node frequencies and of in/out degrees.  As Example 2
of the reproduced paper shows, this *local* evaluation misattributes
dislocated events; its accuracy in the experiments is accordingly low.
"""

from __future__ import annotations

from typing import Mapping

from repro.baselines.common import Evaluation, EventMatcher
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog
from repro.similarity.labels import (
    CompositeAwareSimilarity,
    LabelSimilarity,
    OpaqueSimilarity,
)


class GEDMatcher(EventMatcher):
    """Greedy graph-edit-distance matching."""

    name = "GED"

    def __init__(
        self,
        weight_skip_nodes: float = 0.3,
        weight_skip_edges: float = 0.3,
        weight_substitution: float = 0.4,
        label_similarity: LabelSimilarity | None = None,
        cutoff: float = 0.0,
    ):
        total = weight_skip_nodes + weight_skip_edges + weight_substitution
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"the three weights must sum to 1, got {total}")
        self.weight_skip_nodes = weight_skip_nodes
        self.weight_skip_edges = weight_skip_edges
        self.weight_substitution = weight_substitution
        self.label_similarity = label_similarity
        #: pairs with substitution similarity <= cutoff are never mapped.
        self.cutoff = cutoff

    # ------------------------------------------------------------------
    def _node_similarity(
        self,
        graph_first: DependencyGraph,
        graph_second: DependencyGraph,
        scorer: LabelSimilarity | None,
    ) -> dict[tuple[str, str], float]:
        """Substitution similarity of every node pair."""
        similarities: dict[tuple[str, str], float] = {}
        for node_first in graph_first.nodes:
            f1 = graph_first.frequency(node_first)
            for node_second in graph_second.nodes:
                if scorer is not None:
                    similarity = scorer(node_first, node_second)
                else:
                    # Opaque setting: the only node-local signal left is
                    # the frequency agreement — a *local* evaluation, which
                    # is precisely the weakness Example 2 demonstrates.
                    f2 = graph_second.frequency(node_second)
                    similarity = 1.0 - abs(f1 - f2) / (f1 + f2)
                similarities[(node_first, node_second)] = similarity
        return similarities

    def distance(
        self,
        graph_first: DependencyGraph,
        graph_second: DependencyGraph,
        mapping: Mapping[str, str],
        node_similarity: Mapping[tuple[str, str], float] | None = None,
        scorer: LabelSimilarity | None = None,
    ) -> float:
        """The graph edit distance induced by *mapping* (lower is better)."""
        if node_similarity is None:
            node_similarity = self._node_similarity(graph_first, graph_second, scorer)
        nodes_first = graph_first.nodes
        nodes_second = graph_second.nodes
        total_nodes = len(nodes_first) + len(nodes_second)
        skipped_nodes = total_nodes - 2 * len(mapping)

        edges_first = graph_first.real_edges
        edges_second = graph_second.real_edges
        total_edges = len(edges_first) + len(edges_second)
        matched_edges = 0
        for source, target in edges_first:
            mapped = (mapping.get(source), mapping.get(target))
            if mapped[0] is not None and mapped[1] is not None and mapped in edges_second:
                matched_edges += 1
        skipped_edges = total_edges - 2 * matched_edges

        substitution = sum(
            1.0 - node_similarity[(a, b)] for a, b in mapping.items()
        )

        node_fraction = skipped_nodes / total_nodes if total_nodes else 0.0
        edge_fraction = skipped_edges / total_edges if total_edges else 0.0
        # Dijkman et al. normalize the substituted-node fraction by the
        # *total* node count, not the mapped count — otherwise the first
        # greedy step is never beneficial and nothing gets mapped.
        substitution_fraction = (
            2.0 * substitution / total_nodes if total_nodes else 0.0
        )
        return (
            self.weight_skip_nodes * node_fraction
            + self.weight_skip_edges * edge_fraction
            + self.weight_substitution * substitution_fraction
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        log_first: EventLog,
        log_second: EventLog,
        members_first: Mapping[str, frozenset[str]],
        members_second: Mapping[str, frozenset[str]],
    ) -> Evaluation:
        graph_first = DependencyGraph.from_log(log_first, members=members_first)
        graph_second = DependencyGraph.from_log(log_second, members=members_second)

        scorer: LabelSimilarity | None = None
        if self.label_similarity is not None and not isinstance(
            self.label_similarity, OpaqueSimilarity
        ):
            scorer = CompositeAwareSimilarity(
                self.label_similarity, dict(members_first), dict(members_second)
            )
        node_similarity = self._node_similarity(graph_first, graph_second, scorer)

        mapping: dict[str, str] = {}
        free_first = set(graph_first.nodes)
        free_second = set(graph_second.nodes)
        current = self.distance(graph_first, graph_second, mapping, node_similarity)
        while free_first and free_second:
            best_pair: tuple[str, str] | None = None
            best_distance = current
            for node_first in sorted(free_first):
                for node_second in sorted(free_second):
                    if node_similarity[(node_first, node_second)] <= self.cutoff:
                        continue
                    mapping[node_first] = node_second
                    candidate = self.distance(
                        graph_first, graph_second, mapping, node_similarity
                    )
                    del mapping[node_first]
                    if candidate < best_distance:
                        best_distance = candidate
                        best_pair = (node_first, node_second)
            if best_pair is None:
                break
            mapping[best_pair[0]] = best_pair[1]
            free_first.discard(best_pair[0])
            free_second.discard(best_pair[1])
            current = best_distance

        pairs = tuple(sorted(mapping.items()))
        return Evaluation(
            objective=1.0 - current,
            pairs=pairs,
            diagnostics={"distance": current, "mapped": float(len(mapping))},
        )
