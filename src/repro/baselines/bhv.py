"""BHV — SimRank-like behavioural similarity (Nejati et al., ICSE 2007).

The baseline the paper calls BHV iteratively propagates predecessor
similarities through the *plain* dependency graph: no artificial event,
no edge-frequency weighting, forward direction only.  Its two failure
modes, demonstrated in the paper's Example 2 and Figures 3/9, follow
directly:

* two events whose pre-sets are both empty score 1 (so the true start of
  one log spuriously matches the dislocated start of the other), while a
  pair with one empty pre-set scores 0 — dislocated events "that do not
  have any predecessor" can never match their true counterparts;
* only one direction is considered, so dislocations at the beginning of
  traces (testbed DS-B) hurt much more than at the end (DS-F).

Concretely, with decay ``c`` and label weight ``1 - alpha``::

    N(a, b) = 1                                   if pre(a) = pre(b) = {}
            = 0                                   if exactly one is empty
            = c * (sum_a' max_b' S(a', b') + sum_b' max_a' S(a', b'))
                  / (|pre(a)| + |pre(b)|)         otherwise
    S(a, b) = alpha * N(a, b) + (1 - alpha) * S^L(a, b)

starting from ``S^0 = 1`` everywhere, iterated to a fixpoint.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.baselines.common import Evaluation, EventMatcher
from repro.core.matrix import SimilarityMatrix
from repro.logs.log import EventLog
from repro.logs.stats import compute_statistics
from repro.matching.assignment import max_weight_assignment
from repro.similarity.labels import (
    CompositeAwareSimilarity,
    LabelSimilarity,
    OpaqueSimilarity,
)


class BHVMatcher(EventMatcher):
    """Behavioural similarity matching (forward-only SimRank variant)."""

    name = "BHV"

    def __init__(
        self,
        alpha: float = 1.0,
        c: float = 0.8,
        epsilon: float = 1e-4,
        max_iterations: int = 100,
        label_similarity: LabelSimilarity | None = None,
        threshold: float = 0.0,
    ):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 < c < 1.0:
            raise ValueError(f"c must be in (0, 1), got {c}")
        self.alpha = alpha
        self.c = c
        self.epsilon = epsilon
        self.max_iterations = max_iterations
        self.label_similarity = (
            label_similarity if label_similarity is not None else OpaqueSimilarity()
        )
        self.threshold = threshold

    # ------------------------------------------------------------------
    def similarity(
        self,
        log_first: EventLog,
        log_second: EventLog,
        members_first: Mapping[str, frozenset[str]] | None = None,
        members_second: Mapping[str, frozenset[str]] | None = None,
    ) -> SimilarityMatrix:
        """The converged BHV similarity matrix of the two logs."""
        stats_first = compute_statistics(log_first)
        stats_second = compute_statistics(log_second)
        nodes_first = tuple(sorted(stats_first.activities))
        nodes_second = tuple(sorted(stats_second.activities))
        index_first = {node: i for i, node in enumerate(nodes_first)}
        index_second = {node: j for j, node in enumerate(nodes_second)}

        preds_first: list[list[int]] = [[] for _ in nodes_first]
        for source, target in stats_first.pair_frequencies:
            preds_first[index_first[target]].append(index_first[source])
        preds_second: list[list[int]] = [[] for _ in nodes_second]
        for source, target in stats_second.pair_frequencies:
            preds_second[index_second[target]].append(index_second[source])

        label = self._label_matrix(
            nodes_first, nodes_second, members_first, members_second
        )

        n1, n2 = len(nodes_first), len(nodes_second)
        values = np.ones((n1, n2))
        for _ in range(self.max_iterations):
            previous = values.copy()
            for i in range(n1):
                pre_i = preds_first[i]
                for j in range(n2):
                    pre_j = preds_second[j]
                    if not pre_i and not pre_j:
                        structural = 1.0
                    elif not pre_i or not pre_j:
                        structural = 0.0
                    else:
                        block = previous[np.ix_(pre_i, pre_j)]
                        structural = (
                            self.c
                            * (block.max(axis=1).sum() + block.max(axis=0).sum())
                            / (len(pre_i) + len(pre_j))
                        )
                    values[i, j] = (
                        self.alpha * structural + (1.0 - self.alpha) * label[i, j]
                    )
            if np.abs(values - previous).max() < self.epsilon:
                break
        return SimilarityMatrix(nodes_first, nodes_second, values)

    def _label_matrix(
        self,
        nodes_first: tuple[str, ...],
        nodes_second: tuple[str, ...],
        members_first: Mapping[str, frozenset[str]] | None,
        members_second: Mapping[str, frozenset[str]] | None,
    ) -> np.ndarray:
        label = np.zeros((len(nodes_first), len(nodes_second)))
        if isinstance(self.label_similarity, OpaqueSimilarity) or self.alpha == 1.0:
            return label
        scorer: LabelSimilarity = self.label_similarity
        if members_first is not None and members_second is not None:
            scorer = CompositeAwareSimilarity(
                self.label_similarity, dict(members_first), dict(members_second)
            )
        for i, node_first in enumerate(nodes_first):
            for j, node_second in enumerate(nodes_second):
                label[i, j] = scorer(node_first, node_second)
        return label

    # ------------------------------------------------------------------
    def evaluate(
        self,
        log_first: EventLog,
        log_second: EventLog,
        members_first: Mapping[str, frozenset[str]],
        members_second: Mapping[str, frozenset[str]],
    ) -> Evaluation:
        matrix = self.similarity(log_first, log_second, members_first, members_second)
        values = matrix.values
        assignment = max_weight_assignment(values)
        pairs = tuple(
            (matrix.rows[i], matrix.cols[j])
            for i, j in assignment
            if values[i, j] > self.threshold
        )
        return Evaluation(objective=matrix.average(), pairs=pairs)
