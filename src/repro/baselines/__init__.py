"""Baseline matchers the paper compares against: GED, OPQ, BHV."""

from repro.baselines.bhv import BHVMatcher
from repro.baselines.common import Evaluation, EventMatcher, MatchOutcome
from repro.baselines.composite_wrapper import GreedyCompositeWrapper
from repro.baselines.flooding import FloodingMatcher
from repro.baselines.ged import GEDMatcher
from repro.baselines.opq import OPQMatcher, mapping_score, weight_matrix
from repro.baselines.profiles import ProfileMatcher

__all__ = [
    "EventMatcher",
    "Evaluation",
    "MatchOutcome",
    "BHVMatcher",
    "FloodingMatcher",
    "GEDMatcher",
    "OPQMatcher",
    "ProfileMatcher",
    "GreedyCompositeWrapper",
    "weight_matrix",
    "mapping_score",
]
