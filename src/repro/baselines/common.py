"""Common interface of event matchers (EMS and the baselines).

Every matcher consumes two event logs and produces a
:class:`MatchOutcome`: the selected correspondences, a scalar objective
(the quantity its own search maximizes — average similarity for EMS/BHV,
graph-edit similarity for GED, normal score for OPQ), and diagnostics for
the experiment reports.

The two-level API exists because of composite matching: the generic
greedy wrapper (:class:`repro.baselines.composite_wrapper.GreedyCompositeWrapper`)
re-invokes :meth:`EventMatcher.evaluate` on *merged* logs many times, so
``evaluate`` works on (log, member-map) pairs, while :meth:`match` is the
one-shot convenience for singleton matching.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping

from repro.logs.log import EventLog
from repro.matching.evaluation import Correspondence
from repro.runtime.report import RuntimeReport


@dataclass(frozen=True, slots=True)
class Evaluation:
    """One similarity evaluation on (possibly merged) logs.

    ``pairs`` holds matched node-name pairs over the merged vocabularies;
    ``objective`` is the matcher-specific score (higher is better).
    """

    objective: float
    pairs: tuple[tuple[str, str], ...]
    diagnostics: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class MatchOutcome:
    """Final result of a matcher run on two logs.

    ``runtime`` carries the resilient-runtime annotations (degradation
    stage, budget spend) for matchers that support budgets; baselines
    that never degrade leave it ``None``.
    """

    correspondences: tuple[Correspondence, ...]
    objective: float
    diagnostics: Mapping[str, float] = field(default_factory=dict)
    runtime: RuntimeReport | None = field(default=None, compare=False)
    #: Poison candidates the supervised composite search set aside
    #: (:class:`repro.runtime.QuarantineRecord`); empty for baselines
    #: and for clean runs.
    quarantined: tuple = field(default=(), compare=False)


def identity_members(log: EventLog) -> dict[str, frozenset[str]]:
    return {activity: frozenset({activity}) for activity in log.activities()}


def pairs_to_outcome(
    evaluation: Evaluation,
    members_first: Mapping[str, frozenset[str]],
    members_second: Mapping[str, frozenset[str]],
    runtime: RuntimeReport | None = None,
) -> MatchOutcome:
    """Expand an :class:`Evaluation`'s node pairs into correspondences."""
    correspondences = tuple(
        Correspondence(
            members_first.get(left, frozenset({left})),
            members_second.get(right, frozenset({right})),
        )
        for left, right in evaluation.pairs
    )
    return MatchOutcome(
        correspondences, evaluation.objective, evaluation.diagnostics, runtime
    )


class EventMatcher(ABC):
    """Base class of all matchers.

    Subclasses implement :meth:`evaluate`; the default :meth:`match`
    evaluates the raw logs and expands pairs to 1:1 correspondences.
    """

    #: Short name used in experiment tables ("EMS", "GED", "OPQ", "BHV"...).
    name: str = "matcher"

    @abstractmethod
    def evaluate(
        self,
        log_first: EventLog,
        log_second: EventLog,
        members_first: Mapping[str, frozenset[str]],
        members_second: Mapping[str, frozenset[str]],
    ) -> Evaluation:
        """Score the two (possibly merged) logs and match their nodes."""

    def match(self, log_first: EventLog, log_second: EventLog) -> MatchOutcome:
        """One-shot singleton matching of two raw logs."""
        members_first = identity_members(log_first)
        members_second = identity_members(log_second)
        evaluation = self.evaluate(log_first, log_second, members_first, members_second)
        return pairs_to_outcome(evaluation, members_first, members_second)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
