"""SFL — Similarity Flooding (Melnik, Garcia-Molina & Rahm, ICDE 2002).

The classic generic graph matcher the paper's related work cites [14]:
build the *pairwise connectivity graph* whose nodes are node pairs
``(a, x)`` with an edge ``(a, x) -> (b, y)`` whenever ``a -> b`` in the
first graph and ``x -> y`` in the second; assign each edge a propagation
coefficient (inverse product fan-out); then iterate

    sigma[p] = sigma0[p] + sum over neighbours q of sigma[q] * w(q, p)

normalizing by the maximum each round, until the vector stabilizes.

Here the input graphs are the dependency graphs (without the artificial
event — flooding predates that idea), the initial similarity ``sigma0``
is the label similarity when available (uniform otherwise), and the
final mapping is selected by maximum-total-similarity assignment.
Like GED and OPQ, flooding evaluates *local* structure and inherits
their dislocation weakness — a useful fourth reference point.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.baselines.common import Evaluation, EventMatcher
from repro.logs.log import EventLog
from repro.logs.stats import compute_statistics
from repro.matching.assignment import max_weight_assignment
from repro.similarity.labels import (
    CompositeAwareSimilarity,
    LabelSimilarity,
    OpaqueSimilarity,
)


class FloodingMatcher(EventMatcher):
    """Similarity-flooding matching over dependency graphs."""

    name = "SFL"

    def __init__(
        self,
        label_similarity: LabelSimilarity | None = None,
        epsilon: float = 1e-4,
        max_iterations: int = 200,
        threshold: float = 0.0,
    ):
        self.label_similarity = label_similarity
        self.epsilon = epsilon
        self.max_iterations = max_iterations
        self.threshold = threshold

    # ------------------------------------------------------------------
    def similarity(
        self,
        log_first: EventLog,
        log_second: EventLog,
        members_first: Mapping[str, frozenset[str]] | None = None,
        members_second: Mapping[str, frozenset[str]] | None = None,
    ) -> tuple[tuple[str, ...], tuple[str, ...], np.ndarray]:
        """The flooded similarity over (rows, cols) of the two logs."""
        stats_first = compute_statistics(log_first)
        stats_second = compute_statistics(log_second)
        rows = tuple(sorted(stats_first.activities))
        cols = tuple(sorted(stats_second.activities))
        row_index = {node: i for i, node in enumerate(rows)}
        col_index = {node: j for j, node in enumerate(cols)}
        n1, n2 = len(rows), len(cols)

        edges_first = list(stats_first.pair_frequencies)
        edges_second = list(stats_second.pair_frequencies)
        out_degree_first = np.zeros(n1)
        out_degree_second = np.zeros(n2)
        in_degree_first = np.zeros(n1)
        in_degree_second = np.zeros(n2)
        for a, b in edges_first:
            out_degree_first[row_index[a]] += 1
            in_degree_first[row_index[b]] += 1
        for x, y in edges_second:
            out_degree_second[col_index[x]] += 1
            in_degree_second[col_index[y]] += 1

        # Propagation entries: ((a,x) <- (b,y)) and ((b,y) <- (a,x)).
        forward: list[tuple[int, int, int, int, float]] = []
        for a, b in edges_first:
            i_a, i_b = row_index[a], row_index[b]
            for x, y in edges_second:
                j_x, j_y = col_index[x], col_index[y]
                fan_out = out_degree_first[i_a] * out_degree_second[j_x]
                fan_in = in_degree_first[i_b] * in_degree_second[j_y]
                forward.append((i_a, j_x, i_b, j_y, 1.0 / fan_out))
                forward.append((i_b, j_y, i_a, j_x, 1.0 / fan_in))

        sigma0 = self._initial(rows, cols, members_first, members_second)
        sigma = sigma0.copy()
        for _ in range(self.max_iterations):
            incoming = np.zeros((n1, n2))
            for i_src, j_src, i_dst, j_dst, weight in forward:
                incoming[i_dst, j_dst] += sigma[i_src, j_src] * weight
            updated = sigma0 + sigma + incoming
            peak = updated.max()
            if peak > 0:
                updated /= peak
            delta = np.abs(updated - sigma).max()
            sigma = updated
            if delta < self.epsilon:
                break
        return rows, cols, sigma

    def _initial(
        self,
        rows: tuple[str, ...],
        cols: tuple[str, ...],
        members_first: Mapping[str, frozenset[str]] | None,
        members_second: Mapping[str, frozenset[str]] | None,
    ) -> np.ndarray:
        if self.label_similarity is None or isinstance(
            self.label_similarity, OpaqueSimilarity
        ):
            return np.full((len(rows), len(cols)), 0.5)
        scorer: LabelSimilarity = self.label_similarity
        if members_first is not None and members_second is not None:
            scorer = CompositeAwareSimilarity(
                self.label_similarity, dict(members_first), dict(members_second)
            )
        return np.array([[scorer(a, x) for x in cols] for a in rows])

    # ------------------------------------------------------------------
    def evaluate(
        self,
        log_first: EventLog,
        log_second: EventLog,
        members_first: Mapping[str, frozenset[str]],
        members_second: Mapping[str, frozenset[str]],
    ) -> Evaluation:
        rows, cols, sigma = self.similarity(
            log_first, log_second, members_first, members_second
        )
        assignment = max_weight_assignment(sigma)
        pairs = tuple(
            (rows[i], cols[j]) for i, j in assignment if sigma[i, j] > self.threshold
        )
        objective = (
            float(np.mean([sigma[i, j] for i, j in assignment])) if assignment else 0.0
        )
        return Evaluation(objective=objective, pairs=pairs)
