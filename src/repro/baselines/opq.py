"""OPQ — opaque schema matching (Kang & Naughton, SIGMOD 2003).

The opaque-names baseline treats each dependency graph as a weight matrix
``W`` (node frequency on the diagonal, edge frequencies elsewhere) and
scores an injective mapping ``m`` by the agreement of corresponding
cells::

    score(m) = sum over node pairs (a, a') with W1[a,a'] + W2[m(a),m(a')] > 0
               of  1 - |W1[a,a'] - W2[m(a),m(a')]| / (W1[a,a'] + W2[m(a),m(a')])

and searches for the mapping with the maximum score.  The original
formulation enumerates mappings — O(n!) — which is why the paper observes
"OPQ cannot even finish the matching of events more than 30" (Figure 8).
We reproduce that behaviour faithfully:

* exhaustive enumeration up to ``exhaustive_limit`` nodes (the O(n!) regime);
* 2-opt hill climbing with seeded random restarts above it (so the mid
  range stays *slow but feasible*, matching the measured curve);
* a hard ``max_events`` cap beyond which :class:`SearchBudgetExceeded` is
  raised — the experiment harness records these runs as DNF, exactly as
  the paper plots them.
"""

from __future__ import annotations

import random
from itertools import permutations
from typing import Mapping

import numpy as np

from repro.baselines.common import Evaluation, EventMatcher
from repro.exceptions import SearchBudgetExceeded
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog


def weight_matrix(graph: DependencyGraph) -> np.ndarray:
    """The OPQ weight matrix of a dependency graph.

    Diagonal = node frequencies ``f(v)``; off-diagonal = edge frequencies
    (0 when no edge).  Artificial edges are excluded — OPQ predates the
    artificial-event idea, which is precisely why it mishandles
    dislocation.
    """
    nodes = graph.nodes
    index = {node: i for i, node in enumerate(nodes)}
    matrix = np.zeros((len(nodes), len(nodes)))
    for node in nodes:
        matrix[index[node], index[node]] = graph.frequency(node)
    for (source, target), frequency in graph.real_edges.items():
        matrix[index[source], index[target]] = frequency
    return matrix


def mapping_score(w_first: np.ndarray, w_second: np.ndarray, columns: np.ndarray) -> float:
    """Normal score of the mapping row ``i -> columns[i]`` (higher is better)."""
    aligned = w_second[np.ix_(columns, columns)]
    total = w_first + aligned
    active = total > 0
    if not active.any():
        return 0.0
    agreement = 1.0 - np.abs(w_first - aligned)[active] / total[active]
    return float(agreement.sum())


class OPQMatcher(EventMatcher):
    """Opaque-name matching by normal-score search."""

    name = "OPQ"

    def __init__(
        self,
        exhaustive_limit: int = 7,
        restarts: int = 2,
        max_events: int = 30,
        seed: int = 17,
    ):
        if exhaustive_limit < 1:
            raise ValueError(f"exhaustive_limit must be >= 1, got {exhaustive_limit}")
        if max_events < exhaustive_limit:
            raise ValueError("max_events must be >= exhaustive_limit")
        self.exhaustive_limit = exhaustive_limit
        self.restarts = restarts
        self.max_events = max_events
        self.seed = seed

    # ------------------------------------------------------------------
    def best_mapping(
        self, graph_first: DependencyGraph, graph_second: DependencyGraph
    ) -> tuple[dict[str, str], float]:
        """Search for the highest-scoring injective node mapping."""
        # Rows must be the smaller side for an injective row -> column map.
        swapped = len(graph_first.nodes) > len(graph_second.nodes)
        small, large = (
            (graph_second, graph_first) if swapped else (graph_first, graph_second)
        )
        size = len(large.nodes)
        if size > self.max_events:
            raise SearchBudgetExceeded(
                f"OPQ cannot match logs with {size} events "
                f"(cap {self.max_events}); the search is O(n!)"
            )
        w_small = weight_matrix(small)
        w_large = weight_matrix(large)
        n_small = len(small.nodes)

        if size <= self.exhaustive_limit:
            columns, score = self._exhaustive(w_small, w_large, n_small)
        else:
            columns, score = self._hill_climb(w_small, w_large, n_small)

        mapping = {
            small.nodes[i]: large.nodes[int(columns[i])] for i in range(n_small)
        }
        if swapped:
            mapping = {value: key for key, value in mapping.items()}
        return mapping, score

    def _exhaustive(
        self, w_small: np.ndarray, w_large: np.ndarray, n_small: int
    ) -> tuple[np.ndarray, float]:
        best_columns: np.ndarray | None = None
        best_score = -1.0
        for permutation in permutations(range(w_large.shape[0]), n_small):
            columns = np.array(permutation, dtype=int)
            score = mapping_score(w_small, w_large, columns)
            if score > best_score:
                best_score = score
                best_columns = columns
        assert best_columns is not None
        return best_columns, best_score

    def _hill_climb(
        self, w_small: np.ndarray, w_large: np.ndarray, n_small: int
    ) -> tuple[np.ndarray, float]:
        rng = random.Random(self.seed)
        n_large = w_large.shape[0]
        best_columns: np.ndarray | None = None
        best_score = -1.0
        for _ in range(self.restarts):
            candidates = list(range(n_large))
            rng.shuffle(candidates)
            columns = np.array(candidates[:n_small], dtype=int)
            unused = candidates[n_small:]
            score = mapping_score(w_small, w_large, columns)
            improved = True
            while improved:
                improved = False
                # Swap two assigned columns.
                for i in range(n_small):
                    for j in range(i + 1, n_small):
                        columns[i], columns[j] = columns[j], columns[i]
                        trial = mapping_score(w_small, w_large, columns)
                        if trial > score:
                            score = trial
                            improved = True
                        else:
                            columns[i], columns[j] = columns[j], columns[i]
                # Replace an assigned column with an unused one.
                for i in range(n_small):
                    for k, spare in enumerate(unused):
                        original = columns[i]
                        columns[i] = spare
                        trial = mapping_score(w_small, w_large, columns)
                        if trial > score:
                            score = trial
                            unused[k] = original
                            improved = True
                        else:
                            columns[i] = original
            if score > best_score:
                best_score = score
                best_columns = columns.copy()
        assert best_columns is not None
        return best_columns, best_score

    # ------------------------------------------------------------------
    def evaluate(
        self,
        log_first: EventLog,
        log_second: EventLog,
        members_first: Mapping[str, frozenset[str]],
        members_second: Mapping[str, frozenset[str]],
    ) -> Evaluation:
        graph_first = DependencyGraph.from_log(log_first, members=members_first)
        graph_second = DependencyGraph.from_log(log_second, members=members_second)
        mapping, score = self.best_mapping(graph_first, graph_second)
        cells = max(len(graph_first.nodes), len(graph_second.nodes)) ** 2
        return Evaluation(
            objective=score / cells if cells else 0.0,
            pairs=tuple(sorted(mapping.items())),
            diagnostics={"normal_score": score},
        )
