"""Random process-model generation (the BeehiveZ substitute).

Given a list of activity names, :func:`random_process_tree` builds a
random block-structured model containing each activity exactly once, by
recursively partitioning the activity list and picking a control-flow
operator per block.  The operator mix is configurable; the defaults are
sequence-heavy, like real administrative processes (and like the models
the paper's survey describes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence as SequenceType

from repro.exceptions import SynthesisError
from repro.synthesis.process_tree import (
    Choice,
    Leaf,
    Loop,
    Parallel,
    ProcessTree,
    Sequence,
    Silent,
)


@dataclass(frozen=True, slots=True)
class GeneratorProfile:
    """Operator mix and shape knobs for random model generation.

    Probabilities are relative weights for choosing the operator of an
    inner block; ``max_branches`` bounds the fan-out of every operator.
    """

    weight_sequence: float = 5.0
    weight_choice: float = 1.5
    weight_parallel: float = 1.2
    weight_loop: float = 0.3
    max_branches: int = 3
    optional_probability: float = 0.1
    loop_redo_probability: float = 0.25
    #: Real administrative processes are sequences at the top level: most
    #: steps happen in (almost) every trace.  Forcing a sequence root keeps
    #: node frequencies realistically flat instead of giving every
    #: activity a distinctive branch-probability fingerprint.
    root_sequence: bool = True

    def __post_init__(self) -> None:
        weights = (
            self.weight_sequence,
            self.weight_choice,
            self.weight_parallel,
            self.weight_loop,
        )
        if any(weight < 0 for weight in weights) or sum(weights) <= 0:
            raise SynthesisError("operator weights must be non-negative, not all zero")
        if self.max_branches < 2:
            raise SynthesisError(f"max_branches must be >= 2, got {self.max_branches}")


#: A profile without loops or optional branches: every activity occurs in
#: every trace region it guards, which keeps ground truth crisp.  Used by
#: the scalability corpus.
ACYCLIC_PROFILE = GeneratorProfile(weight_loop=0.0, optional_probability=0.0)


def random_process_tree(
    activity_names: SequenceType[str],
    rng: random.Random,
    profile: GeneratorProfile | None = None,
) -> ProcessTree:
    """A random block-structured model over exactly *activity_names*."""
    names = list(activity_names)
    if not names:
        raise SynthesisError("need at least one activity name")
    if len(set(names)) != len(names):
        raise SynthesisError("activity names must be unique")
    profile = profile if profile is not None else GeneratorProfile()
    if profile.root_sequence and len(names) >= 4:
        branch_count = rng.randint(3, min(profile.max_branches + 1, len(names)))
        blocks = _partition(names, branch_count, rng)
        return Sequence([_build(block, rng, profile, allow_loop=True) for block in blocks])
    return _build(names, rng, profile, allow_loop=True)


def _build(
    names: list[str],
    rng: random.Random,
    profile: GeneratorProfile,
    allow_loop: bool,
) -> ProcessTree:
    if len(names) == 1:
        return Leaf(names[0])
    operators = ["sequence", "choice", "parallel"]
    weights = [profile.weight_sequence, profile.weight_choice, profile.weight_parallel]
    if allow_loop and len(names) >= 3 and profile.weight_loop > 0:
        operators.append("loop")
        weights.append(profile.weight_loop)
    operator = rng.choices(operators, weights=weights, k=1)[0]

    if operator == "loop":
        # Loops nest poorly in event logs; one level is plenty of realism.
        redo_size = max(1, len(names) // 4)
        redo_names = names[-redo_size:]
        body_names = names[:-redo_size]
        return Loop(
            _build(body_names, rng, profile, allow_loop=False),
            _build(redo_names, rng, profile, allow_loop=False),
            redo_probability=profile.loop_redo_probability,
        )

    branch_count = rng.randint(2, min(profile.max_branches, len(names)))
    blocks = _partition(names, branch_count, rng)
    children = [_build(block, rng, profile, allow_loop) for block in blocks]
    if operator == "sequence":
        return Sequence(children)
    if operator == "parallel":
        return Parallel(children)
    # Exclusive choice; occasionally make a branch optional via Silent.
    weights_out = [rng.uniform(0.5, 2.0) for _ in children]
    if rng.random() < profile.optional_probability:
        children.append(Silent())
        weights_out.append(0.5)
    return Choice(children, weights=weights_out)


def reweighted(
    tree: ProcessTree, rng: random.Random, spread: float = 0.35
) -> ProcessTree:
    """A structurally identical copy of *tree* with jittered weights.

    The two subsidiaries of the paper's dataset run *different
    implementations* of the same business activities, so the two logs of
    a pair must not share branch probabilities — otherwise raw frequency
    profiles become an unrealistically strong fingerprint.  This clones
    the model, multiplying every choice weight by a factor in
    ``[1 - spread, 1 + spread]`` and jittering loop probabilities, while
    keeping the control flow identical.
    """
    if isinstance(tree, Leaf) or isinstance(tree, Silent):
        return tree
    if isinstance(tree, Loop):
        probability = min(0.9, max(0.05, tree.redo_probability * rng.uniform(1 - spread, 1 + spread)))
        return Loop(
            reweighted(tree.body, rng, spread),
            reweighted(tree.redo, rng, spread),
            redo_probability=probability,
            max_repeats=tree.max_repeats,
        )
    if isinstance(tree, Sequence):
        return Sequence([reweighted(child, rng, spread) for child in tree.children])
    if isinstance(tree, Parallel):
        return Parallel([reweighted(child, rng, spread) for child in tree.children])
    if isinstance(tree, Choice):
        children = [reweighted(child, rng, spread) for child in tree.children]
        base = tree.weights if tree.weights is not None else [1.0] * len(children)
        return Choice(
            children,
            weights=[weight * rng.uniform(1 - spread, 1 + spread) for weight in base],
        )
    raise SynthesisError(f"unknown tree node type {type(tree).__name__}")


def perturbed(tree: ProcessTree, rng: random.Random, swaps: int = 1) -> ProcessTree:
    """A copy of *tree* with up to *swaps* sequence blocks reordered.

    Different implementations of the same business activity often perform
    the same steps in a slightly different order (the paper's Example 1:
    one subsidiary takes payment before checking inventory, the other
    after accepting the order).  This operator injects that structural
    heterogeneity: it picks random ``Sequence`` nodes and swaps two
    adjacent children, changing the dependency-graph edges while keeping
    the activity vocabulary and ground truth intact.
    """
    if swaps < 0:
        raise SynthesisError(f"swaps must be non-negative, got {swaps}")
    result = tree
    for _ in range(swaps):
        sequences = _sequence_nodes(result)
        candidates = [node for node in sequences if len(node.children) >= 2]
        if not candidates:
            break
        target = rng.choice(candidates)
        index = rng.randrange(len(target.children) - 1)
        result = _swap_in_copy(result, target, index)
    return result


def _sequence_nodes(tree: ProcessTree) -> list[Sequence]:
    found: list[Sequence] = []
    if isinstance(tree, Sequence):
        found.append(tree)
    if isinstance(tree, Loop):
        found.extend(_sequence_nodes(tree.body))
        found.extend(_sequence_nodes(tree.redo))
    elif isinstance(tree, (Sequence, Choice, Parallel)):
        for child in tree.children:
            found.extend(_sequence_nodes(child))
    return found


def _swap_in_copy(tree: ProcessTree, target: Sequence, index: int) -> ProcessTree:
    """Rebuild *tree*, swapping children *index*/*index+1* of *target*.

    Identity comparison locates the target node, so equal-looking but
    distinct subtrees are never confused.
    """
    if tree is target:
        children = list(target.children)
        children[index], children[index + 1] = children[index + 1], children[index]
        return Sequence(children)
    if isinstance(tree, Loop):
        return Loop(
            _swap_in_copy(tree.body, target, index),
            _swap_in_copy(tree.redo, target, index),
            redo_probability=tree.redo_probability,
            max_repeats=tree.max_repeats,
        )
    if isinstance(tree, Sequence):
        return Sequence([_swap_in_copy(child, target, index) for child in tree.children])
    if isinstance(tree, Parallel):
        return Parallel([_swap_in_copy(child, target, index) for child in tree.children])
    if isinstance(tree, Choice):
        return Choice(
            [_swap_in_copy(child, target, index) for child in tree.children],
            weights=tree.weights,
        )
    return tree


def _partition(names: list[str], blocks: int, rng: random.Random) -> list[list[str]]:
    """Split *names* into *blocks* contiguous non-empty groups."""
    if blocks >= len(names):
        return [[name] for name in names]
    cut_points = sorted(rng.sample(range(1, len(names)), blocks - 1))
    result: list[list[str]] = []
    start = 0
    for cut in cut_points + [len(names)]:
        result.append(names[start:cut])
        start = cut
    return result
