"""Activity name pools for the real-like corpus.

The paper's real dataset spans "10 different functional areas in the OA
systems of two subsidiaries"; the two subsidiaries label the *same*
business step differently.  Each pool entry is therefore a pair of
surface forms: the first subsidiary's label and the second's.  The two
forms share vocabulary (so q-gram cosine similarity is informative but
imperfect, as in Figure 4), while opacification (below) destroys it (the
Figure 3 setting).
"""

from __future__ import annotations

import hashlib
import random

#: area -> list of (subsidiary-1 label, subsidiary-2 label).
AREA_ACTIVITIES: dict[str, list[tuple[str, str]]] = {
    "order-processing": [
        ("Receive Order", "Order Intake"),
        ("Check Inventory", "Inventory Check"),
        ("Validate Order", "Order Validation"),
        ("Reserve Stock", "Stock Reservation"),
        ("Confirm Order", "Order Confirmation"),
        ("Paid by Cash", "Cash Payment"),
        ("Paid by Credit Card", "Credit Card Payment"),
        ("Schedule Production", "Production Scheduling"),
        ("Assemble Product", "Product Assembly"),
        ("Quality Inspection", "Inspect Quality"),
        ("Pack Goods", "Goods Packing"),
        ("Ship Goods", "Goods Shipment"),
        ("Email Customer", "Customer Notification"),
        ("Issue Invoice", "Invoice Issuing"),
        ("Archive Order", "Order Archiving"),
        ("Handle Return", "Return Handling"),
    ],
    "procurement": [
        ("Create Purchase Request", "Purchase Request Entry"),
        ("Approve Purchase Request", "Request Approval"),
        ("Select Supplier", "Supplier Selection"),
        ("Request Quotation", "Quotation Request"),
        ("Compare Quotations", "Quotation Comparison"),
        ("Negotiate Terms", "Terms Negotiation"),
        ("Issue Purchase Order", "Purchase Order Issuing"),
        ("Receive Goods", "Goods Receipt"),
        ("Inspect Delivery", "Delivery Inspection"),
        ("Book Invoice", "Invoice Booking"),
        ("Approve Payment", "Payment Approval"),
        ("Execute Payment", "Payment Execution"),
        ("Update Supplier Rating", "Supplier Rating Update"),
        ("Close Purchase Order", "Purchase Order Closing"),
    ],
    "hr-onboarding": [
        ("Post Job Opening", "Job Posting"),
        ("Screen Applications", "Application Screening"),
        ("Schedule Interview", "Interview Scheduling"),
        ("Conduct Interview", "Interview Session"),
        ("Check References", "Reference Check"),
        ("Make Offer", "Offer Preparation"),
        ("Sign Contract", "Contract Signing"),
        ("Create Employee Record", "Employee Record Creation"),
        ("Provision Accounts", "Account Provisioning"),
        ("Assign Workplace", "Workplace Assignment"),
        ("Plan Training", "Training Plan"),
        ("Conduct Orientation", "Orientation Session"),
        ("Confirm Probation", "Probation Confirmation"),
    ],
    "expense-claims": [
        ("Submit Expense Claim", "Expense Claim Entry"),
        ("Attach Receipts", "Receipt Upload"),
        ("Check Policy Compliance", "Policy Check"),
        ("Manager Approval", "Approve by Manager"),
        ("Finance Review", "Review by Finance"),
        ("Request Clarification", "Clarification Request"),
        ("Approve Claim", "Claim Approval"),
        ("Reject Claim", "Claim Rejection"),
        ("Reimburse Employee", "Employee Reimbursement"),
        ("Book Expense", "Expense Booking"),
        ("Archive Claim", "Claim Archiving"),
    ],
    "it-service": [
        ("Open Ticket", "Ticket Creation"),
        ("Categorize Ticket", "Ticket Categorization"),
        ("Assign Technician", "Technician Assignment"),
        ("Diagnose Issue", "Issue Diagnosis"),
        ("Escalate Ticket", "Ticket Escalation"),
        ("Apply Fix", "Fix Application"),
        ("Test Resolution", "Resolution Testing"),
        ("Update Knowledge Base", "Knowledge Base Update"),
        ("Confirm with User", "User Confirmation"),
        ("Close Ticket", "Ticket Closing"),
        ("Survey Satisfaction", "Satisfaction Survey"),
    ],
    "loan-approval": [
        ("Receive Application", "Application Receipt"),
        ("Verify Identity", "Identity Verification"),
        ("Check Credit History", "Credit History Check"),
        ("Assess Collateral", "Collateral Assessment"),
        ("Calculate Risk Score", "Risk Scoring"),
        ("Underwriter Review", "Review by Underwriter"),
        ("Request Documents", "Document Request"),
        ("Approve Loan", "Loan Approval"),
        ("Reject Application", "Application Rejection"),
        ("Prepare Contract", "Contract Preparation"),
        ("Disburse Funds", "Funds Disbursement"),
        ("Register Mortgage", "Mortgage Registration"),
    ],
    "insurance-claims": [
        ("Register Claim", "Claim Registration"),
        ("Validate Policy", "Policy Validation"),
        ("Assign Adjuster", "Adjuster Assignment"),
        ("Inspect Damage", "Damage Inspection"),
        ("Estimate Loss", "Loss Estimation"),
        ("Detect Fraud", "Fraud Detection"),
        ("Negotiate Settlement", "Settlement Negotiation"),
        ("Approve Settlement", "Settlement Approval"),
        ("Pay Claim", "Claim Payment"),
        ("Recover from Third Party", "Third Party Recovery"),
        ("Close Claim", "Claim Closing"),
    ],
    "manufacturing": [
        ("Plan Production Run", "Production Run Planning"),
        ("Issue Materials", "Material Issuing"),
        ("Setup Machine", "Machine Setup"),
        ("Run First Article", "First Article Run"),
        ("Inspect First Article", "First Article Inspection"),
        ("Start Batch", "Batch Start"),
        ("Monitor Process", "Process Monitoring"),
        ("Record Downtime", "Downtime Recording"),
        ("Complete Batch", "Batch Completion"),
        ("Final Inspection", "Inspect Final Product"),
        ("Move to Warehouse", "Warehouse Transfer"),
        ("Update Stock Ledger", "Stock Ledger Update"),
    ],
    "logistics": [
        ("Create Shipment", "Shipment Creation"),
        ("Plan Route", "Route Planning"),
        ("Book Carrier", "Carrier Booking"),
        ("Prepare Customs Papers", "Customs Paper Preparation"),
        ("Load Truck", "Truck Loading"),
        ("Depart Warehouse", "Warehouse Departure"),
        ("Customs Clearance", "Clear Customs"),
        ("Track Transit", "Transit Tracking"),
        ("Deliver to Customer", "Customer Delivery"),
        ("Collect Proof of Delivery", "Proof of Delivery Collection"),
        ("Handle Exception", "Exception Handling"),
        ("Settle Freight Invoice", "Freight Invoice Settlement"),
    ],
    "customer-support": [
        ("Receive Complaint", "Complaint Receipt"),
        ("Acknowledge Customer", "Customer Acknowledgement"),
        ("Classify Complaint", "Complaint Classification"),
        ("Investigate Root Cause", "Root Cause Investigation"),
        ("Propose Remedy", "Remedy Proposal"),
        ("Offer Compensation", "Compensation Offer"),
        ("Customer Accepts", "Acceptance by Customer"),
        ("Customer Rejects", "Rejection by Customer"),
        ("Execute Remedy", "Remedy Execution"),
        ("Verify Resolution", "Resolution Verification"),
        ("Close Complaint", "Complaint Closing"),
    ],
}

FUNCTIONAL_AREAS: tuple[str, ...] = tuple(AREA_ACTIVITIES)


def area_pool(area: str) -> list[tuple[str, str]]:
    """The (label-1, label-2) pool of *area*."""
    try:
        return list(AREA_ACTIVITIES[area])
    except KeyError:
        raise KeyError(
            f"unknown functional area {area!r}; known: {sorted(AREA_ACTIVITIES)}"
        ) from None


def opaque_name(label: str, salt: str = "") -> str:
    """A deterministic garbled surface form of *label*.

    Mimics the paper's encoding-mangled names (the "?????" events): the
    output shares no q-grams with the input, so typographic similarity is
    driven to zero while remaining deterministic for reproducibility.
    """
    digest = hashlib.sha256((salt + label).encode("utf-8")).hexdigest()
    return f"0x{digest[:8]}"


def garble_mapping(
    activities: list[str], rng: random.Random, fraction: float = 1.0
) -> dict[str, str]:
    """Opacify a random *fraction* of *activities* (deterministic in *rng*)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    count = round(len(activities) * fraction)
    chosen = rng.sample(sorted(activities), count)
    salt = str(rng.random())
    return {activity: opaque_name(activity, salt) for activity in chosen}
