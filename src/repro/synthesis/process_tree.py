"""Block-structured process trees: the workload model generator.

The paper's synthetic evaluation generates "random process specifications"
with BeehiveZ and plays them out into event logs.  We reproduce that with
the standard process-tree formalism: a block-structured workflow model
whose inner nodes are the control-flow operators

* ``Sequence`` — children execute in order;
* ``Choice`` — exactly one child executes (XOR, optionally weighted);
* ``Parallel`` — all children execute, arbitrarily interleaved (AND);
* ``Loop`` — body, then repeatedly (redo, body) with a geometric stop.

Leaves are activities; a ``Silent`` leaf produces nothing (used for
optional behaviour).  Every tree can *sample* a trace, which is how
:mod:`repro.synthesis.playout` builds logs.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence as SequenceType

from repro.exceptions import SynthesisError


class ProcessTree(ABC):
    """A node of a block-structured process model."""

    @abstractmethod
    def activities(self) -> frozenset[str]:
        """All activity labels under this node."""

    @abstractmethod
    def sample(self, rng: random.Random) -> list[str]:
        """Sample one execution (a list of activity labels)."""

    @abstractmethod
    def describe(self) -> str:
        """A compact textual rendering (for tests and debugging)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class Leaf(ProcessTree):
    """A single activity."""

    __slots__ = ("activity",)

    def __init__(self, activity: str):
        if not activity:
            raise SynthesisError("a leaf needs a non-empty activity name")
        self.activity = activity

    def activities(self) -> frozenset[str]:
        return frozenset({self.activity})

    def sample(self, rng: random.Random) -> list[str]:
        return [self.activity]

    def describe(self) -> str:
        return self.activity


class Silent(ProcessTree):
    """A silent step (tau): contributes nothing to traces."""

    __slots__ = ()

    def activities(self) -> frozenset[str]:
        return frozenset()

    def sample(self, rng: random.Random) -> list[str]:
        return []

    def describe(self) -> str:
        return "tau"


class _Operator(ProcessTree):
    """Shared plumbing for inner nodes."""

    __slots__ = ("children",)
    _symbol = "?"

    def __init__(self, children: SequenceType[ProcessTree]):
        children = tuple(children)
        if len(children) < 1:
            raise SynthesisError(f"{type(self).__name__} needs at least one child")
        labels: set[str] = set()
        for child in children:
            child_labels = child.activities()
            if labels & child_labels:
                raise SynthesisError(
                    f"duplicate activities across children: {sorted(labels & child_labels)}"
                )
            labels.update(child_labels)
        self.children = children

    def activities(self) -> frozenset[str]:
        result: set[str] = set()
        for child in self.children:
            result.update(child.activities())
        return frozenset(result)

    def describe(self) -> str:
        inner = ", ".join(child.describe() for child in self.children)
        return f"{self._symbol}({inner})"


class Sequence(_Operator):
    """Children execute one after another."""

    __slots__ = ()
    _symbol = "->"

    def sample(self, rng: random.Random) -> list[str]:
        trace: list[str] = []
        for child in self.children:
            trace.extend(child.sample(rng))
        return trace


class Choice(_Operator):
    """Exactly one child executes (exclusive choice)."""

    __slots__ = ("weights",)
    _symbol = "X"

    def __init__(
        self,
        children: SequenceType[ProcessTree],
        weights: SequenceType[float] | None = None,
    ):
        super().__init__(children)
        if weights is not None:
            weights = tuple(weights)
            if len(weights) != len(self.children):
                raise SynthesisError("one weight per child required")
            if any(weight <= 0 for weight in weights):
                raise SynthesisError("choice weights must be positive")
            self.weights: tuple[float, ...] | None = weights
        else:
            self.weights = None

    def sample(self, rng: random.Random) -> list[str]:
        if self.weights is None:
            child = rng.choice(self.children)
        else:
            child = rng.choices(self.children, weights=self.weights, k=1)[0]
        return child.sample(rng)


class Parallel(_Operator):
    """All children execute, interleaved arbitrarily (AND split/join)."""

    __slots__ = ()
    _symbol = "+"

    def sample(self, rng: random.Random) -> list[str]:
        branches = [child.sample(rng) for child in self.children]
        return interleave(branches, rng)


class Loop(ProcessTree):
    """``body (redo body)*``: redo with probability *redo_probability*.

    The repeat count is geometric, truncated at *max_repeats* extra rounds
    so traces stay finite even with adversarial probabilities.
    """

    __slots__ = ("body", "redo", "redo_probability", "max_repeats")

    def __init__(
        self,
        body: ProcessTree,
        redo: ProcessTree,
        redo_probability: float = 0.3,
        max_repeats: int = 3,
    ):
        if not 0.0 <= redo_probability < 1.0:
            raise SynthesisError(
                f"redo_probability must be in [0, 1), got {redo_probability}"
            )
        if max_repeats < 0:
            raise SynthesisError(f"max_repeats must be >= 0, got {max_repeats}")
        if body.activities() & redo.activities():
            raise SynthesisError("loop body and redo must not share activities")
        self.body = body
        self.redo = redo
        self.redo_probability = redo_probability
        self.max_repeats = max_repeats

    def activities(self) -> frozenset[str]:
        return self.body.activities() | self.redo.activities()

    def sample(self, rng: random.Random) -> list[str]:
        trace = self.body.sample(rng)
        repeats = 0
        while repeats < self.max_repeats and rng.random() < self.redo_probability:
            trace.extend(self.redo.sample(rng))
            trace.extend(self.body.sample(rng))
            repeats += 1
        return trace

    def describe(self) -> str:
        return f"*({self.body.describe()}, {self.redo.describe()})"


def interleave(branches: list[list[str]], rng: random.Random) -> list[str]:
    """A uniformly random interleaving preserving each branch's order."""
    pending = [list(branch) for branch in branches if branch]
    result: list[str] = []
    while pending:
        weights = [len(branch) for branch in pending]
        index = rng.choices(range(len(pending)), weights=weights, k=1)[0]
        result.append(pending[index].pop(0))
        if not pending[index]:
            pending.pop(index)
    return result
