"""Benchmark corpora: the proprietary-dataset substitutes.

The paper evaluates on 149 real event-log pairs from a bus manufacturer
(ground truth by 49 subject-matter experts) plus BeehiveZ-generated
synthetic logs.  Neither is available, so this module builds deterministic
synthetic equivalents that exercise the same phenomena:

* :func:`build_real_like_corpus` — 149 log pairs over 10 functional
  areas; the first group of 103 pairs has no composite events and is
  split into the paper's dislocation testbeds DS-F (23 pairs, dislocated
  at trace ends), DS-B (22, at trace beginnings) and DS-FB (58, both);
  the remaining 46 pairs contain composite events.
* :func:`build_scalability_pairs` — the Figure 8 corpus: random models of
  10..100 activities, two logs played out per model under disjoint
  vocabularies (truth links ``Activity i`` to ``Task i``).
* :func:`build_dislocation_pair` — the Figure 9 setup: one model, two
  logs, the first ``m`` events of every trace removed from the second.

Every builder takes a seed and is bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import SynthesisError
from repro.logs.log import EventLog
from repro.matching.evaluation import Correspondence
from repro.synthesis.generator import (
    ACYCLIC_PROFILE,
    GeneratorProfile,
    perturbed,
    random_process_tree,
    reweighted,
)
from repro.synthesis.mutations import dislocate, opacify, split_activities
from repro.synthesis.names import FUNCTIONAL_AREAS, area_pool
from repro.synthesis.process_tree import Sequence as SequenceNode
from repro.synthesis.playout import play_out

TESTBED_DSF = "DS-F"
TESTBED_DSB = "DS-B"
TESTBED_DSFB = "DS-FB"
TESTBED_COMPOSITE = "COMPOSITE"

#: Group sizes of the paper's real dataset (Section 5.1).
REAL_CORPUS_PLAN: tuple[tuple[str, int], ...] = (
    (TESTBED_DSF, 23),
    (TESTBED_DSB, 22),
    (TESTBED_DSFB, 58),
    (TESTBED_COMPOSITE, 46),
)


@dataclass(frozen=True, slots=True)
class LogPair:
    """Two heterogeneous logs of the same process, with ground truth."""

    name: str
    area: str
    testbed: str
    log_first: EventLog
    log_second: EventLog
    truth: tuple[Correspondence, ...]
    diagnostics: dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def activity_count(self) -> int:
        return max(len(self.log_first.activities()), len(self.log_second.activities()))


def _truth_from_mapping(
    log_first: EventLog,
    log_second: EventLog,
    rename: dict[str, str],
    composite_parts: dict[str, tuple[str, ...]] | None = None,
) -> tuple[Correspondence, ...]:
    """Ground truth for activities surviving in both logs.

    ``rename`` maps subsidiary-1 activity names to their subsidiary-2
    surface forms; ``composite_parts`` maps a subsidiary-1 activity to
    the run of sub-steps it was split into in ``log_first``.
    """
    activities_first = log_first.activities()
    activities_second = log_second.activities()
    truth: list[Correspondence] = []
    composite_parts = composite_parts or {}
    for original, renamed in sorted(rename.items()):
        if renamed not in activities_second:
            continue  # dislocated away entirely
        parts = composite_parts.get(original)
        if parts is not None:
            present = frozenset(part for part in parts if part in activities_first)
            if present:
                truth.append(Correspondence(present, frozenset({renamed})))
        elif original in activities_first:
            truth.append(Correspondence.one_to_one(original, renamed))
    return tuple(truth)


def _dislocate_clamped(log: EventLog, count: int, where: str) -> EventLog:
    """Dislocate by *count*, backing off so most traces (and some
    structure) survive — short traces in heavily branching models would
    otherwise vanish entirely."""
    for attempt in range(count, 0, -1):
        try:
            result = dislocate(log, attempt, where)  # type: ignore[arg-type]
        except SynthesisError:
            continue
        if len(result) >= max(1, len(log) // 2) and len(result.activities()) >= 3:
            return result
    return log


def make_log_pair(
    area: str,
    size: int,
    testbed: str,
    seed: int,
    traces_per_log: int = 60,
    dislocation: int = 1,
    opaque_fraction: float = 0.25,
    composite_splits: int = 0,
    structural_swaps: int = 1,
    profile: GeneratorProfile | None = None,
    name: str | None = None,
) -> LogPair:
    """Build one heterogeneous log pair for *area* (see module docstring).

    Dislocation follows the paper's Challenge 2 literally: the first
    subsidiary's process contains *extra* activities at the trace
    boundaries (``dislocation`` of them per affected end) that the second
    subsidiary's process lacks — like ``Order Accepted(1)`` in Example 1 —
    so the shared part starts/ends at different positions in the two logs.
    ``log_first`` uses subsidiary-1 labels (with *composite_splits* of its
    activities split into sub-step runs); ``log_second`` uses subsidiary-2
    labels, a fraction of them garbled.
    """
    if testbed not in (TESTBED_DSF, TESTBED_DSB, TESTBED_DSFB, TESTBED_COMPOSITE):
        raise SynthesisError(f"unknown testbed {testbed!r}")
    rng = random.Random(seed)
    extra_head = dislocation if testbed in (TESTBED_DSB, TESTBED_DSFB) else 0
    extra_tail = dislocation if testbed in (TESTBED_DSF, TESTBED_DSFB) else 0
    # Dislocation may be one-sided (only one subsidiary records the extra
    # steps — the Example 1 situation, where event A then has no
    # predecessor at all) or two-sided (each subsidiary has its own
    # boundary steps).  Real integrations contain both; mix them.
    head_mode = rng.choice(("first", "second", "both"))
    tail_mode = rng.choice(("first", "second", "both"))

    pool = area_pool(area)
    if size > len(pool):
        raise SynthesisError(
            f"area {area!r} has only {len(pool)} activities, requested {size}"
        )
    # Each subsidiary gets its *own* exclusive boundary activities (like
    # Order Accepted(1) in Example 1, which only the second log records).
    # Back the extras off to what the name pool can supply (two-sided
    # ends consume two pool entries per dislocated event).
    def _pool_demand() -> int:
        head_sides = 2 if head_mode == "both" else 1
        tail_sides = 2 if tail_mode == "both" else 1
        return size + extra_head * head_sides + extra_tail * tail_sides

    while _pool_demand() > len(pool):
        if extra_tail >= extra_head and extra_tail > 0:
            extra_tail -= 1
        elif extra_head > 0:
            extra_head -= 1
        else:
            break
    head_first_count = extra_head if head_mode in ("first", "both") else 0
    head_second_count = extra_head if head_mode in ("second", "both") else 0
    tail_first_count = extra_tail if tail_mode in ("first", "both") else 0
    tail_second_count = extra_tail if tail_mode in ("second", "both") else 0
    total_extras = (
        head_first_count + head_second_count + tail_first_count + tail_second_count
    )
    chosen = rng.sample(pool, size + total_extras)
    cursor = size
    core = chosen[:cursor]
    head_first = chosen[cursor : cursor + head_first_count]
    cursor += head_first_count
    head_second = chosen[cursor : cursor + head_second_count]
    cursor += head_second_count
    tail_first = chosen[cursor : cursor + tail_first_count]
    cursor += tail_first_count
    tail_second = chosen[cursor:]
    core_labels = [first for first, _ in core]
    rename = {first: second for first, second in core}

    core_tree = random_process_tree(core_labels, rng, profile)

    def assemble(head: list[tuple[str, str]], middle, tail: list[tuple[str, str]],
                 label_index: int):
        blocks: list = []
        if head:
            blocks.append(
                random_process_tree([entry[label_index] for entry in head], rng, profile)
            )
        blocks.append(middle)
        if tail:
            blocks.append(
                random_process_tree([entry[label_index] for entry in tail], rng, profile)
            )
        return SequenceNode(blocks) if len(blocks) > 1 else middle

    tree_first = assemble(head_first, core_tree, tail_first, 0)
    log_first = play_out(
        tree_first, traces_per_log, rng, name=f"{area}-s1", case_prefix="s1"
    )

    # The second subsidiary runs a different implementation of the shared
    # core — same steps, slightly different step order, different branch
    # probabilities — plus its own boundary extras.
    core_second = reweighted(perturbed(core_tree, rng, swaps=structural_swaps), rng)
    tree_second = assemble(head_second, core_second, tail_second, 1)
    log_second = play_out(
        tree_second, traces_per_log, rng, name=f"{area}-s2", case_prefix="s2"
    ).relabel(rename)

    if opaque_fraction > 0.0:
        log_second, garbled = opacify(log_second, rng, opaque_fraction)
        rename = {
            original: garbled.get(renamed, renamed)
            for original, renamed in rename.items()
        }

    composite_parts: dict[str, tuple[str, ...]] | None = None
    if composite_splits > 0:
        split_targets = rng.sample(sorted(log_first.activities()), composite_splits)
        log_first, composite_parts = split_activities(
            log_first, split_targets, parts=rng.choice((2, 2, 3))
        )

    truth = _truth_from_mapping(log_first, log_second, rename, composite_parts)
    return LogPair(
        name=name if name is not None else f"{area}-{testbed}-{seed}",
        area=area,
        testbed=testbed,
        log_first=log_first,
        log_second=log_second,
        truth=truth,
        diagnostics={"size": float(size), "seed": float(seed)},
    )


def build_real_like_corpus(
    seed: int = 2014,
    traces_per_log: int = 100,
    plan: Sequence[tuple[str, int]] = REAL_CORPUS_PLAN,
) -> list[LogPair]:
    """The 149-pair substitute for the bus manufacturer's dataset."""
    rng = random.Random(seed)
    pairs: list[LogPair] = []
    index = 0
    for testbed, count in plan:
        for _ in range(count):
            area = FUNCTIONAL_AREAS[index % len(FUNCTIONAL_AREAS)]
            pool_size = len(area_pool(area))
            dislocation = rng.choice((1, 2, 2, 3))
            extras = dislocation * (2 if testbed == TESTBED_DSFB else 1)
            size = rng.randint(6, max(6, min(11, pool_size - extras)))
            composite_splits = rng.randint(1, 2) if testbed == TESTBED_COMPOSITE else 0
            swaps = 1 if rng.random() < 0.5 else 0
            pairs.append(
                make_log_pair(
                    area=area,
                    size=size,
                    testbed=testbed,
                    seed=rng.randrange(2**31),
                    traces_per_log=traces_per_log,
                    dislocation=dislocation,
                    composite_splits=composite_splits,
                    structural_swaps=swaps,
                    name=f"pair-{index:03d}-{area}-{testbed}",
                )
            )
            index += 1
    return pairs


def singleton_testbeds(corpus: list[LogPair]) -> dict[str, list[LogPair]]:
    """Group the non-composite pairs of *corpus* by dislocation testbed."""
    testbeds: dict[str, list[LogPair]] = {
        TESTBED_DSF: [],
        TESTBED_DSB: [],
        TESTBED_DSFB: [],
    }
    for pair in corpus:
        if pair.testbed in testbeds:
            testbeds[pair.testbed].append(pair)
    return testbeds


def composite_pairs(corpus: list[LogPair]) -> list[LogPair]:
    """The composite-event pairs of *corpus*."""
    return [pair for pair in corpus if pair.testbed == TESTBED_COMPOSITE]


# ----------------------------------------------------------------------
# Scalability corpus (Figure 8)
# ----------------------------------------------------------------------
def _generic_names(count: int, prefix: str = "Activity") -> list[str]:
    return [f"{prefix} {index:03d}" for index in range(count)]


def build_scalability_pair(
    size: int,
    seed: int,
    traces_per_log: int = 80,
    name: str | None = None,
) -> LogPair:
    """One synthetic pair of *size* activities; truth links ``Activity i``
    to ``Task i``.

    The paper generates both logs from the same specification, so "events
    in two logs with the same name correspond to each other" — that is a
    ground-truth statement, not a hint available to the (structural-only)
    matchers.  We relabel the second log to a disjoint vocabulary so that
    no matcher can accidentally benefit from name equality (e.g. through
    deterministic tie-breaking over sorted node names).
    """
    rng = random.Random(seed)
    names = _generic_names(size)
    # Shuffled task indices: otherwise both vocabularies sort in truth
    # order and any matcher breaking ties lexicographically would recover
    # the mapping by accident.
    task_names = _generic_names(size, prefix="Task")
    rng.shuffle(task_names)
    rename = dict(zip(names, task_names))
    tree = random_process_tree(names, rng, ACYCLIC_PROFILE)
    log_first = play_out(tree, traces_per_log, rng, name=f"synthetic-{size}-a")
    log_second = play_out(
        reweighted(tree, rng), traces_per_log, rng, name=f"synthetic-{size}-b"
    ).relabel(rename)
    activities_second = log_second.activities()
    truth = tuple(
        Correspondence.one_to_one(activity, rename[activity])
        for activity in sorted(log_first.activities())
        if rename[activity] in activities_second
    )
    return LogPair(
        name=name if name is not None else f"synthetic-{size}-{seed}",
        area="synthetic",
        testbed="SCALE",
        log_first=log_first,
        log_second=log_second,
        truth=truth,
        diagnostics={"size": float(size), "seed": float(seed)},
    )


def build_scalability_pairs(
    sizes: Sequence[int] = tuple(range(10, 101, 10)),
    per_size: int = 20,
    seed: int = 2014,
    traces_per_log: int = 80,
) -> dict[int, list[LogPair]]:
    """The Figure 8 corpus: *per_size* pairs for each event count."""
    rng = random.Random(seed)
    corpus: dict[int, list[LogPair]] = {}
    for size in sizes:
        corpus[size] = [
            build_scalability_pair(
                size, rng.randrange(2**31), traces_per_log,
                name=f"synthetic-{size}-{index}",
            )
            for index in range(per_size)
        ]
    return corpus


def build_dislocation_pair(
    size: int,
    removed: int,
    seed: int,
    traces_per_log: int = 80,
) -> LogPair:
    """The Figure 9 setup: remove the first *removed* events per trace."""
    base = build_scalability_pair(size, seed, traces_per_log)
    log_second = (
        dislocate(base.log_second, removed, "begin") if removed else base.log_second
    )
    activities_second = log_second.activities()
    truth = tuple(
        correspondence
        for correspondence in base.truth
        if correspondence.right <= activities_second
    )
    return LogPair(
        name=f"dislocated-{size}-m{removed}-{seed}",
        area="synthetic",
        testbed="DISLOC",
        log_first=base.log_first,
        log_second=log_second,
        truth=truth,
        diagnostics={"size": float(size), "removed": float(removed)},
    )
