"""Playing out process models into event logs.

The counterpart of the log-generation step of the paper's synthetic
evaluation [18]: sample traces from a model, attach case ids and
monotonically increasing synthetic timestamps, and collect an
:class:`~repro.logs.log.EventLog`.
"""

from __future__ import annotations

import random

from repro.exceptions import SynthesisError
from repro.logs.events import Event, Trace
from repro.logs.log import EventLog
from repro.synthesis.process_tree import ProcessTree

#: Synthetic epoch all generated timestamps start from (2014-06-22, the
#: first day of the SIGMOD conference the paper appeared at).
BASE_TIMESTAMP = 1_403_395_200.0


def play_out(
    tree: ProcessTree,
    num_traces: int,
    rng: random.Random,
    name: str = "synthetic",
    case_prefix: str = "case",
    with_timestamps: bool = True,
    mean_step_seconds: float = 3_600.0,
) -> EventLog:
    """Sample *num_traces* traces from *tree* into an event log.

    Empty samples (a model whose choices can produce no events) are
    re-drawn a bounded number of times; a model that only produces empty
    traces raises :class:`SynthesisError`.
    """
    if num_traces < 1:
        raise SynthesisError(f"num_traces must be >= 1, got {num_traces}")
    log = EventLog(name=name)
    clock = BASE_TIMESTAMP
    for index in range(num_traces):
        activities = tree.sample(rng)
        redraws = 0
        while not activities:
            redraws += 1
            if redraws > 100:
                raise SynthesisError("model produces only empty traces")
            activities = tree.sample(rng)
        events = []
        for activity in activities:
            if with_timestamps:
                clock += rng.expovariate(1.0 / mean_step_seconds)
                events.append(Event(activity, timestamp=clock))
            else:
                events.append(Event(activity))
        log.append(Trace(events, case_id=f"{case_prefix}-{index}"))
    return log
