"""Synthetic workload generation: models, playout, mutations, corpora."""

from repro.synthesis.corpus import (
    LogPair,
    build_dislocation_pair,
    build_real_like_corpus,
    build_scalability_pair,
    build_scalability_pairs,
    composite_pairs,
    make_log_pair,
    singleton_testbeds,
)
from repro.synthesis.examples import figure1_logs, turbine_order_logs
from repro.synthesis.generator import (
    ACYCLIC_PROFILE,
    GeneratorProfile,
    random_process_tree,
)
from repro.synthesis.mutations import dislocate, opacify, split_activities
from repro.synthesis.playout import play_out
from repro.synthesis.process_tree import (
    Choice,
    Leaf,
    Loop,
    Parallel,
    ProcessTree,
    Sequence,
    Silent,
)

__all__ = [
    "LogPair",
    "make_log_pair",
    "build_real_like_corpus",
    "build_scalability_pair",
    "build_scalability_pairs",
    "build_dislocation_pair",
    "singleton_testbeds",
    "composite_pairs",
    "figure1_logs",
    "turbine_order_logs",
    "GeneratorProfile",
    "ACYCLIC_PROFILE",
    "random_process_tree",
    "play_out",
    "dislocate",
    "opacify",
    "split_activities",
    "ProcessTree",
    "Leaf",
    "Silent",
    "Sequence",
    "Choice",
    "Parallel",
    "Loop",
]
