"""Log mutation operators: the heterogeneity injectors.

Each operator reproduces one of the paper's three challenges on synthetic
data:

* :func:`opacify` — opaque names (Challenge 1);
* :func:`dislocate` — dislocated traces (Challenge 2, the Figure 9 setup:
  "synthetically remove the first m events of each trace in one log");
* :func:`split_activities` — composite events (Challenge 3: one event in
  a log corresponds to a run of sub-steps in the other).
"""

from __future__ import annotations

import random
from typing import Literal, Sequence

from repro.exceptions import SynthesisError
from repro.logs.events import Event, Trace
from repro.logs.filtering import drop_trace_prefixes, drop_trace_suffixes
from repro.logs.log import EventLog
from repro.synthesis.names import garble_mapping


def opacify(
    log: EventLog, rng: random.Random, fraction: float = 1.0
) -> tuple[EventLog, dict[str, str]]:
    """Garble a *fraction* of activity names; returns (log, mapping)."""
    mapping = garble_mapping(sorted(log.activities()), rng, fraction)
    return log.relabel(mapping), mapping


DislocationSite = Literal["begin", "end", "both"]


def dislocate(log: EventLog, count: int, where: DislocationSite = "begin") -> EventLog:
    """Remove *count* events from the chosen end(s) of every trace."""
    if count < 0:
        raise SynthesisError(f"count must be non-negative, got {count}")
    result = log
    if where in ("begin", "both"):
        result = drop_trace_prefixes(result, count)
    if where in ("end", "both"):
        result = drop_trace_suffixes(result, count)
    if len(result) == 0:
        raise SynthesisError(
            f"dislocating {count} events at {where!r} removed every trace"
        )
    return result


def split_activities(
    log: EventLog,
    targets: Sequence[str],
    parts: int = 2,
    separator: str = " / step ",
) -> tuple[EventLog, dict[str, tuple[str, ...]]]:
    """Split each target activity into a run of *parts* sub-steps.

    Every occurrence of a target ``a`` becomes the consecutive run
    ``a / step 1, ..., a / step k``, which is exactly the situation where
    the *other* log's single event is a composite of this log's events.
    Returns the rewritten log and ``{activity: (part names...)}``.
    """
    if parts < 2:
        raise SynthesisError(f"parts must be >= 2, got {parts}")
    activities = log.activities()
    unknown = set(targets) - set(activities)
    if unknown:
        raise SynthesisError(f"activities not in log: {sorted(unknown)}")
    part_names = {
        activity: tuple(f"{activity}{separator}{i + 1}" for i in range(parts))
        for activity in targets
    }

    def rewrite(trace: Trace) -> Trace:
        events: list[Event] = []
        for event in trace:
            pieces = part_names.get(event.activity)
            if pieces is None:
                events.append(event)
            else:
                events.extend(
                    Event(piece, event.timestamp, event.attributes) for piece in pieces
                )
        return Trace(events, case_id=trace.case_id)

    return log.map_traces(rewrite), part_names


def drop_random_events(
    log: EventLog, rng: random.Random, probability: float
) -> EventLog:
    """Delete each event independently with *probability* (logging gaps).

    Real logs miss events — crashed handlers, manual steps never entered.
    Traces that lose all events are dropped.
    """
    if not 0.0 <= probability < 1.0:
        raise SynthesisError(f"probability must be in [0, 1), got {probability}")

    def thin(trace: Trace) -> Trace:
        return Trace(
            (event for event in trace if rng.random() >= probability),
            case_id=trace.case_id,
        )

    return log.map_traces(thin)


def duplicate_random_events(
    log: EventLog, rng: random.Random, probability: float
) -> EventLog:
    """Duplicate each event independently with *probability* (retries,
    double-clicks, at-least-once delivery)."""
    if not 0.0 <= probability < 1.0:
        raise SynthesisError(f"probability must be in [0, 1), got {probability}")

    def thicken(trace: Trace) -> Trace:
        events: list[Event] = []
        for event in trace:
            events.append(event)
            if rng.random() < probability:
                events.append(event)
        return Trace(events, case_id=trace.case_id)

    return log.map_traces(thicken)


def swap_adjacent_events(
    log: EventLog, rng: random.Random, probability: float
) -> EventLog:
    """Swap adjacent event pairs with *probability* (clock skew between
    systems reorders near-simultaneous events)."""
    if not 0.0 <= probability < 1.0:
        raise SynthesisError(f"probability must be in [0, 1), got {probability}")

    def jitter(trace: Trace) -> Trace:
        events = list(trace.events)
        index = 0
        while index < len(events) - 1:
            if rng.random() < probability:
                events[index], events[index + 1] = events[index + 1], events[index]
                index += 2  # do not cascade a swapped event further
            else:
                index += 1
        return Trace(events, case_id=trace.case_id)

    return log.map_traces(jitter)


def shuffle_case_order(log: EventLog, rng: random.Random) -> EventLog:
    """Reorder traces randomly (frequencies are order-invariant; used to
    check that matchers do not accidentally depend on trace order)."""
    traces = list(log.traces)
    rng.shuffle(traces)
    result = EventLog(name=log.name)
    for trace in traces:
        result.append(trace)
    return result
