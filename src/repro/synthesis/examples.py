"""The paper's running example (Figure 1) as ready-made fixtures.

Two reconstructions of the turbine-order-processing fragment are
provided: :func:`figure1_logs` with the paper's single-letter shorthand
(A-F vs 1-6) and :func:`turbine_order_logs` with the full activity names.
The trace mix is chosen so the resulting dependency graphs carry exactly
the frequencies of Figure 2 — the library reproduces the paper's worked
numbers on this fixture (Examples 4, 6, 7):

* ``S^1(A, 1) = 0.457``, ``S^1(A, 2) = 0.6`` (Example 4),
* exact ``S(C, 4) = 0.587``; estimation with ``I = 0`` gives 0.409
  (Example 6),
* combined-direction ``avg(S) = 0.502``, ``avg(S^{C,D}) = 0.509``
  (Example 7 reports 0.502 and 0.508).
"""

from __future__ import annotations

from repro.logs.log import EventLog
from repro.matching.evaluation import Correspondence


def figure1_logs() -> tuple[EventLog, EventLog, tuple[Correspondence, ...]]:
    """The letter-named Figure 1 logs and their ground truth."""
    log_first = EventLog(
        [list("ACDEF")] * 4 + [list("BCDFE")] * 6,
        name="L1",
    )
    log_second = EventLog(
        [list("12456")] * 4 + [list("13465")] * 6,
        name="L2",
    )
    truth = (
        Correspondence.one_to_one("A", "2"),
        Correspondence.one_to_one("B", "3"),
        Correspondence(frozenset({"C", "D"}), frozenset({"4"})),
        Correspondence.one_to_one("E", "5"),
        Correspondence.one_to_one("F", "6"),
    )
    return log_first, log_second, truth


#: Letter -> full activity name, subsidiary 1 (Figure 1(a)).
SUBSIDIARY_1_NAMES: dict[str, str] = {
    "A": "Paid by Cash",
    "B": "Paid by Credit Card",
    "C": "Check Inventory",
    "D": "Validate",
    "E": "Ship Goods",
    "F": "Email Customer",
}

#: Digit -> full activity name, subsidiary 2 (Figure 1(b)).  Event 5 is
#: the garbled "?????" whose original name was "Delivery".
SUBSIDIARY_2_NAMES: dict[str, str] = {
    "1": "Order Accepted",
    "2": "Paid by Cash",
    "3": "Paid by Credit Card",
    "4": "Inventory Checking & Validation",
    "5": "?????",
    "6": "Notify Client",
}


def turbine_order_logs() -> tuple[EventLog, EventLog, tuple[Correspondence, ...]]:
    """The Figure 1 logs with full activity names (Example 1)."""
    letters_first, letters_second, letter_truth = figure1_logs()
    log_first = letters_first.relabel(SUBSIDIARY_1_NAMES, name="subsidiary-1")
    log_second = letters_second.relabel(SUBSIDIARY_2_NAMES, name="subsidiary-2")
    truth = tuple(
        Correspondence(
            frozenset(SUBSIDIARY_1_NAMES[letter] for letter in correspondence.left),
            frozenset(SUBSIDIARY_2_NAMES[digit] for digit in correspondence.right),
        )
        for correspondence in letter_truth
    )
    return log_first, log_second, truth
