"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError``, ``ValueError`` raised by
argument validation) surface normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EventLogError(ReproError):
    """An event log is structurally invalid (empty traces, reserved names...)."""


class LogFormatError(EventLogError):
    """A serialized event log (XES/CSV) could not be parsed."""


class GraphError(ReproError):
    """A dependency-graph operation received inconsistent input."""


class MatchingError(ReproError):
    """A matching computation could not be carried out."""


class MatrixLabelMismatch(MatchingError, ValueError):
    """Two similarity matrices cover different node vocabularies.

    Raised by :meth:`repro.core.matrix.SimilarityMatrix.combine` when the
    row or column *label sets* of the operands differ — averaging such
    matrices positionally would silently mix similarities of unrelated
    node pairs.  ``axis`` names the offending dimension (``"rows"`` or
    ``"cols"``); ``only_self`` / ``only_other`` carry the labels present
    on one side but not the other, for actionable error messages.

    Also a :class:`ValueError`: mismatched operands were always a value
    problem, and callers predating the typed exception catch it as one.
    """

    def __init__(
        self,
        message: str,
        *,
        axis: str = "rows",
        only_self: tuple[str, ...] = (),
        only_other: tuple[str, ...] = (),
    ):
        super().__init__(message)
        self.axis = axis
        self.only_self = only_self
        self.only_other = only_other


class BudgetExhausted(ReproError):
    """A matching run hit its :class:`repro.runtime.MatchBudget`.

    Carries machine-readable context so the degradation ladder (and the
    CLI's exit-code mapping) can react without parsing the message:
    ``reason`` is ``"deadline"`` or ``"pair-updates"``, ``elapsed`` the
    wall-clock seconds spent, and ``pair_updates`` the formula-(1)
    evaluations charged so far.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "deadline",
        elapsed: float = 0.0,
        pair_updates: int = 0,
    ):
        super().__init__(message)
        self.reason = reason
        self.elapsed = elapsed
        self.pair_updates = pair_updates


class WorkerPoolError(MatchingError):
    """The supervised worker pool could not be kept alive.

    Raised when the pool keeps breaking faster than the
    :class:`repro.runtime.RetryPolicy` allows respawns — the failure is
    environmental (every task crashes, the initializer dies, ...) rather
    than a poison candidate, so retry/quarantine cannot make progress.
    The CLI maps this to its own exit code (4) so supervisors can tell
    the unrecoverable case from budget exhaustion (3) and bad input (2).

    ``respawns`` is how many pool restarts were attempted before giving
    up; ``last_error`` the stringified failure of the final attempt.
    """

    def __init__(self, message: str, *, respawns: int = 0, last_error: str = ""):
        super().__init__(message)
        self.respawns = respawns
        self.last_error = last_error


class SearchInterrupted(MatchingError):
    """A composite search was cooperatively interrupted (SIGINT/SIGTERM).

    Raised at a round boundary after the final checkpoint was flushed;
    :meth:`repro.core.composite.CompositeMatcher.match` catches it and
    returns the best-so-far result as a ``partial`` stage with reason
    ``"interrupted"``.

    ``signal_name`` names the signal that triggered the interrupt (or a
    scripted fault-injection site in chaos tests).
    """

    def __init__(self, message: str, *, signal_name: str = ""):
        super().__init__(message)
        self.signal_name = signal_name


class SearchBudgetExceeded(MatchingError):
    """A matcher exceeded its configured search budget.

    Raised by the OPQ baseline when the number of events exceeds its hard
    cap, mirroring the paper's observation that OPQ "cannot even finish the
    matching of events more than 30" (Section 5.2, Figure 8).
    """


class ShardIngestionError(ReproError):
    """A sharded ingestion could not count every shard.

    Statistics are sums over *all* traces, so a shard that keeps failing
    cannot be quarantined-and-skipped the way a poison composite
    candidate can — dropping it would silently bias every frequency.
    The sharded pipeline therefore converts a quarantined shard into
    this error (carrying the shard's provenance) instead of returning
    partial counts: a loud failure, never a wrong answer.
    """

    def __init__(self, message: str, *, shard: str = "", attempts: int = 0):
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts


class StoreError(ReproError):
    """The persistent log store could not complete a request.

    Raised only for caller errors (an invalid path, an unwritable
    directory at construction time); *corruption* of an existing store
    never raises — it degrades to a logged cold path (see
    :mod:`repro.store.logstore`).
    """


class SynthesisError(ReproError):
    """A synthetic workload could not be generated as requested."""


class ServiceError(ReproError):
    """The matching service could not complete a request.

    Raised for daemon-level problems (an unusable store directory, a
    port that cannot be bound); per-job failures never raise out of the
    scheduler — they move the job to ``failed``/``dead`` and archive it.
    """


class JobSpecError(ServiceError):
    """A submitted job specification is invalid.

    Carries the machine-readable ``problem`` so the HTTP layer can
    answer 400 with a useful body and the dead-letter context records
    what exactly was wrong with the submission.
    """

    def __init__(self, message: str, *, field: str = ""):
        super().__init__(message)
        self.field = field
