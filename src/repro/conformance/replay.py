"""Token-based replay: how well does a log fit a workflow net?

The classic conformance-checking technique (Rozinat & van der Aalst):
replay every trace against the net, force-firing its events in order;
count the tokens **produced**, **consumed**, **missing** (had to be
conjured to enable a transition) and **remaining** (left over at the
end).  Fitness is::

    fitness = 0.5 * (1 - missing / consumed) + 0.5 * (1 - remaining / produced)

1.0 means the log replays perfectly.  Silent transitions are fired
greedily when they enable the next visible event (a one-step lookahead —
sufficient for the structured nets this library builds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SynthesisError
from repro.logs.log import EventLog
from repro.petri.net import Marking, PetriNet


@dataclass(frozen=True, slots=True)
class ReplayResult:
    """Token counts and fitness of replaying a log on a net."""

    produced: int
    consumed: int
    missing: int
    remaining: int
    trace_count: int
    fitting_traces: int

    @property
    def fitness(self) -> float:
        consumed_part = 1.0 - (self.missing / self.consumed if self.consumed else 0.0)
        produced_part = 1.0 - (self.remaining / self.produced if self.produced else 0.0)
        return 0.5 * consumed_part + 0.5 * produced_part

    @property
    def trace_fitness(self) -> float:
        """Fraction of traces replaying without missing/remaining tokens."""
        return self.fitting_traces / self.trace_count if self.trace_count else 0.0


def _label_index(net: PetriNet) -> dict[str, list[str]]:
    index: dict[str, list[str]] = {}
    for name, transition in net.transitions.items():
        if transition.label is not None:
            index.setdefault(transition.label, []).append(name)
    for names in index.values():
        names.sort()
    return index


def _fire_counting(
    net: PetriNet, marking: Marking, transition: str, counters: dict[str, int]
) -> Marking:
    """Fire *transition*, conjuring missing tokens and counting everything."""
    preset = net.preset(transition)
    postset = net.postset(transition)
    for place in preset:
        if marking[place] < 1:
            counters["missing"] += 1
            marking = marking.add([place])
    counters["consumed"] += len(preset)
    counters["produced"] += len(postset)
    return marking.remove(preset).add(postset)


def _enable_via_silents(
    net: PetriNet, marking: Marking, target: str, max_depth: int = 8
) -> Marking:
    """Greedily fire silent transitions that move toward enabling *target*."""
    for _ in range(max_depth):
        missing = [place for place in net.preset(target) if marking[place] < 1]
        if not missing:
            return marking
        progressed = False
        for name in net.enabled(marking):
            transition = net.transitions[name]
            if transition.is_silent and net.postset(name) & set(missing):
                marking = marking.remove(net.preset(name)).add(net.postset(name))
                progressed = True
                break
        if not progressed:
            return marking
    return marking


def _drain_via_silents(net: PetriNet, marking: Marking, final: Marking,
                       max_depth: int = 16) -> Marking:
    """Fire silent transitions while they move tokens toward the sink."""
    for _ in range(max_depth):
        if marking == final:
            return marking
        progressed = False
        for name in net.enabled(marking):
            if net.transitions[name].is_silent:
                marking = marking.remove(net.preset(name)).add(net.postset(name))
                progressed = True
                break
        if not progressed:
            return marking
    return marking


def replay_log(net: PetriNet, log: EventLog) -> ReplayResult:
    """Token-replay every trace of *log* on *net*."""
    if not net.is_workflow_net():
        raise SynthesisError("token replay requires a workflow net")
    labels = _label_index(net)
    initial = net.initial_marking()
    final = net.final_marking()

    totals = {"produced": 0, "consumed": 0, "missing": 0, "remaining": 0}
    fitting = 0
    for trace in log:
        counters = {"produced": 1, "consumed": 0, "missing": 0}  # initial token
        marking = initial
        for event in trace:
            names = labels.get(event.activity)
            if names is None:
                counters["missing"] += 1  # activity unknown to the model
                continue
            marking = _enable_via_silents(net, marking, names[0])
            # Prefer an enabled transition with this label, else force one.
            enabled = [name for name in names if not (
                [p for p in net.preset(name) if marking[p] < 1]
            )]
            chosen = enabled[0] if enabled else names[0]
            marking = _fire_counting(net, marking, chosen, counters)
        marking = _drain_via_silents(net, marking, final)
        counters["consumed"] += 1  # consuming the final token
        missing_final = 0 if marking[next(iter(final))] >= 1 else 1
        remaining = marking.total() - (1 - missing_final)
        if missing_final:
            counters["missing"] += 1
        totals["produced"] += counters["produced"]
        totals["consumed"] += counters["consumed"]
        totals["missing"] += counters["missing"]
        totals["remaining"] += remaining
        if counters["missing"] == 0 and remaining == 0:
            fitting += 1
    return ReplayResult(
        produced=totals["produced"],
        consumed=totals["consumed"],
        missing=totals["missing"],
        remaining=totals["remaining"],
        trace_count=len(log),
        fitting_traces=fitting,
    )
