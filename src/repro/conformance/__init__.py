"""Conformance checking: replaying logs against workflow nets."""

from repro.conformance.replay import ReplayResult, replay_log

__all__ = ["ReplayResult", "replay_log"]
