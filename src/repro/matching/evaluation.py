"""Correspondences and matching-quality metrics.

A *correspondence* relates a set of activities in one log to a set in the
other — singleton sets for 1:1 matches, larger sets for the composite
(m:n, "complex") matches of Section 4.  Accuracy follows the paper's
Section 5.1: precision = |truth ∩ found| / |found|, recall =
|truth ∩ found| / |truth|, f-measure their harmonic mean.

Composite correspondences are compared at the *link* level: a
correspondence ``({C, D}, {4})`` contributes the links (C, 4) and (D, 4).
This makes partially-correct composites earn partial credit and keeps the
metric well-defined when the two methods group events differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True, slots=True)
class Correspondence:
    """An m:n correspondence between activity sets of two logs."""

    left: frozenset[str]
    right: frozenset[str]

    def __post_init__(self) -> None:
        if not self.left or not self.right:
            raise ValueError("a correspondence needs non-empty sides")

    @classmethod
    def one_to_one(cls, left: str, right: str) -> "Correspondence":
        return cls(frozenset({left}), frozenset({right}))

    def links(self) -> frozenset[tuple[str, str]]:
        """The singleton activity pairs this correspondence implies."""
        return frozenset((a, b) for a in self.left for b in self.right)

    def is_composite(self) -> bool:
        return len(self.left) > 1 or len(self.right) > 1

    def __repr__(self) -> str:
        left = "+".join(sorted(self.left))
        right = "+".join(sorted(self.right))
        return f"Correspondence({left} <-> {right})"


def correspondence_links(correspondences: Iterable[Correspondence]) -> frozenset[tuple[str, str]]:
    """Union of the links of all *correspondences*."""
    links: set[tuple[str, str]] = set()
    for correspondence in correspondences:
        links.update(correspondence.links())
    return frozenset(links)


@dataclass(frozen=True, slots=True)
class MatchEvaluation:
    """Precision / recall / f-measure of a matching run."""

    precision: float
    recall: float
    f_measure: float
    truth_size: int
    found_size: int
    hit_count: int

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F={self.f_measure:.3f} "
            f"(hits {self.hit_count}/{self.found_size} found, {self.truth_size} truth)"
        )


def evaluate(
    truth: Iterable[Correspondence], found: Iterable[Correspondence]
) -> MatchEvaluation:
    """Score *found* correspondences against the ground *truth*."""
    truth_links = correspondence_links(truth)
    found_links = correspondence_links(found)
    hits = len(truth_links & found_links)
    precision = hits / len(found_links) if found_links else 0.0
    recall = hits / len(truth_links) if truth_links else 0.0
    if precision + recall == 0.0:
        f_measure = 0.0
    else:
        f_measure = 2.0 * precision * recall / (precision + recall)
    return MatchEvaluation(
        precision=precision,
        recall=recall,
        f_measure=f_measure,
        truth_size=len(truth_links),
        found_size=len(found_links),
        hit_count=hits,
    )


def mean_evaluation(evaluations: list[MatchEvaluation]) -> MatchEvaluation:
    """Macro-average several evaluations (one per log pair)."""
    if not evaluations:
        raise ValueError("need at least one evaluation to average")
    count = len(evaluations)
    return MatchEvaluation(
        precision=sum(e.precision for e in evaluations) / count,
        recall=sum(e.recall for e in evaluations) / count,
        f_measure=sum(e.f_measure for e in evaluations) / count,
        truth_size=sum(e.truth_size for e in evaluations),
        found_size=sum(e.found_size for e in evaluations),
        hit_count=sum(e.hit_count for e in evaluations),
    )
