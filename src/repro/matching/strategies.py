"""Alternative correspondence-selection strategies.

The paper uses maximum-total-similarity selection [17] (see
:mod:`repro.matching.selection`), but Section 6 notes there are "various
existing approaches to capture the corresponding events" from a pairwise
similarity matrix.  This module provides the standard alternatives so the
selection step can be ablated:

* **greedy** — repeatedly take the highest remaining pair (the classic
  similarity-flooding-style filter);
* **stable marriage** — a pairing with no blocking pair, preferring
  mutual best matches;
* **mutual best** — keep only pairs that are each other's argmax (high
  precision, lower recall).
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import SimilarityMatrix
from repro.matching.selection import SelectedPair


def greedy_selection(matrix: SimilarityMatrix, threshold: float = 0.0) -> list[SelectedPair]:
    """Pick the globally best remaining pair until rows or columns run out."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    values = matrix.values
    available_rows = set(range(len(matrix.rows)))
    available_cols = set(range(len(matrix.cols)))
    order = np.argsort(values, axis=None)[::-1]
    selected: list[SelectedPair] = []
    for flat_index in order:
        i, j = divmod(int(flat_index), values.shape[1])
        if i not in available_rows or j not in available_cols:
            continue
        similarity = float(values[i, j])
        if similarity <= threshold:
            break
        selected.append(SelectedPair(matrix.rows[i], matrix.cols[j], similarity))
        available_rows.discard(i)
        available_cols.discard(j)
        if not available_rows or not available_cols:
            break
    return sorted(selected, key=lambda pair: (pair.left, pair.right))


def stable_marriage_selection(
    matrix: SimilarityMatrix, threshold: float = 0.0
) -> list[SelectedPair]:
    """Gale-Shapley pairing: rows propose in decreasing similarity order."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    values = matrix.values
    n_rows, n_cols = values.shape
    if n_rows == 0 or n_cols == 0:
        return []
    preferences = [list(np.argsort(values[i])[::-1]) for i in range(n_rows)]
    next_choice = [0] * n_rows
    engaged_to: dict[int, int] = {}  # column -> row
    free_rows = list(range(n_rows))
    while free_rows:
        row = free_rows.pop()
        while next_choice[row] < n_cols:
            col = int(preferences[row][next_choice[row]])
            next_choice[row] += 1
            incumbent = engaged_to.get(col)
            if incumbent is None:
                engaged_to[col] = row
                break
            if values[row, col] > values[incumbent, col]:
                engaged_to[col] = row
                free_rows.append(incumbent)
                break
    selected = [
        SelectedPair(matrix.rows[row], matrix.cols[col], float(values[row, col]))
        for col, row in engaged_to.items()
        if values[row, col] > threshold
    ]
    return sorted(selected, key=lambda pair: (pair.left, pair.right))


def mutual_best_selection(
    matrix: SimilarityMatrix, threshold: float = 0.0
) -> list[SelectedPair]:
    """Keep only pairs where each side is the other's best match."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    values = matrix.values
    if values.size == 0:
        return []
    best_col_for_row = values.argmax(axis=1)
    best_row_for_col = values.argmax(axis=0)
    selected = []
    for i, j in enumerate(best_col_for_row):
        if best_row_for_col[j] == i and values[i, j] > threshold:
            selected.append(
                SelectedPair(matrix.rows[i], matrix.cols[int(j)], float(values[i, j]))
            )
    return sorted(selected, key=lambda pair: (pair.left, pair.right))
