"""Correspondence selection and matching-quality evaluation."""

from repro.matching.assignment import (
    assignment_weight,
    max_weight_assignment,
    min_cost_assignment,
)
from repro.matching.calibration import ThresholdCalibration, calibrate_threshold
from repro.matching.evaluation import (
    Correspondence,
    MatchEvaluation,
    correspondence_links,
    evaluate,
    mean_evaluation,
)
from repro.matching.strategies import (
    greedy_selection,
    mutual_best_selection,
    stable_marriage_selection,
)
from repro.matching.selection import (
    SelectedPair,
    pairs_to_correspondences,
    select_correspondences,
    select_pairs,
)

__all__ = [
    "max_weight_assignment",
    "min_cost_assignment",
    "assignment_weight",
    "Correspondence",
    "MatchEvaluation",
    "correspondence_links",
    "evaluate",
    "mean_evaluation",
    "SelectedPair",
    "select_pairs",
    "pairs_to_correspondences",
    "select_correspondences",
    "greedy_selection",
    "stable_marriage_selection",
    "mutual_best_selection",
    "ThresholdCalibration",
    "calibrate_threshold",
]
