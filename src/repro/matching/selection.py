"""Selecting matching correspondences from pairwise similarities.

Once pairwise similarities are computed, Section 5.1 selects event
correspondences with the maximum-total-similarity method [Munkres 17]:
a maximum-weight one-to-one assignment over the similarity matrix,
followed by a minimum-similarity threshold so that genuinely unrelated
events stay unmatched.  When the matrices were computed over *merged*
graphs, composite nodes are expanded back to their member activity sets,
yielding m:n correspondences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.matrix import SimilarityMatrix
from repro.matching.assignment import max_weight_assignment
from repro.matching.evaluation import Correspondence


@dataclass(frozen=True, slots=True)
class SelectedPair:
    """One selected node pair with its similarity."""

    left: str
    right: str
    similarity: float


def select_pairs(
    matrix: SimilarityMatrix, threshold: float = 0.0
) -> list[SelectedPair]:
    """Maximum-total-similarity selection of node pairs.

    Pairs whose similarity is not strictly above *threshold* are dropped —
    with the default 0.0 this removes pairs the similarity computation
    found completely unrelated while keeping everything else, matching the
    paper's setup where every event is expected to have some counterpart.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    assignment = max_weight_assignment(matrix.values)
    rows, cols = matrix.rows, matrix.cols
    selected = [
        SelectedPair(rows[i], cols[j], matrix.get(rows[i], cols[j]))
        for i, j in assignment
    ]
    return [pair for pair in selected if pair.similarity > threshold]


def pairs_to_correspondences(
    pairs: list[SelectedPair],
    members_left: Mapping[str, frozenset[str]] | None = None,
    members_right: Mapping[str, frozenset[str]] | None = None,
) -> list[Correspondence]:
    """Expand selected node pairs into activity-set correspondences.

    Composite nodes (present in the member maps with more than one member)
    expand into their activity sets, producing the m:n correspondences of
    Section 4; plain nodes become singleton sets.
    """
    correspondences = []
    for pair in pairs:
        left = (
            members_left.get(pair.left, frozenset({pair.left}))
            if members_left is not None
            else frozenset({pair.left})
        )
        right = (
            members_right.get(pair.right, frozenset({pair.right}))
            if members_right is not None
            else frozenset({pair.right})
        )
        correspondences.append(Correspondence(left, right))
    return correspondences


def select_correspondences(
    matrix: SimilarityMatrix,
    threshold: float = 0.0,
    members_left: Mapping[str, frozenset[str]] | None = None,
    members_right: Mapping[str, frozenset[str]] | None = None,
) -> list[Correspondence]:
    """One-call pipeline: assignment, thresholding, member expansion."""
    pairs = select_pairs(matrix, threshold)
    return pairs_to_correspondences(pairs, members_left, members_right)
