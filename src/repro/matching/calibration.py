"""Calibrating the selection threshold on labeled pairs.

The maximum-total-similarity selection maps every node of the smaller
log; a similarity threshold decides which of those pairs to *report*.
The right value depends on the similarity distribution of the corpus, so
this module fits it on pairs with known ground truth: sweep candidate
thresholds, score each with the f-measure, return the best.

This is the standard supervised knob-fitting step of schema-matching
pipelines; the paper fixes the threshold implicitly, but a deployment
(49 integrators labeling a seed set, as in the paper's project) would
calibrate exactly like this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.matrix import SimilarityMatrix
from repro.matching.evaluation import Correspondence, evaluate, mean_evaluation
from repro.matching.selection import select_correspondences


@dataclass(frozen=True, slots=True)
class ThresholdCalibration:
    """Result of a threshold sweep."""

    best_threshold: float
    best_f_measure: float
    curve: tuple[tuple[float, float], ...]  # (threshold, mean f-measure)

    def __str__(self) -> str:
        return (
            f"threshold {self.best_threshold:.2f} "
            f"(f-measure {self.best_f_measure:.3f} on the calibration set)"
        )


def calibrate_threshold(
    labeled: Sequence[tuple[SimilarityMatrix, Sequence[Correspondence]]],
    thresholds: Sequence[float] = tuple(round(0.05 * i, 2) for i in range(19)),
    members: Callable[[SimilarityMatrix], tuple[dict, dict]] | None = None,
) -> ThresholdCalibration:
    """Pick the selection threshold maximizing mean f-measure.

    Parameters
    ----------
    labeled:
        ``(similarity matrix, ground truth)`` pairs — typically obtained
        by running a matcher's engine on a seed set with expert labels.
    thresholds:
        The candidate grid (default 0.00 .. 0.90).
    members:
        Optional callable producing (members_left, members_right) maps
        for matrices over merged vocabularies.
    """
    if not labeled:
        raise ValueError("need at least one labeled pair to calibrate")
    curve: list[tuple[float, float]] = []
    best_threshold = thresholds[0]
    best_f = -1.0
    for threshold in thresholds:
        evaluations = []
        for matrix, truth in labeled:
            members_left, members_right = (
                members(matrix) if members is not None else (None, None)
            )
            found = select_correspondences(
                matrix, threshold, members_left, members_right
            )
            evaluations.append(evaluate(truth, found))
        mean_f = mean_evaluation(evaluations).f_measure
        curve.append((threshold, mean_f))
        if mean_f > best_f:
            best_f = mean_f
            best_threshold = threshold
    return ThresholdCalibration(best_threshold, best_f, tuple(curve))
