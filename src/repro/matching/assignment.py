"""Maximum-weight bipartite assignment (Hungarian / Munkres algorithm).

The paper selects event correspondences with "the maximum total similarity
selection method" citing Munkres [17].  This is the O(n^3)
potential-based Hungarian algorithm, written from scratch (no scipy on the
hot path); the test suite property-checks it against
``scipy.optimize.linear_sum_assignment``.
"""

from __future__ import annotations

import numpy as np


def max_weight_assignment(weights: np.ndarray) -> list[tuple[int, int]]:
    """Maximum-total-weight one-to-one assignment.

    Parameters
    ----------
    weights:
        A (possibly rectangular) matrix; entry ``[i, j]`` is the benefit of
        assigning row ``i`` to column ``j``.

    Returns
    -------
    list of (row, column) pairs.  Every row (or column, whichever side is
    smaller) is assigned; filtering out weak pairs is the caller's job.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"weights must be a 2-D matrix, got shape {weights.shape}")
    if weights.size == 0:
        return []
    transposed = weights.shape[0] > weights.shape[1]
    if transposed:
        weights = weights.T
    # Convert maximization to minimization with non-negative costs.
    cost = weights.max() - weights
    rows_to_cols = _hungarian_min(cost)
    if transposed:
        return sorted((col, row) for row, col in rows_to_cols)
    return sorted(rows_to_cols)


def min_cost_assignment(cost: np.ndarray) -> list[tuple[int, int]]:
    """Minimum-total-cost one-to-one assignment (rectangular allowed)."""
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost must be a 2-D matrix, got shape {cost.shape}")
    if cost.size == 0:
        return []
    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
    rows_to_cols = _hungarian_min(cost)
    if transposed:
        return sorted((col, row) for row, col in rows_to_cols)
    return sorted(rows_to_cols)


def _hungarian_min(cost: np.ndarray) -> list[tuple[int, int]]:
    """Potential-based Hungarian algorithm for ``n <= m`` cost matrices.

    Classic O(n^2 m) formulation with dual potentials ``u`` (rows) and
    ``v`` (columns); ``p[j]`` is the row matched to column ``j`` (1-based,
    0 = free), ``way[j]`` remembers the augmenting path.
    """
    n, m = cost.shape
    if n > m:
        raise ValueError("internal: _hungarian_min requires n <= m")
    infinity = float("inf")
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)
    way = [0] * (m + 1)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [infinity] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = infinity
            j1 = -1
            row = cost[i0 - 1]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                current = row[j - 1] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    return [(p[j] - 1, j - 1) for j in range(1, m + 1) if p[j] != 0]


def assignment_weight(weights: np.ndarray, assignment: list[tuple[int, int]]) -> float:
    """Total weight of an assignment under *weights*."""
    return float(sum(weights[i, j] for i, j in assignment))
