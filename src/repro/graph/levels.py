"""Longest-distance levels ``l(v)`` from the artificial event.

Proposition 2 of the paper: the similarity of a pair ``(v1, v2)`` is fixed
after ``min(l(v1), l(v2))`` iterations, where ``l(v)`` is the longest
distance from ``v^X`` to ``v`` — infinite when a loop lies between them.

Because the artificial event has an edge *from* every real node as well,
the naive graph is full of trivial cycles ``v -> v^X -> v``.  Following the
intent of the proposition (a node converges one step after all of its real
ancestors have), ``l(v)`` is computed on the graph consisting of the real
edges plus the artificial *source* edges ``(v^X, v)`` only.  Nodes lying on
a real cycle, or reachable from one, get ``l(v) = math.inf``.
"""

from __future__ import annotations

import math
from collections import deque

from repro.graph.dependency import ARTIFICIAL, DependencyGraph


def longest_distances(graph: DependencyGraph) -> dict[str, float]:
    """Compute ``l(v)`` for every real node of *graph*.

    Returns a mapping from node name to its level: a positive integer (as a
    float) or ``math.inf``.  ``l(v^X)`` is 0 and included in the result.
    """
    nodes = graph.nodes
    successors: dict[str, list[str]] = {ARTIFICIAL: list(nodes)}
    for node in nodes:
        successors[node] = [
            target for target in graph.successors(node) if target != ARTIFICIAL
        ]

    components = _strongly_connected_components(successors)
    cyclic_roots = set()
    for component in components:
        if len(component) > 1:
            cyclic_roots.update(component)
        else:
            (only,) = component
            if only in successors[only]:  # self-loop
                cyclic_roots.add(only)

    infinite = _reachable_from(cyclic_roots, successors)

    # Longest path on the acyclic remainder, in topological order.
    order = _topological_order(
        {node: [t for t in targets if t not in infinite]
         for node, targets in successors.items() if node not in infinite}
    )
    levels: dict[str, float] = {node: math.inf for node in infinite}
    levels[ARTIFICIAL] = 0.0
    for node in order:
        if node == ARTIFICIAL:
            continue
        levels.setdefault(node, 1.0)
    for node in order:
        base = levels[node]
        for target in successors[node]:
            if target in infinite or target == ARTIFICIAL:
                continue
            if base + 1.0 > levels[target]:
                levels[target] = base + 1.0
    return levels


def patched_longest_distances(
    graph: DependencyGraph,
    parent_levels: dict[str, float],
    changed: set[str] | frozenset[str],
) -> dict[str, float]:
    """``l(v)`` for *graph*, recomputed only where it can differ from a parent.

    *graph* is assumed to differ from the graph that produced
    *parent_levels* only at the *changed* nodes: nodes added, removed, or
    whose set of real in-edges changed (a removed node's former neighbours
    necessarily lost an in-edge, so they are in *changed* too).  Any path
    from ``v^X`` that differs between the two graphs then runs through a
    changed node, so ``l(v)`` can only move for *changed* nodes and their
    real-edge descendants — the *dirty* region.  Everything else keeps its
    parent level verbatim; the dirty region is recomputed with the same
    SCC + longest-path machinery as :func:`longest_distances`, seeded at
    the boundary by the (unchanged) levels of non-dirty predecessors.

    Differentially equal to ``longest_distances(graph)``
    (``tests/graph/test_levels.py``); raises if *changed* is inconsistent
    with the two graphs (a node neither dirty nor known to the parent).
    """
    from repro.exceptions import GraphError

    nodes = set(graph.nodes)
    present_changed = {node for node in changed if node in nodes}
    if not present_changed:
        levels = {ARTIFICIAL: 0.0}
        for node in graph.nodes:
            try:
                levels[node] = parent_levels[node]
            except KeyError:
                raise GraphError(
                    f"node {node!r} is new but not in the changed set"
                ) from None
        return levels

    # Dirty region: changed nodes plus everything reachable from them
    # over real edges of the *merged* graph.
    dirty = set(present_changed)
    queue = deque(present_changed)
    while queue:
        node = queue.popleft()
        for target in graph.successors(node):
            if target != ARTIFICIAL and target not in dirty:
                dirty.add(target)
                queue.append(target)

    # Boundary seeds: for each dirty node, the best level arriving from
    # outside the dirty region (always at least 1 via the v^X source edge).
    base: dict[str, float] = {}
    entry_infinite: set[str] = set()
    for node in dirty:
        level = 1.0
        for source in graph.predecessors(node):
            if source == ARTIFICIAL or source in dirty:
                continue
            parent = parent_levels.get(source)
            if parent is None:
                raise GraphError(
                    f"predecessor {source!r} is neither dirty nor in the parent levels"
                )
            if math.isinf(parent):
                entry_infinite.add(node)
            elif parent + 1.0 > level:
                level = parent + 1.0
        base[node] = level

    successors_dirty = {
        node: [
            target
            for target in graph.successors(node)
            if target != ARTIFICIAL and target in dirty
        ]
        for node in dirty
    }
    # Any cycle through a dirty node lies entirely inside the dirty region
    # (every cycle node is a descendant of the dirty node), so SCCs of the
    # dirty subgraph find exactly the cycles that matter.
    cyclic_roots: set[str] = set()
    for component in _strongly_connected_components(successors_dirty):
        if len(component) > 1:
            cyclic_roots.update(component)
        else:
            (only,) = component
            if only in successors_dirty[only]:
                cyclic_roots.add(only)
    infinite = _reachable_from(cyclic_roots | entry_infinite, successors_dirty)

    order = _topological_order(
        {
            node: [t for t in targets if t not in infinite]
            for node, targets in successors_dirty.items()
            if node not in infinite
        }
    )
    computed: dict[str, float] = {node: math.inf for node in infinite}
    for node in order:
        computed.setdefault(node, base[node])
    for node in order:
        level = computed[node]
        for target in successors_dirty[node]:
            if target in infinite:
                continue
            if level + 1.0 > computed[target]:
                computed[target] = level + 1.0

    levels = {ARTIFICIAL: 0.0}
    for node in graph.nodes:
        if node in dirty:
            levels[node] = computed[node]
        else:
            parent = parent_levels.get(node)
            if parent is None:
                raise GraphError(
                    f"node {node!r} is new but not in the changed set"
                )
            levels[node] = parent
    return levels


def max_finite_level(levels: dict[str, float]) -> float:
    """The largest level in *levels*; ``inf`` if any node is cyclic.

    Per Section 3.4, the iterative computation is guaranteed to stop after
    ``min(max_v1 l(v1), max_v2 l(v2))`` iterations; this computes one side.
    """
    return max((level for node, level in levels.items() if node != ARTIFICIAL), default=0.0)


def _strongly_connected_components(successors: dict[str, list[str]]) -> list[list[str]]:
    """Tarjan's algorithm, iterative (logs can be deep)."""
    index_counter = 0
    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []

    for root in successors:
        if root in indices:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = index_counter
                lowlinks[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            targets = successors[node]
            while child_index < len(targets):
                target = targets[child_index]
                child_index += 1
                if target not in indices:
                    work[-1] = (node, child_index)
                    work.append((target, 0))
                    advanced = True
                    break
                if target in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[target])
            if advanced:
                continue
            work.pop()
            if lowlinks[node] == indices[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
    return components


def _reachable_from(sources: set[str], successors: dict[str, list[str]]) -> set[str]:
    """All nodes reachable from *sources* (including the sources)."""
    seen = set(sources)
    queue = deque(sources)
    while queue:
        node = queue.popleft()
        for target in successors[node]:
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return seen


def _topological_order(successors: dict[str, list[str]]) -> list[str]:
    """Kahn's algorithm over the given acyclic subgraph."""
    indegree: dict[str, int] = {node: 0 for node in successors}
    for targets in successors.values():
        for target in targets:
            if target in indegree:
                indegree[target] += 1
    queue = deque(sorted(node for node, degree in indegree.items() if degree == 0))
    order: list[str] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for target in successors[node]:
            if target in indegree:
                indegree[target] -= 1
                if indegree[target] == 0:
                    queue.append(target)
    return order
