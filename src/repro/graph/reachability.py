"""Reachability over the real edges of a dependency graph.

Proposition 4 (the *Uc* pruning) reasons about ancestors "w.r.t.
prerequisites": paths through the artificial event do not count, because
the artificial event's similarities are constant and cannot propagate
change.  These helpers therefore walk real edges only.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.graph.dependency import ARTIFICIAL, DependencyGraph


def real_descendants(graph: DependencyGraph, sources: Iterable[str]) -> set[str]:
    """All real nodes reachable from *sources* via real edges (sources excluded
    unless they lie on a cycle back to themselves)."""
    seen: set[str] = set()
    queue = deque(sources)
    initial = set(queue)
    while queue:
        node = queue.popleft()
        for target in graph.successors(node):
            if target == ARTIFICIAL:
                continue
            if target not in seen:
                seen.add(target)
                queue.append(target)
    # A source is its own descendant only if reachable from the walk.
    return seen | (initial & seen)


def real_ancestors(graph: DependencyGraph, targets: Iterable[str]) -> set[str]:
    """All real nodes with a real-edge path into *targets*."""
    seen: set[str] = set()
    queue = deque(targets)
    initial = set(queue)
    while queue:
        node = queue.popleft()
        for source in graph.predecessors(node):
            if source == ARTIFICIAL:
                continue
            if source not in seen:
                seen.add(source)
                queue.append(source)
    return seen | (initial & seen)
