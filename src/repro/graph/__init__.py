"""Dependency-graph substrate: Definition 1 plus the artificial event."""

from repro.graph.dependency import ARTIFICIAL, DependencyGraph
from repro.graph.levels import longest_distances, max_finite_level
from repro.graph.merge import (
    composite_name,
    expand_members,
    merge_run_in_log,
    merge_runs_in_log,
    merged_dependency_graph,
)

__all__ = [
    "ARTIFICIAL",
    "DependencyGraph",
    "longest_distances",
    "max_finite_level",
    "composite_name",
    "expand_members",
    "merge_run_in_log",
    "merge_runs_in_log",
    "merged_dependency_graph",
]
