"""Dependency-graph substrate: Definition 1 plus the artificial event."""

from repro.graph.dependency import ARTIFICIAL, DependencyGraph
from repro.graph.levels import longest_distances, max_finite_level, patched_longest_distances
from repro.graph.merge import (
    LogCounts,
    MergeDelta,
    TraceIndex,
    apply_delta_to_log,
    composite_name,
    expand_members,
    merge_counts,
    merged_graph_from_delta,
    merged_member_map,
    merge_run_in_log,
    merge_runs_in_log,
    merged_dependency_graph,
)

__all__ = [
    "ARTIFICIAL",
    "DependencyGraph",
    "longest_distances",
    "max_finite_level",
    "patched_longest_distances",
    "LogCounts",
    "MergeDelta",
    "TraceIndex",
    "apply_delta_to_log",
    "merge_counts",
    "merged_graph_from_delta",
    "merged_member_map",
    "composite_name",
    "expand_members",
    "merge_run_in_log",
    "merge_runs_in_log",
    "merged_dependency_graph",
]
