"""Dependency-graph export and descriptive metrics.

:func:`to_dot` renders a dependency graph in Graphviz DOT for inspection
(the artificial event and its edges are drawn dashed, like Figure 2 of
the paper); :func:`graph_metrics` computes the shape statistics the
experiment reports mention (density, degree distribution, reciprocity).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.dependency import ARTIFICIAL, DependencyGraph


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    graph: DependencyGraph,
    include_artificial: bool = True,
    highlight: dict[str, str] | None = None,
) -> str:
    """Render *graph* as a Graphviz DOT digraph.

    Parameters
    ----------
    include_artificial:
        Draw the artificial event and its (dashed) edges.
    highlight:
        Optional node -> color mapping (e.g. to color a matching).
    """
    highlight = highlight or {}
    lines = [f"digraph {_quote(graph.name)} {{", "  rankdir=LR;"]
    for node in graph.nodes:
        attributes = [f'label="{node}\\nf={graph.frequency(node):.2f}"']
        color = highlight.get(node)
        if color:
            attributes.append(f'style=filled fillcolor="{color}"')
        lines.append(f"  {_quote(node)} [{' '.join(attributes)}];")
    if include_artificial:
        lines.append(
            f"  {_quote(ARTIFICIAL)} [label=\"vX\" shape=diamond style=dashed];"
        )
    for (source, target), frequency in sorted(graph.real_edges.items()):
        lines.append(
            f"  {_quote(source)} -> {_quote(target)} "
            f'[label="{frequency:.2f}"];'
        )
    if include_artificial:
        for node in graph.nodes:
            frequency = graph.frequency(node)
            lines.append(
                f"  {_quote(ARTIFICIAL)} -> {_quote(node)} "
                f'[style=dashed label="{frequency:.2f}"];'
            )
            lines.append(
                f"  {_quote(node)} -> {_quote(ARTIFICIAL)} [style=dashed];"
            )
    lines.append("}")
    return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class GraphMetrics:
    """Shape statistics of a dependency graph (real edges only)."""

    node_count: int
    edge_count: int
    density: float
    max_in_degree: int
    max_out_degree: int
    mean_degree: float
    reciprocity: float
    mean_edge_frequency: float


def graph_metrics(graph: DependencyGraph) -> GraphMetrics:
    """Compute :class:`GraphMetrics` for *graph*."""
    nodes = graph.nodes
    edges = graph.real_edges
    node_count = len(nodes)
    edge_count = len(edges)
    possible = node_count * (node_count - 1)
    in_degrees = {node: 0 for node in nodes}
    out_degrees = {node: 0 for node in nodes}
    reciprocal = 0
    for source, target in edges:
        out_degrees[source] += 1
        in_degrees[target] += 1
        if (target, source) in edges:
            reciprocal += 1
    return GraphMetrics(
        node_count=node_count,
        edge_count=edge_count,
        density=edge_count / possible if possible else 0.0,
        max_in_degree=max(in_degrees.values(), default=0),
        max_out_degree=max(out_degrees.values(), default=0),
        mean_degree=2.0 * edge_count / node_count if node_count else 0.0,
        reciprocity=reciprocal / edge_count if edge_count else 0.0,
        mean_edge_frequency=(
            sum(edges.values()) / edge_count if edge_count else 0.0
        ),
    )
