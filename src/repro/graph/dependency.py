"""Event dependency graphs (Definition 1) with the artificial event.

A dependency graph ``G = (V, E, f)`` has one vertex per activity, an edge
``(v1, v2)`` whenever ``v1 v2`` occur consecutively in at least one trace,
and normalized frequencies on vertices and edges.  Section 2 of the paper
extends it with an *artificial event* ``v^X`` — the virtual beginning/end
of all traces — connected to every real event in both directions with
weight ``f(v)``.  The artificial event is what lets the iterative
similarity handle *dislocated* matching: any event can act as a virtual
trace start or end.

The artificial event is always present in a :class:`DependencyGraph`; its
reserved name is :data:`ARTIFICIAL`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.exceptions import GraphError
from repro.logs.log import RESERVED_ACTIVITY, EventLog
from repro.logs.stats import LogStatistics, compute_statistics

#: Name of the artificial event ``v^X`` (reserved; logs cannot contain it).
ARTIFICIAL = RESERVED_ACTIVITY


class DependencyGraph:
    """A labeled directed graph of events with normalized frequencies.

    Instances are immutable; all transforming operations return new graphs.

    Parameters
    ----------
    node_frequencies:
        ``f(v)`` for every real event ``v``; each must be in (0, 1].
    edge_frequencies:
        ``f(v1, v2)`` for every real edge; each must be in (0, 1].  The
        artificial edges ``(v^X, v)`` and ``(v, v^X)`` are added
        automatically with weight ``f(v)`` and must not be passed here.
    name:
        Identifier used in reports.
    members:
        For composite (merged) nodes, the set of original activities each
        node stands for.  Defaults to each node representing itself.
    """

    __slots__ = (
        "name", "_node_freq", "_edge_freq", "_pre", "_post", "_members", "_nodes",
        "_levels", "_reversed", "_pred_csr",
    )

    def __init__(
        self,
        node_frequencies: Mapping[str, float],
        edge_frequencies: Mapping[tuple[str, str], float],
        name: str = "graph",
        members: Mapping[str, frozenset[str]] | None = None,
    ):
        if not node_frequencies:
            raise GraphError("a dependency graph needs at least one real event")
        if ARTIFICIAL in node_frequencies:
            raise GraphError(f"node name {ARTIFICIAL!r} is reserved for the artificial event")
        for node, freq in node_frequencies.items():
            if not 0.0 < freq <= 1.0:
                raise GraphError(f"node frequency f({node!r}) = {freq} outside (0, 1]")
        for (source, target), freq in edge_frequencies.items():
            if source not in node_frequencies or target not in node_frequencies:
                raise GraphError(f"edge ({source!r}, {target!r}) references an unknown node")
            if not 0.0 < freq <= 1.0:
                raise GraphError(f"edge frequency f({source!r}, {target!r}) = {freq} outside (0, 1]")

        self.name = name
        self._nodes: tuple[str, ...] = tuple(sorted(node_frequencies))
        self._node_freq: dict[str, float] = dict(node_frequencies)
        self._edge_freq: dict[tuple[str, str], float] = dict(edge_frequencies)
        # Artificial edges: v^X <-> v with weight f(v), for every real v.
        for node, freq in node_frequencies.items():
            self._edge_freq[(ARTIFICIAL, node)] = freq
            self._edge_freq[(node, ARTIFICIAL)] = freq

        self._pre: dict[str, tuple[str, ...]] = {}
        self._post: dict[str, tuple[str, ...]] = {}
        pre: dict[str, list[str]] = {node: [] for node in self.all_nodes}
        post: dict[str, list[str]] = {node: [] for node in self.all_nodes}
        for source, target in self._edge_freq:
            post[source].append(target)
            pre[target].append(source)
        for node in self.all_nodes:
            self._pre[node] = tuple(sorted(pre[node]))
            self._post[node] = tuple(sorted(post[node]))

        if members is None:
            self._members = {node: frozenset({node}) for node in self._nodes}
        else:
            self._members = {
                node: frozenset(members.get(node, frozenset({node}))) for node in self._nodes
            }

        # Lazily-computed, instance-local caches.  Graphs are immutable, so
        # all are sound; they are dropped on pickling (see __getstate__).
        self._levels: dict[str, float] | None = None
        self._reversed: "DependencyGraph | None" = None
        self._pred_csr: tuple | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_log(
        cls,
        log: EventLog,
        min_frequency: float = 0.0,
        members: Mapping[str, frozenset[str]] | None = None,
    ) -> "DependencyGraph":
        """Build the dependency graph of *log* (Definition 1).

        Parameters
        ----------
        min_frequency:
            Edges with frequency strictly below this threshold are dropped
            (the *minimum frequency control* of Section 2, a trade-off
            between accuracy and efficiency evaluated in Figure 7).
        members:
            Composite membership mapping, if the log has merged events.
        """
        return cls.from_statistics(
            compute_statistics(log), name=log.name, min_frequency=min_frequency, members=members
        )

    @classmethod
    def from_statistics(
        cls,
        stats: LogStatistics,
        name: str = "graph",
        min_frequency: float = 0.0,
        members: Mapping[str, frozenset[str]] | None = None,
    ) -> "DependencyGraph":
        """Build a dependency graph from precomputed log statistics."""
        if not 0.0 <= min_frequency <= 1.0:
            raise GraphError(f"min_frequency must be in [0, 1], got {min_frequency}")
        edges = {
            pair: freq
            for pair, freq in stats.pair_frequencies.items()
            if freq >= min_frequency
        }
        return cls(stats.activity_frequencies, edges, name=name, members=members)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[str, ...]:
        """The real events of the graph, sorted (excludes ``v^X``)."""
        return self._nodes

    @property
    def all_nodes(self) -> tuple[str, ...]:
        """Real events plus the artificial event."""
        return self._nodes + (ARTIFICIAL,)

    @property
    def real_edges(self) -> dict[tuple[str, str], float]:
        """The non-artificial edges with their frequencies."""
        return {
            edge: freq
            for edge, freq in self._edge_freq.items()
            if ARTIFICIAL not in edge
        }

    def frequency(self, node: str) -> float:
        """``f(v)``: fraction of traces containing *node* (1.0 for ``v^X``)."""
        if node == ARTIFICIAL:
            return 1.0
        try:
            return self._node_freq[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def edge_frequency(self, source: str, target: str) -> float:
        """``f(v1, v2)`` of the edge, raising :class:`GraphError` if absent."""
        try:
            return self._edge_freq[(source, target)]
        except KeyError:
            raise GraphError(f"no edge ({source!r}, {target!r})") from None

    def has_edge(self, source: str, target: str) -> bool:
        return (source, target) in self._edge_freq

    def predecessors(self, node: str) -> tuple[str, ...]:
        """The pre-set ``•v`` (includes ``v^X`` for every real node)."""
        try:
            return self._pre[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def successors(self, node: str) -> tuple[str, ...]:
        """The post-set ``v•`` (includes ``v^X`` for every real node)."""
        try:
            return self._post[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def levels(self) -> dict[str, float]:
        """The Proposition-2 levels ``l(v)`` of every real node (plus ``v^X``).

        Computed once per instance and cached — the composite search asks
        for the same graph's levels once per candidate per direction, and
        recomputing the longest-distance pass each time dominated the
        candidate-evaluation setup cost.  The incremental merge engine
        seeds this cache with patched levels (:func:`repro.graph.levels.
        patched_longest_distances`) so merged graphs never pay the full
        recomputation either.
        """
        if self._levels is None:
            from repro.graph.levels import longest_distances

            self._levels = longest_distances(self)
        return self._levels

    def _seed_levels(self, levels: Mapping[str, float]) -> None:
        """Install externally computed levels (the incremental patch path).

        The caller guarantees *levels* equals :func:`longest_distances` of
        this graph; the differential tests in ``tests/graph/test_levels``
        hold that guarantee to account.
        """
        self._levels = dict(levels)

    def predecessor_csr(self) -> tuple:
        """Real-predecessor adjacency in CSR form: ``(indptr, indices, weights)``.

        Row ``k`` lists the *real* predecessors of ``self.nodes[k]`` as
        positions into :attr:`nodes` (``indices`` int32, sorted) together
        with the edge weights ``f(v', v)`` (``weights`` float64); ``indptr``
        is the usual int64 offsets array of length ``len(nodes) + 1``.  The
        artificial predecessor ``v^X`` is deliberately omitted: its
        contribution to formula (1) is closed-form (the agreement of the two
        artificial in-edges times the never-updated ``S(v^X, v^X) = 1``) and
        the sparse kernel folds it into a per-pair constant instead of
        storing a row for it.  Cached per instance; callers must treat the
        arrays as read-only.
        """
        if self._pred_csr is None:
            import numpy as np

            index = {node: k for k, node in enumerate(self._nodes)}
            indptr = np.zeros(len(self._nodes) + 1, dtype=np.int64)
            indices: list[int] = []
            weights: list[float] = []
            for k, node in enumerate(self._nodes):
                for pred in self._pre[node]:
                    if pred == ARTIFICIAL:
                        continue
                    indices.append(index[pred])
                    weights.append(self._edge_freq[(pred, node)])
                indptr[k + 1] = len(indices)
            self._pred_csr = (
                indptr,
                np.asarray(indices, dtype=np.int32),
                np.asarray(weights, dtype=np.float64),
            )
        return self._pred_csr

    def members(self, node: str) -> frozenset[str]:
        """The original activities a (possibly composite) node stands for."""
        try:
            return self._members[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def member_map(self) -> dict[str, frozenset[str]]:
        """A copy of the full node -> original-activities mapping."""
        return dict(self._members)

    def average_degree(self) -> float:
        """Mean total degree of real nodes, counting artificial edges.

        The complexity of the iterative similarity is
        ``O(k |V1| |V2| d_avg)`` (Section 3.2); this is the ``d_avg``.
        """
        total = sum(
            len(self._pre[node]) + len(self._post[node]) for node in self._nodes
        )
        return total / len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._node_freq or node == ARTIFICIAL

    def __repr__(self) -> str:
        return (
            f"DependencyGraph(name={self.name!r}, nodes={len(self._nodes)}, "
            f"edges={len(self.real_edges)})"
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reversed(self) -> "DependencyGraph":
        """The graph with every real edge reversed.

        Running the forward similarity on reversed graphs yields the
        *backward similarity* of Section 3.6 (successors instead of
        predecessors); artificial edges are symmetric and unaffected.
        The result is memoized: graphs are immutable, and the composite
        search reverses the same two graphs once per candidate.
        """
        if self._reversed is None:
            reversed_edges = {
                (target, source): freq
                for (source, target), freq in self.real_edges.items()
            }
            self._reversed = DependencyGraph(
                self._node_freq, reversed_edges,
                name=f"{self.name}(reversed)", members=self._members,
            )
        return self._reversed

    # ------------------------------------------------------------------
    # Pickling: drop the instance caches — a reversed graph pickled along
    # with its parent would double every worker payload, and caches are
    # rebuilt (or re-seeded) lazily on first use anyway.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_levels", "_reversed", "_pred_csr")
        }
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)
        self._levels = None
        self._reversed = None
        self._pred_csr = None

    def filter_edges(self, min_frequency: float) -> "DependencyGraph":
        """Drop real edges with frequency below *min_frequency*."""
        if not 0.0 <= min_frequency <= 1.0:
            raise GraphError(f"min_frequency must be in [0, 1], got {min_frequency}")
        kept = {
            edge: freq for edge, freq in self.real_edges.items() if freq >= min_frequency
        }
        return DependencyGraph(self._node_freq, kept, name=self.name, members=self._members)

    def restrict_nodes(self, keep: Iterable[str]) -> "DependencyGraph":
        """The induced subgraph on the real nodes in *keep*."""
        kept_nodes = set(keep)
        unknown = kept_nodes - set(self._nodes)
        if unknown:
            raise GraphError(f"unknown nodes {sorted(unknown)!r}")
        node_freq = {node: self._node_freq[node] for node in kept_nodes}
        edges = {
            (source, target): freq
            for (source, target), freq in self.real_edges.items()
            if source in kept_nodes and target in kept_nodes
        }
        members = {node: self._members[node] for node in kept_nodes}
        return DependencyGraph(node_freq, edges, name=self.name, members=members)
