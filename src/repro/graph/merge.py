"""Composite-event merging: full log rewriting and delta count patching.

Section 4 treats a composite event — several singleton events that jointly
correspond to one event in the other log — "as one node in constructing
the dependency graph".  The only faithful way to obtain the merged graph's
frequencies is to rewrite the *log* (collapse each contiguous occurrence
of the member run into one event) and rebuild the graph from the rewritten
log; merging at the graph level cannot recover the per-trace co-occurrence
counts.  This module implements that rewriting plus composite bookkeeping.

The *delta* half of the module (:class:`TraceIndex`, :class:`LogCounts`,
:func:`merge_counts`) exploits that a merge of run ``r`` only rewrites the
traces that actually contain ``r`` contiguously.  Definition 1's
frequencies are integer trace counts divided by the (merge-invariant)
trace count, so patching the integer counters of just the affected traces
yields frequencies — and therefore graphs, levels and similarities —
**bit-identical** to the full rebuild, at a cost proportional to the
affected traces instead of the whole log.  The full rewrite is kept both
as the API for non-incremental callers and as the differential ground
truth (``tests/graph/test_merge_delta.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.exceptions import GraphError
from repro.graph.dependency import DependencyGraph
from repro.logs.events import Trace
from repro.logs.log import EventLog
from repro.logs.stats import LogStatistics


def composite_name(run: Sequence[str]) -> str:
    """The canonical node name of a composite event over *run*.

    The name preserves the member order (``⟨C+D⟩``) so merged logs stay
    human-readable; angle quotes keep it collision-free against ordinary
    activity names containing ``+``.
    """
    if not run:
        raise GraphError("a composite event needs at least one member")
    return "⟨" + "+".join(run) + "⟩"


def expand_members(
    run: Sequence[str], members: Mapping[str, frozenset[str]] | None = None
) -> frozenset[str]:
    """Original activities covered by a composite over *run*.

    When members of *run* are themselves composites, their member sets are
    unioned, so ground-truth evaluation always sees base activities.
    """
    covered: set[str] = set()
    for node in run:
        if members is not None and node in members:
            covered.update(members[node])
        else:
            covered.add(node)
    return frozenset(covered)


def merge_run_in_log(
    log: EventLog,
    run: Sequence[str],
    members: Mapping[str, frozenset[str]] | None = None,
) -> tuple[EventLog, dict[str, frozenset[str]]]:
    """Collapse contiguous occurrences of *run* in *log* into one event.

    Returns the rewritten log and the updated node -> original-activities
    mapping (all untouched activities map to themselves or their previous
    member sets).
    """
    run = tuple(run)
    if len(run) < 2:
        raise GraphError(f"a composite run needs at least two members, got {run!r}")
    if len(set(run)) != len(run):
        raise GraphError(f"composite run has repeated members: {run!r}")
    name = composite_name(run)
    merged = log.merge_composite(run, name)
    new_members: dict[str, frozenset[str]] = {}
    for activity in merged.activities():
        if activity == name:
            new_members[activity] = expand_members(run, members)
        elif members is not None and activity in members:
            new_members[activity] = members[activity]
        else:
            new_members[activity] = frozenset({activity})
    return merged, new_members


def merge_runs_in_log(
    log: EventLog, runs: Iterable[Sequence[str]]
) -> tuple[EventLog, dict[str, frozenset[str]]]:
    """Apply several non-overlapping composite merges in sequence."""
    members: dict[str, frozenset[str]] = {a: frozenset({a}) for a in log.activities()}
    current = log
    for run in runs:
        current, members = merge_run_in_log(current, run, members)
    return current, members


def merged_dependency_graph(
    log: EventLog,
    runs: Iterable[Sequence[str]],
    min_frequency: float = 0.0,
) -> DependencyGraph:
    """Dependency graph of *log* after merging the composite *runs*."""
    merged, members = merge_runs_in_log(log, runs)
    return DependencyGraph.from_log(merged, min_frequency=min_frequency, members=members)


# ----------------------------------------------------------------------
# Delta merging: patch integer counts instead of rewriting the log
# ----------------------------------------------------------------------
@dataclass(slots=True)
class LogCounts:
    """The integer numerators of Definition 1's frequencies.

    ``activity[a]`` is the number of traces containing ``a``;
    ``pair[(a, b)]`` the number of traces where ``a b`` occur consecutively
    at least once.  Dividing by ``trace_count`` reproduces
    :func:`repro.logs.stats.compute_statistics` exactly — same integers,
    same division, bit-identical floats — which is what lets delta-merged
    graphs match full rebuilds to the last bit.
    """

    trace_count: int
    activity: dict[str, int]
    pair: dict[tuple[str, str], int]

    @classmethod
    def from_log(cls, log: EventLog) -> "LogCounts":
        return cls(
            trace_count=len(log),
            activity=dict(log.activity_trace_counts()),
            pair=dict(log.pair_trace_counts()),
        )

    def copy(self) -> "LogCounts":
        return LogCounts(self.trace_count, dict(self.activity), dict(self.pair))

    def statistics(self) -> LogStatistics:
        """The normalized statistics these counts represent."""
        tc = self.trace_count
        return LogStatistics(
            trace_count=tc,
            activity_frequencies={a: count / tc for a, count in self.activity.items()},
            pair_frequencies={p: count / tc for p, count in self.pair.items()},
        )


class TraceIndex:
    """Per-trace distinct sets plus an activity → trace-positions index.

    Built once per log, the index answers "which traces can contain run
    ``r`` contiguously?" (the intersection of the members' postings) and
    supplies each affected trace's old distinct-activity and distinct-pair
    sets so :func:`merge_counts` can subtract/re-add only what changed.
    ``apply`` advances the index in place when a merge is accepted.
    """

    __slots__ = ("traces", "activity_sets", "pair_sets", "postings")

    def __init__(self, log: EventLog):
        self.traces: list[Trace] = list(log.traces)
        self.activity_sets: list[frozenset[str]] = [
            trace.distinct_activities() for trace in self.traces
        ]
        self.pair_sets: list[frozenset[tuple[str, str]]] = [
            frozenset(trace.pairs()) for trace in self.traces
        ]
        self.postings: dict[str, set[int]] = {}
        for i, activities in enumerate(self.activity_sets):
            for activity in activities:
                self.postings.setdefault(activity, set()).add(i)

    def candidate_traces(self, run: Sequence[str]) -> list[int]:
        """Positions of traces containing every member of *run* (sorted)."""
        postings = [self.postings.get(member) for member in run]
        if any(p is None for p in postings):
            return []
        smallest = min(postings, key=len)
        common = set(smallest)
        for p in postings:
            if p is not smallest:
                common &= p
                if not common:
                    return []
        return sorted(common)

    def apply(self, delta: "MergeDelta") -> None:
        """Advance the index past an accepted merge (in place)."""
        for i, new_trace in delta.affected:
            old_activities = self.activity_sets[i]
            new_activities = new_trace.distinct_activities()
            for activity in old_activities - new_activities:
                posting = self.postings[activity]
                posting.discard(i)
                if not posting:
                    del self.postings[activity]
            for activity in new_activities - old_activities:
                self.postings.setdefault(activity, set()).add(i)
            self.traces[i] = new_trace
            self.activity_sets[i] = new_activities
            self.pair_sets[i] = frozenset(new_trace.pairs())


@dataclass(frozen=True, slots=True)
class MergeDelta:
    """Everything one candidate merge changes, in patchable form.

    ``counts`` is the fully patched :class:`LogCounts` of the merged log;
    ``affected`` the rewritten traces (position, new trace);
    ``activity_changes`` / ``pair_changes`` map each touched counter key to
    its ``(old, new)`` integer counts — the raw material for computing
    which nodes' in/out edge sets changed (and hence where Proposition-2
    levels must be recomputed).
    """

    run: tuple[str, ...]
    name: str
    counts: LogCounts
    affected: tuple[tuple[int, Trace], ...]
    activity_changes: dict[str, tuple[int, int]]
    pair_changes: dict[tuple[str, str], tuple[int, int]]

    def changed_nodes(self, min_frequency: float = 0.0) -> tuple[set[str], set[str]]:
        """``(in_changed, out_changed)``: nodes whose real edge sets moved.

        A node's *in*-edge set changes when it gains or loses a
        surviving-the-``min_frequency``-filter incoming edge; likewise
        *out* for outgoing.  Run members and the composite name are always
        included (nodes removed/added outright).  These are exactly the
        ``changed`` sets :func:`repro.graph.levels.patched_longest_distances`
        needs for the forward and reversed merged graphs respectively.
        """
        tc = self.counts.trace_count
        in_changed: set[str] = set(self.run)
        out_changed: set[str] = set(self.run)
        in_changed.add(self.name)
        out_changed.add(self.name)
        for (source, target), (old, new) in self.pair_changes.items():
            present_old = old > 0 and old / tc >= min_frequency
            present_new = new > 0 and new / tc >= min_frequency
            if present_old != present_new:
                in_changed.add(target)
                out_changed.add(source)
        return in_changed, out_changed


def merge_counts(counts: LogCounts, index: TraceIndex, run: Sequence[str]) -> MergeDelta:
    """Patch *counts* for merging *run*, touching only affected traces.

    Equivalent to rewriting the log with :func:`merge_run_in_log` and
    recounting from scratch, but proportional to the traces that actually
    contain the contiguous run.  *counts* is not mutated; the returned
    delta carries a patched copy.
    """
    run = tuple(run)
    if len(run) < 2:
        raise GraphError(f"a composite run needs at least two members, got {run!r}")
    if len(set(run)) != len(run):
        raise GraphError(f"composite run has repeated members: {run!r}")
    name = composite_name(run)

    activity = dict(counts.activity)
    pair = dict(counts.pair)
    activity_changes: dict[str, tuple[int, int]] = {}
    pair_changes: dict[tuple[str, str], tuple[int, int]] = {}
    affected: list[tuple[int, Trace]] = []

    for i in index.candidate_traces(run):
        trace = index.traces[i]
        new_trace = trace.replace_run(run, name)
        if new_trace.activities == trace.activities:
            continue  # members present but never contiguous in this trace
        affected.append((i, new_trace))
        old_activities = index.activity_sets[i]
        new_activities = new_trace.distinct_activities()
        for a in old_activities - new_activities:
            if a not in activity_changes:
                activity_changes[a] = (activity.get(a, 0), 0)
            remaining = activity[a] - 1
            if remaining:
                activity[a] = remaining
            else:
                del activity[a]
        for a in new_activities - old_activities:
            if a not in activity_changes:
                activity_changes[a] = (activity.get(a, 0), 0)
            activity[a] = activity.get(a, 0) + 1
        old_pairs = index.pair_sets[i]
        new_pairs = frozenset(new_trace.pairs())
        for p in old_pairs - new_pairs:
            if p not in pair_changes:
                pair_changes[p] = (pair.get(p, 0), 0)
            remaining = pair[p] - 1
            if remaining:
                pair[p] = remaining
            else:
                del pair[p]
        for p in new_pairs - old_pairs:
            if p not in pair_changes:
                pair_changes[p] = (pair.get(p, 0), 0)
            pair[p] = pair.get(p, 0) + 1

    activity_changes = {
        a: (old, activity.get(a, 0)) for a, (old, _) in activity_changes.items()
    }
    pair_changes = {p: (old, pair.get(p, 0)) for p, (old, _) in pair_changes.items()}
    return MergeDelta(
        run=run,
        name=name,
        counts=LogCounts(counts.trace_count, activity, pair),
        affected=tuple(affected),
        activity_changes=activity_changes,
        pair_changes=pair_changes,
    )


def merged_member_map(
    activities: Iterable[str],
    run: Sequence[str],
    members: Mapping[str, frozenset[str]] | None,
) -> dict[str, frozenset[str]]:
    """The node → original-activities map after merging *run*.

    Mirrors the bookkeeping of :func:`merge_run_in_log` (same rule, applied
    to the merged activity set) so the delta path produces identical member
    maps to the rewrite path.
    """
    name = composite_name(run)
    new_members: dict[str, frozenset[str]] = {}
    for activity in activities:
        if activity == name:
            new_members[activity] = expand_members(run, members)
        elif members is not None and activity in members:
            new_members[activity] = members[activity]
        else:
            new_members[activity] = frozenset({activity})
    return new_members


def apply_delta_to_log(log: EventLog, delta: MergeDelta) -> EventLog:
    """The merged log, rebuilt by swapping only the affected traces.

    Equal (as a trace multiset, position for position) to
    ``merge_run_in_log(log, delta.run)[0]``.
    """
    traces = list(log.traces)
    for i, new_trace in delta.affected:
        traces[i] = new_trace
    return EventLog(traces, name=log.name)


def merged_graph_from_delta(
    parent_graph: DependencyGraph,
    delta: MergeDelta,
    min_frequency: float,
    members: Mapping[str, frozenset[str]],
    patch_reversed: bool = True,
) -> DependencyGraph:
    """Build the merged graph from a delta, with patched levels pre-seeded.

    The graph is constructed from the patched statistics (bit-identical to
    the full rebuild) and its Proposition-2 levels — plus those of its
    reversed graph when *patch_reversed* — are computed with
    :func:`repro.graph.levels.patched_longest_distances` from the parent's
    cached levels, so the per-candidate cost is proportional to the dirty
    region rather than the whole graph.
    """
    from repro.graph.levels import patched_longest_distances

    graph = DependencyGraph.from_statistics(
        delta.counts.statistics(),
        name=parent_graph.name,
        min_frequency=min_frequency,
        members=members,
    )
    in_changed, out_changed = delta.changed_nodes(min_frequency)
    graph._seed_levels(patched_longest_distances(graph, parent_graph.levels(), in_changed))
    if patch_reversed:
        reversed_graph = graph.reversed()
        reversed_graph._seed_levels(
            patched_longest_distances(
                reversed_graph, parent_graph.reversed().levels(), out_changed
            )
        )
    return graph
