"""Composite-event merging.

Section 4 treats a composite event — several singleton events that jointly
correspond to one event in the other log — "as one node in constructing
the dependency graph".  The only faithful way to obtain the merged graph's
frequencies is to rewrite the *log* (collapse each contiguous occurrence
of the member run into one event) and rebuild the graph from the rewritten
log; merging at the graph level cannot recover the per-trace co-occurrence
counts.  This module implements that rewriting plus composite bookkeeping.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.exceptions import GraphError
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog


def composite_name(run: Sequence[str]) -> str:
    """The canonical node name of a composite event over *run*.

    The name preserves the member order (``⟨C+D⟩``) so merged logs stay
    human-readable; angle quotes keep it collision-free against ordinary
    activity names containing ``+``.
    """
    if not run:
        raise GraphError("a composite event needs at least one member")
    return "⟨" + "+".join(run) + "⟩"


def expand_members(
    run: Sequence[str], members: Mapping[str, frozenset[str]] | None = None
) -> frozenset[str]:
    """Original activities covered by a composite over *run*.

    When members of *run* are themselves composites, their member sets are
    unioned, so ground-truth evaluation always sees base activities.
    """
    covered: set[str] = set()
    for node in run:
        if members is not None and node in members:
            covered.update(members[node])
        else:
            covered.add(node)
    return frozenset(covered)


def merge_run_in_log(
    log: EventLog,
    run: Sequence[str],
    members: Mapping[str, frozenset[str]] | None = None,
) -> tuple[EventLog, dict[str, frozenset[str]]]:
    """Collapse contiguous occurrences of *run* in *log* into one event.

    Returns the rewritten log and the updated node -> original-activities
    mapping (all untouched activities map to themselves or their previous
    member sets).
    """
    run = tuple(run)
    if len(run) < 2:
        raise GraphError(f"a composite run needs at least two members, got {run!r}")
    if len(set(run)) != len(run):
        raise GraphError(f"composite run has repeated members: {run!r}")
    name = composite_name(run)
    merged = log.merge_composite(run, name)
    new_members: dict[str, frozenset[str]] = {}
    for activity in merged.activities():
        if activity == name:
            new_members[activity] = expand_members(run, members)
        elif members is not None and activity in members:
            new_members[activity] = members[activity]
        else:
            new_members[activity] = frozenset({activity})
    return merged, new_members


def merge_runs_in_log(
    log: EventLog, runs: Iterable[Sequence[str]]
) -> tuple[EventLog, dict[str, frozenset[str]]]:
    """Apply several non-overlapping composite merges in sequence."""
    members: dict[str, frozenset[str]] = {a: frozenset({a}) for a in log.activities()}
    current = log
    for run in runs:
        current, members = merge_run_in_log(current, run, members)
    return current, members


def merged_dependency_graph(
    log: EventLog,
    runs: Iterable[Sequence[str]],
    min_frequency: float = 0.0,
) -> DependencyGraph:
    """Dependency graph of *log* after merging the composite *runs*."""
    merged, members = merge_runs_in_log(log, runs)
    return DependencyGraph.from_log(merged, min_frequency=min_frequency, members=members)
