"""Exhaustive optimal composite event matching (Problem 1).

Theorem 3 proves the optimal problem NP-hard, so this brute force is only
feasible for tiny candidate pools; the test suite uses it to check that
the greedy heuristic of :mod:`repro.core.composite` finds optimal or
near-optimal merge sets on small instances, and that the NP-hard objective
is computed consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.exceptions import MatchingError
from repro.graph.dependency import DependencyGraph
from repro.graph.merge import merge_runs_in_log
from repro.logs.log import EventLog
from repro.similarity.labels import LabelSimilarity

#: Safety valve: the search evaluates |packings1| * |packings2| similarity
#: matrices; refuse to start beyond this many evaluations.
MAX_EVALUATIONS = 2_000

#: Enumerating packings of more candidates than this is hopeless anyway
#: (2^n subsets); refuse before allocating anything.
MAX_CANDIDATES = 16


def non_overlapping_subsets(
    candidates: Sequence[tuple[str, ...]],
) -> list[tuple[tuple[str, ...], ...]]:
    """All pairwise-disjoint subsets of *candidates* (the set packings).

    Includes the empty packing.  Candidates are compared on their member
    sets; a subset qualifies when no activity occurs in two chosen runs.
    """
    if len(candidates) > MAX_CANDIDATES:
        raise MatchingError(
            f"cannot enumerate packings of {len(candidates)} candidates "
            f"(limit {MAX_CANDIDATES}); the problem is NP-hard — use "
            f"CompositeMatcher instead"
        )
    packings: list[tuple[tuple[str, ...], ...]] = [()]
    for size in range(1, len(candidates) + 1):
        for combo in combinations(candidates, size):
            seen: set[str] = set()
            disjoint = True
            for run in combo:
                if seen & set(run):
                    disjoint = False
                    break
                seen.update(run)
            if disjoint:
                packings.append(combo)
    return packings


@dataclass(frozen=True, slots=True)
class OptimalCompositeResult:
    """The best packing pair found by exhaustive search."""

    runs_first: tuple[tuple[str, ...], ...]
    runs_second: tuple[tuple[str, ...], ...]
    average: float
    evaluations: int


def optimal_composite_matching(
    log_first: EventLog,
    log_second: EventLog,
    candidates_first: Sequence[tuple[str, ...]],
    candidates_second: Sequence[tuple[str, ...]],
    config: EMSConfig | None = None,
    label_similarity: LabelSimilarity | None = None,
) -> OptimalCompositeResult:
    """Solve Problem 1 exactly by enumerating all packing pairs."""
    packings_first = non_overlapping_subsets(candidates_first)
    packings_second = non_overlapping_subsets(candidates_second)
    total = len(packings_first) * len(packings_second)
    if total > MAX_EVALUATIONS:
        raise MatchingError(
            f"optimal search would need {total} similarity evaluations "
            f"(limit {MAX_EVALUATIONS}); the problem is NP-hard — use "
            f"CompositeMatcher instead"
        )
    engine = EMSEngine(config, label_similarity)
    best: OptimalCompositeResult | None = None
    evaluations = 0
    for runs_first in packings_first:
        merged_first, members_first = merge_runs_in_log(log_first, runs_first)
        graph_first = DependencyGraph.from_log(merged_first, members=members_first)
        for runs_second in packings_second:
            merged_second, members_second = merge_runs_in_log(log_second, runs_second)
            graph_second = DependencyGraph.from_log(merged_second, members=members_second)
            average = engine.similarity(graph_first, graph_second).matrix.average()
            evaluations += 1
            if best is None or average > best.average:
                best = OptimalCompositeResult(runs_first, runs_second, average, evaluations)
    assert best is not None  # packings always include the empty packing
    return OptimalCompositeResult(
        best.runs_first, best.runs_second, best.average, evaluations
    )
