"""The EMS core: iterative similarity, estimation, bounds, composites."""

from repro.core.analysis import (
    EstimationErrorReport,
    convergence_curve,
    estimation_error,
)
from repro.core.composite import (
    CompositeMatcher,
    CompositeMatchResult,
    CompositeStats,
    discover_candidates,
)
from repro.core.config import EMSConfig
from repro.core.ems import (
    EMSEngine,
    EMSResult,
    LabelMatrixCache,
    WarmStart,
    edge_agreement,
    iteration_trace,
)
from repro.core.incremental import CandidateEvaluation, IncrementalSearchState
from repro.core.matrix import SimilarityMatrix
from repro.core.optimal import OptimalCompositeResult, optimal_composite_matching

__all__ = [
    "EMSConfig",
    "EstimationErrorReport",
    "convergence_curve",
    "estimation_error",
    "EMSEngine",
    "EMSResult",
    "LabelMatrixCache",
    "WarmStart",
    "CandidateEvaluation",
    "IncrementalSearchState",
    "SimilarityMatrix",
    "edge_agreement",
    "iteration_trace",
    "CompositeMatcher",
    "CompositeMatchResult",
    "CompositeStats",
    "discover_candidates",
    "OptimalCompositeResult",
    "optimal_composite_matching",
]
