"""Optional compiled fixpoint kernel (``EMSConfig(kernel="compiled")``).

The vectorized kernel's per-iteration cost is NumPy dispatch plus the
materialization of the ``(m, A, B)`` ``weighted`` tensor per degree
bucket.  When `numba <https://numba.pydata.org>`_ is installed, this
module JIT-compiles the bucket evaluation into fused machine-code loops:
the gather, the edge-agreement multiply, the row/column maxima and the
two directional sums run in one pass per pair with no intermediate
tensor at all.  Everything around the inner loop — bucket construction,
Proposition-2 prefix pruning, label blending, budget accounting via
``_commit_pending`` — is inherited unchanged from
:class:`~repro.core.ems._VectorizedRun`, so the compiled kernel shares
the vectorized kernel's exact schedule, ``pair_updates`` totals and
mid-iteration budget-cut semantics.

numba is strictly optional (the repository's baseline environment does
not ship it): without it the kernel degrades to the pure-Python
vectorized implementation, bit-identical by construction, announced by a
one-time logged warning so a benchmark asking for machine code knows it
did not get any.  :data:`HAS_NUMBA` tells callers (benchmarks, tests)
which mode they are in.

Importing this module registers ``"compiled"`` in the kernel registry of
:mod:`repro.core.ems`; ``EMSEngine`` triggers that import lazily the
first time a config asks for the kernel.
"""

from __future__ import annotations

import numpy as np

from repro.core.ems import _KERNELS, _VectorizedRun
from repro.core.pruning import active_prefix_length
from repro.obs import get_logger

_logger = get_logger(__name__)

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAS_NUMBA = True
except ImportError:
    njit = None
    HAS_NUMBA = False

#: Set after the one-time fallback warning so a composite search asking
#: for the compiled kernel thousands of times logs exactly once.
_FALLBACK_NOTED = False


def _note_fallback() -> None:
    global _FALLBACK_NOTED
    if not _FALLBACK_NOTED:
        _logger.warning(
            "kernel='compiled' requested but numba is not importable; "
            "falling back to the pure-Python vectorized kernel "
            "(results are identical, the JIT speedup is not)"
        )
        _FALLBACK_NOTED = True


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _bucket_updates(
        previous: np.ndarray,
        preds_first: np.ndarray,
        preds_second: np.ndarray,
        agreement: np.ndarray,
        c: float,
        use_agreement: bool,
        inverse_first: float,
        inverse_second: float,
    ) -> np.ndarray:
        """Both directional terms of formula (1) for one bucket's pairs.

        Returns ``s_forward * inverse_first + s_backward * inverse_second``
        per pair — the caller applies ``alpha/2`` and the label blend.
        Similarities and agreements are non-negative, so the maxima can
        start from the first element without a sentinel.
        """
        m, degree_first = preds_first.shape
        degree_second = preds_second.shape[1]
        out = np.empty(m, dtype=previous.dtype)
        for k in range(m):
            forward = 0.0
            for a in range(degree_first):
                row = preds_first[k, a]
                best = 0.0
                for b in range(degree_second):
                    if use_agreement:
                        value = agreement[k, a, b] * previous[row, preds_second[k, b]]
                    else:
                        value = c * previous[row, preds_second[k, b]]
                    if value > best:
                        best = value
                forward += best
            backward = 0.0
            for b in range(degree_second):
                col = preds_second[k, b]
                best = 0.0
                for a in range(degree_first):
                    if use_agreement:
                        value = agreement[k, a, b] * previous[preds_first[k, a], col]
                    else:
                        value = c * previous[preds_first[k, a], col]
                    if value > best:
                        best = value
                backward += best
            out[k] = forward * inverse_first + backward * inverse_second
        return out


class _CompiledRun(_VectorizedRun):
    """The numba-compiled formulation of the bucketed fixpoint.

    Identical to :class:`_VectorizedRun` in everything but the phase-1
    bucket evaluation, which runs through :func:`_bucket_updates` when
    numba is available.  Without numba, :meth:`step` delegates to the
    inherited vectorized implementation — the mandatory pure-Python
    fallback — after :func:`_note_fallback` logged the degradation once.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if not HAS_NUMBA:
            _note_fallback()

    # ------------------------------------------------------------------
    def step(self) -> float:
        if not HAS_NUMBA:
            return super().step()
        meter = self._meter
        if meter is not None:
            meter.check()
        self.iterations += 1
        iteration = self.iterations
        if self._buckets is None:
            self._buckets = self._build_buckets()
        config = self.config
        half_alpha = config.alpha / 2.0
        label_weight = 1.0 - config.alpha
        use_pruning = config.use_pruning
        previous = self.values.copy()
        label = self.label_matrix
        c = float(config.c)

        pending: list[tuple[np.ndarray, np.ndarray]] = []
        total_active = 0
        for bucket in self._buckets:
            if use_pruning:
                count = active_prefix_length(bucket.levels, iteration)
                if count == 0:
                    continue
                sel = slice(0, count)
            else:
                sel = slice(None)
            rows = bucket.rows[sel]
            cols = bucket.cols[sel]
            preds_first = np.ascontiguousarray(bucket.preds_first[sel])
            preds_second = np.ascontiguousarray(bucket.preds_second[sel])
            if bucket.agreement is not None:
                agreement = np.ascontiguousarray(bucket.agreement[sel])
                use_agreement = True
            else:
                agreement = np.empty((0, 0, 0), dtype=previous.dtype)
                use_agreement = False
            combined = _bucket_updates(
                previous, preds_first, preds_second, agreement, c,
                use_agreement, bucket.inverse_first, bucket.inverse_second,
            )
            updated = half_alpha * combined
            if label_weight:
                updated = updated + label_weight * label[rows, cols]
            pending.append((bucket.linear[sel], updated))
            total_active += len(rows)

        return self._commit_pending(pending, previous, total_active, meter)


_KERNELS["compiled"] = _CompiledRun
