"""Incremental candidate evaluation for the composite search (Section 4).

The greedy loop of :class:`repro.core.composite.CompositeMatcher` evaluates
every remaining candidate merge in every round.  The cold path pays, per
candidate: a full log rewrite, a full recount, two graph builds with fresh
longest-distance passes, and an ``O(n1 * n2)`` Python-dict Uc seeding.
This module replaces all of that with delta work proportional to what the
merge actually touches, while staying **bit-identical** to the cold path:

* **delta graph merges** — :func:`repro.graph.merge.merge_counts` patches
  the parent round's integer trace counters from only the traces containing
  the run; identical integers divided by the same trace count give
  bit-identical frequencies, hence bit-identical graphs
  (:func:`repro.graph.merge.merged_graph_from_delta`), with Proposition-2
  levels recomputed only where ``l(v)`` can change;
* **warm-started fixpoint** — the parent round's converged directional
  matrices are mapped onto the merged node grid as a
  :class:`repro.core.ems.WarmStart` whose non-dirty region is exactly the
  Proposition-4 unchanged set the cold path seeds through ``fixed_pairs``
  dictionaries.  Same fixed cells, same values, array-built — the fixpoint
  then re-iterates only pairs in the dirty frontier;
* **estimation-bound screening** — before any graph is built, the
  candidate's average similarity is bounded from the closed-form Section
  3.5 coefficients (:func:`repro.core.bounds.estimation_screen_bound`,
  computed straight from the patched counts).  A candidate whose bound
  cannot beat the incumbent ``Bd`` is rejected outright.  The bound is
  sound, so screening never changes the merge trajectory; it is disabled
  while a :class:`~repro.runtime.budget.BudgetMeter` is active so budget
  accounting stays identical to the unscreened path.

``tests/property/test_property_incremental.py`` holds the equivalence to
account: identical trajectories, scores and ``pairs_fixed`` against the
cold path, including under mid-round budget exhaustion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounds import SCREEN_MARGIN, estimation_screen_bound
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine, EMSResult, LabelMatrixCache, WarmStart, edge_agreement
from repro.core.estimation import estimation_coefficients
from repro.core.matrix import SimilarityMatrix
from repro.graph.dependency import DependencyGraph
from repro.graph.merge import (
    LogCounts,
    MergeDelta,
    TraceIndex,
    apply_delta_to_log,
    merge_counts,
    merged_graph_from_delta,
    merged_member_map,
)
from repro.graph.reachability import real_ancestors, real_descendants
from repro.logs.log import EventLog
from repro.obs import NULL_OBSERVER, Observer
from repro.runtime.budget import BudgetMeter
from repro.similarity.labels import CompositeAwareSimilarity, LabelSimilarity, OpaqueSimilarity

#: Slack subtracted from the incumbent bound before rejecting a candidate,
#: so borderline floating-point ties always fall through to the exact
#: evaluation instead of risking a trajectory divergence.  Shared with the
#: best-first cutoff as :data:`repro.core.bounds.SCREEN_MARGIN`.
_SCREEN_MARGIN = SCREEN_MARGIN


@dataclass(slots=True)
class CandidateEvaluation:
    """What :meth:`IncrementalSearchState.evaluate` learned about one candidate.

    ``outcome`` is ``None`` when the candidate was killed without a full
    evaluation — by the Bd abort (``screened`` False) or by the estimation
    screen (``screened`` True, ``bound`` holding the losing upper bound).
    """

    outcome: EMSResult | None
    pairs_fixed: int
    screened: bool
    bound: float | None = None


@dataclass(slots=True)
class _IncrementalSide:
    """One log's evolving state plus the delta-merge support structures."""

    log: EventLog
    members: dict[str, frozenset[str]]
    graph: DependencyGraph
    counts: LogCounts
    index: TraceIndex


class IncrementalSearchState:
    """Round-scoped incremental evaluation engine for the composite search.

    Lifecycle: :meth:`reset` once per match with the initial side states,
    :meth:`begin_round` at the top of every greedy round with the current
    result's directional matrices, :meth:`evaluate` per candidate, and
    :meth:`apply_accepted` when a round accepts a merge.  The same object
    runs inside pool workers, which replay accepted merges from the task
    history to stay in lockstep with the parent (see
    ``_incremental_pool_evaluate`` in :mod:`repro.core.composite`).
    """

    def __init__(
        self,
        config: EMSConfig,
        base_label: LabelSimilarity,
        min_edge_frequency: float,
        use_unchanged: bool,
        use_bounds: bool,
        label_cache: LabelMatrixCache | None = None,
        observer: Observer | None = None,
    ):
        self.config = config
        self.base_label = base_label
        self.min_edge_frequency = min_edge_frequency
        self.use_unchanged = use_unchanged
        self.use_bounds = use_bounds
        self.label_cache = label_cache
        self.observer = observer if observer is not None else NULL_OBSERVER
        self._sides: list[_IncrementalSide] = []
        self._directional: dict[str, SimilarityMatrix] | None = None
        #: Per (direction, side): the parent matrix as a raw array, built
        #: lazily once per round and sliced into candidate warm starts.
        self._warm_values: dict[str, np.ndarray] = {}
        #: Deltas computed by :meth:`candidate_bound` this round, consumed
        #: by the matching :meth:`evaluate` call so best-first scheduling
        #: never runs ``merge_counts`` twice for one candidate.  Keyed by
        #: ``(side_index, run)``; flushed whenever the side states move.
        self._delta_memo: dict[tuple[int, tuple[str, ...]], MergeDelta] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(
        self, sides: tuple[tuple[EventLog, dict[str, frozenset[str]], DependencyGraph], ...]
    ) -> None:
        """Adopt the match's initial per-side (log, members, graph) states."""
        self._sides = [
            _IncrementalSide(
                log=log,
                members=dict(members),
                graph=graph,
                counts=LogCounts.from_log(log),
                index=TraceIndex(log),
            )
            for log, members, graph in sides
        ]
        self._directional = None
        self._warm_values = {}
        self._delta_memo = {}

    def begin_round(self, directional: dict[str, SimilarityMatrix] | None) -> None:
        """Start a greedy round; *directional* feeds this round's warm starts."""
        self._directional = directional if self.use_unchanged else None
        self._warm_values = (
            {name: matrix.values for name, matrix in self._directional.items()}
            if self._directional
            else {}
        )
        self._delta_memo = {}

    def side(self, side_index: int) -> _IncrementalSide:
        return self._sides[side_index]

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------
    def candidate_bound(self, side_index: int, run: tuple[str, ...]) -> float:
        """The sound estimation upper bound of one candidate, graph-free.

        Best-first scheduling calls this for every candidate of a round
        before any full evaluation.  The ``merge_counts`` delta it
        computes is memoized for the follow-up :meth:`evaluate` call on
        the same candidate, so the priority pass adds only the (cheap)
        bound arithmetic over the static order's cost.
        """
        side = self._sides[side_index]
        other = self._sides[1 - side_index]
        key = (side_index, run)
        delta = self._delta_memo.get(key)
        if delta is None:
            delta = merge_counts(side.counts, side.index, run)
            self._delta_memo[key] = delta
        return self._screen_bound(delta, other.graph)

    def evaluate(
        self,
        side_index: int,
        run: tuple[str, ...],
        abort_below: float,
        meter: BudgetMeter | None = None,
        screen_bound: float | None = None,
    ) -> CandidateEvaluation:
        """Score merging *run* on one side, incrementally.

        Mirrors ``_evaluate_candidate`` step for step — same graphs, same
        fixed pairs, same engine calls — so results are interchangeable
        with the cold path.  *screen_bound* short-circuits the screening
        recomputation when the caller already holds this candidate's
        :meth:`candidate_bound` (the best-first path); the comparison
        against *abort_below* is still performed here so screening
        semantics are identical either way.
        """
        side = self._sides[side_index]
        other = self._sides[1 - side_index]
        delta = self._delta_memo.pop((side_index, run), None)
        if delta is None:
            delta = merge_counts(side.counts, side.index, run)

        if self.config.screening and meter is None:
            bound = (
                screen_bound
                if screen_bound is not None
                else self._screen_bound(delta, other.graph)
            )
            if bound < abort_below - _SCREEN_MARGIN:
                self.observer.count("composite_candidates_screened_total")
                return CandidateEvaluation(
                    outcome=None, pairs_fixed=0, screened=True, bound=bound
                )

        merged_members = merged_member_map(
            sorted(delta.counts.activity), run, side.members
        )
        need_backward = self.config.direction in ("backward", "both")
        with self.observer.span("graph.build", merged=True, run=list(run)):
            merged_graph = merged_graph_from_delta(
                side.graph, delta, self.min_edge_frequency, merged_members,
                patch_reversed=need_backward,
            )
        if side_index == 0:
            members_pair = (merged_members, other.members)
            graphs = (merged_graph, other.graph)
        else:
            members_pair = (other.members, merged_members)
            graphs = (other.graph, merged_graph)
        if isinstance(self.base_label, OpaqueSimilarity) or self.config.alpha == 1.0:
            label: LabelSimilarity = self.base_label
        else:
            label = CompositeAwareSimilarity(self.base_label, *members_pair)
        engine = EMSEngine(self.config, label, self.label_cache, observer=self.observer)

        fixed_forward, fixed_backward, pairs_fixed = self._warm_starts(
            side_index, run, delta.name, merged_graph, other.graph
        )
        if self.use_bounds:
            outcome = engine.similarity_with_abort(
                graphs[0], graphs[1], abort_below, fixed_forward, fixed_backward,
                meter=meter,
            )
        else:
            outcome = engine.similarity(
                graphs[0], graphs[1], fixed_forward, fixed_backward, meter=meter
            )
        return CandidateEvaluation(outcome=outcome, pairs_fixed=pairs_fixed, screened=False)

    def apply_accepted(
        self, side_index: int, run: tuple[str, ...]
    ) -> tuple[EventLog, dict[str, frozenset[str]], DependencyGraph]:
        """Advance one side past an accepted merge; returns its new state."""
        self._delta_memo = {}
        side = self._sides[side_index]
        delta = merge_counts(side.counts, side.index, run)
        members = merged_member_map(sorted(delta.counts.activity), run, side.members)
        graph = merged_graph_from_delta(
            side.graph, delta, self.min_edge_frequency, members,
            patch_reversed=self.config.direction in ("backward", "both"),
        )
        side.log = apply_delta_to_log(side.log, delta)
        side.members = members
        side.graph = graph
        side.counts = delta.counts
        side.index.apply(delta)
        return side.log, side.members, side.graph

    def fast_forward(
        self, history: tuple[tuple[int, tuple[str, ...]], ...]
    ) -> list[tuple[EventLog, dict[str, frozenset[str]], DependencyGraph]]:
        """Replay an accepted-merge *history* after :meth:`reset`.

        Used to restore a checkpointed search: the snapshot records only
        the ``(side, run)`` merge sequence, and replaying it through the
        same :meth:`apply_accepted` machinery that produced it rebuilds
        bit-identical side states.  Returns the final per-side states in
        side order.
        """
        for side_index, run in history:
            self.apply_accepted(side_index, tuple(run))
        return [
            (side.log, side.members, side.graph) for side in self._sides
        ]

    # ------------------------------------------------------------------
    # Warm starts (Proposition 4 in array form)
    # ------------------------------------------------------------------
    def _warm_starts(
        self,
        side_index: int,
        run: tuple[str, ...],
        name: str,
        merged_graph: DependencyGraph,
        other_graph: DependencyGraph,
    ) -> tuple[WarmStart | None, WarmStart | None, int]:
        """The per-direction warm starts for merging *run* on one side.

        Fixes exactly the pairs ``_unchanged_pairs`` fixes — parent nodes
        with no real path from the run (per direction) crossed with every
        node of the other graph — at exactly the parent matrix values.
        """
        if not self.use_unchanged or self._directional is None:
            return None, None, 0
        parent_graph = self._sides[side_index].graph
        parent_nodes = parent_graph.nodes
        merged_index = {node: i for i, node in enumerate(merged_graph.nodes)}
        n_other = len(other_graph.nodes)
        # Carried values are narrowed to the run dtype here, matching what
        # a cold run would do when seeding the same fixed pairs.
        dtype = self.config.np_dtype
        starts: dict[str, WarmStart] = {}
        count = 0
        for direction, parent_values in self._warm_values.items():
            if direction == "forward":
                affected = set(run) | real_descendants(parent_graph, run)
            else:
                affected = set(run) | real_ancestors(parent_graph, run)
            affected.add(name)
            merged_rows: list[int] = []
            parent_rows: list[int] = []
            for parent_pos, node in enumerate(parent_nodes):
                if node not in affected:
                    merged_rows.append(merged_index[node])
                    parent_rows.append(parent_pos)
            if side_index == 0:
                shape = (len(merged_index), n_other)
                values = np.zeros(shape, dtype=dtype)
                dirty = np.ones(shape, dtype=bool)
                if merged_rows:
                    values[merged_rows, :] = parent_values[parent_rows, :]
                    dirty[merged_rows, :] = False
            else:
                shape = (n_other, len(merged_index))
                values = np.zeros(shape, dtype=dtype)
                dirty = np.ones(shape, dtype=bool)
                if merged_rows:
                    values[:, merged_rows] = parent_values[:, parent_rows]
                    dirty[:, merged_rows] = False
            start = WarmStart(values=values, dirty=dirty)
            starts[direction] = start
            count += start.pairs_fixed
        return starts.get("forward"), starts.get("backward"), count

    # ------------------------------------------------------------------
    # Estimation-bound screening (Section 3.5 as a filter)
    # ------------------------------------------------------------------
    def _screen_bound(self, delta: MergeDelta, other_graph: DependencyGraph) -> float:
        """Upper bound of the candidate's average similarity, graph-free.

        Degrees and node frequencies of the merged side come straight from
        the patched counts; the other side reads its (already built)
        graph.  With a non-opaque label similarity the label term is
        bounded by ``S^L <= 1`` so no label matrix is needed either.
        """
        config = self.config
        stats = delta.counts.statistics()
        tc = delta.counts.trace_count
        threshold = self.min_edge_frequency
        merged_nodes = sorted(delta.counts.activity)
        in_degree = {node: 1 for node in merged_nodes}   # the v^X source edge
        out_degree = {node: 1 for node in merged_nodes}
        for (source, target), freq in stats.pair_frequencies.items():
            if freq >= threshold:
                in_degree[target] += 1
                out_degree[source] += 1
        merged_freq = np.array([stats.activity_frequencies[n] for n in merged_nodes])
        other_nodes = other_graph.nodes
        other_freq = np.array([other_graph.frequency(n) for n in other_nodes])
        other_in = np.array([len(other_graph.predecessors(n)) for n in other_nodes])
        other_out = np.array([len(other_graph.successors(n)) for n in other_nodes])
        merged_in = np.array([in_degree[n] for n in merged_nodes])
        merged_out = np.array([out_degree[n] for n in merged_nodes])

        if config.use_edge_weights:
            artificial = edge_agreement(merged_freq, other_freq, config.c)
        else:
            artificial = np.full((len(merged_nodes), len(other_nodes)), config.c)
        if isinstance(self.base_label, OpaqueSimilarity) or config.alpha == 1.0:
            label = np.zeros_like(artificial)
        else:
            label = np.ones_like(artificial)  # S^L <= 1: stay an upper bound

        # Direction pre-counts: forward uses in-degrees, backward (reversed
        # graphs) uses out-degrees; the artificial agreement is symmetric,
        # and (q, a) are symmetric in (A, B), so the bound's mean does not
        # depend on which side is "first".
        bounds: list[float] = []
        if config.direction in ("forward", "both"):
            q, a = estimation_coefficients(
                merged_in, other_in, artificial, label, config.alpha, config.c
            )
            bounds.append(float(estimation_screen_bound(q, a).mean()))
        if config.direction in ("backward", "both"):
            q, a = estimation_coefficients(
                merged_out, other_out, artificial, label, config.alpha, config.c
            )
            bounds.append(float(estimation_screen_bound(q, a).mean()))
        return float(np.mean(bounds))
