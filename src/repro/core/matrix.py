"""Dense pairwise similarity matrices over two node vocabularies.

The matching layer exchanges similarities as a :class:`SimilarityMatrix`:
row labels come from the first graph's real nodes, column labels from the
second's.  Artificial events are excluded — Section 2 notes that pairs
containing ``v^X`` "should be omitted since these two events are introduced
artificially and do not actually exist in event logs".
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import MatrixLabelMismatch


class SimilarityMatrix:
    """A labeled dense matrix of pairwise similarities in [0, 1]."""

    __slots__ = ("_rows", "_cols", "_row_index", "_col_index", "_values")

    def __init__(
        self,
        rows: Sequence[str],
        cols: Sequence[str],
        values: np.ndarray,
    ):
        rows = tuple(rows)
        cols = tuple(cols)
        values = np.asarray(values, dtype=float)
        if values.shape != (len(rows), len(cols)):
            raise ValueError(
                f"values shape {values.shape} does not match labels "
                f"({len(rows)} x {len(cols)})"
            )
        if len(set(rows)) != len(rows) or len(set(cols)) != len(cols):
            raise ValueError("row and column labels must be unique")
        self._rows = rows
        self._cols = cols
        self._row_index = {label: i for i, label in enumerate(rows)}
        self._col_index = {label: j for j, label in enumerate(cols)}
        self._values = values

    @classmethod
    def zeros(cls, rows: Sequence[str], cols: Sequence[str]) -> "SimilarityMatrix":
        return cls(rows, cols, np.zeros((len(rows), len(cols))))

    @property
    def rows(self) -> tuple[str, ...]:
        return self._rows

    @property
    def cols(self) -> tuple[str, ...]:
        return self._cols

    @property
    def values(self) -> np.ndarray:
        """The underlying array (a defensive copy)."""
        return self._values.copy()

    def get(self, row: str, col: str) -> float:
        """The similarity of the pair ``(row, col)``."""
        return float(self._values[self._row_index[row], self._col_index[col]])

    def average(self) -> float:
        """Mean similarity over all pairs — the ``avg(S)`` of Section 4."""
        if self._values.size == 0:
            return 0.0
        return float(self._values.mean())

    def pairs(self) -> Iterator[tuple[str, str, float]]:
        """Yield ``(row, col, similarity)`` for every pair."""
        for i, row in enumerate(self._rows):
            for j, col in enumerate(self._cols):
                yield row, col, float(self._values[i, j])

    def best_column_for(self, row: str) -> tuple[str, float]:
        """The highest-similarity column for *row*."""
        i = self._row_index[row]
        j = int(np.argmax(self._values[i]))
        return self._cols[j], float(self._values[i, j])

    def combine(self, other: "SimilarityMatrix", weight: float = 0.5) -> "SimilarityMatrix":
        """Weighted average with *other*.

        The two matrices must cover the same row and column *label sets*
        (:class:`~repro.exceptions.MatrixLabelMismatch` otherwise — a
        positional average of unrelated vocabularies is never meaningful).
        Matching sets in a different *order* are aligned by label before
        averaging, so the result is label-correct regardless of ordering.
        """
        for axis, mine, theirs in (("rows", self._rows, other._rows),
                                   ("cols", self._cols, other._cols)):
            if set(mine) != set(theirs):
                only_self = tuple(sorted(set(mine) - set(theirs)))
                only_other = tuple(sorted(set(theirs) - set(mine)))
                raise MatrixLabelMismatch(
                    f"cannot combine matrices with different {axis} label sets "
                    f"(only in self: {only_self!r}; only in other: {only_other!r})",
                    axis=axis,
                    only_self=only_self,
                    only_other=only_other,
                )
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {weight}")
        values = other._values
        if self._rows != other._rows or self._cols != other._cols:
            row_order = [other._row_index[label] for label in self._rows]
            col_order = [other._col_index[label] for label in self._cols]
            values = values[np.ix_(row_order, col_order)]
        return SimilarityMatrix(
            self._rows, self._cols, weight * self._values + (1 - weight) * values
        )

    def transposed(self) -> "SimilarityMatrix":
        return SimilarityMatrix(self._cols, self._rows, self._values.T)

    def to_dict(self) -> dict[tuple[str, str], float]:
        """A plain ``{(row, col): similarity}`` dictionary."""
        return {(row, col): value for row, col, value in self.pairs()}

    def to_record(self, dtype: np.dtype | type | str | None = None) -> dict[str, Any]:
        """A picklable record of this matrix, optionally narrowed to *dtype*.

        The store keeps directional matrices at the dtype the fixpoint ran
        at (``EMSConfig.np_dtype``).  Values produced by a float32 run are
        held here as float64 that round-trips float32 exactly, so narrowing
        on write and widening on read is lossless — and restoring through
        :meth:`from_record` reproduces the original matrix bit-for-bit.
        """
        values = self._values if dtype is None else self._values.astype(dtype)
        return {
            "rows": self._rows,
            "cols": self._cols,
            "values": values,
            "dtype": str(values.dtype),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "SimilarityMatrix":
        """Rebuild a matrix from a :meth:`to_record` payload."""
        values = np.asarray(record["values"], dtype=np.dtype(record["dtype"]))
        return cls(tuple(record["rows"]), tuple(record["cols"]), values)

    def __repr__(self) -> str:
        return f"SimilarityMatrix({len(self._rows)} x {len(self._cols)})"
