"""Empirical analysis of the EMS computation.

Two analysis tools the paper motivates but does not ship:

* :func:`estimation_error` — the paper's conclusion names the estimation
  error bound an open problem ("thus far, we do not get any theoretical
  bound of estimation").  This measures it empirically: for a range of
  budgets ``I``, compare ``EMS+es`` values against the exact fixpoint.
* :func:`convergence_curve` — the per-iteration maximum change of the
  exact computation, which visualizes Theorem 1's geometric convergence
  (Lemma 5 bounds it by ``(alpha*c)^n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph


@dataclass(frozen=True, slots=True)
class EstimationErrorReport:
    """Estimation error of ``EMS+es`` at one budget ``I``."""

    budget: int
    max_abs_error: float
    mean_abs_error: float
    rmse: float

    def __str__(self) -> str:
        return (
            f"I={self.budget}: max |err| = {self.max_abs_error:.4f}, "
            f"mean |err| = {self.mean_abs_error:.4f}, rmse = {self.rmse:.4f}"
        )


def estimation_error(
    graph_first: DependencyGraph,
    graph_second: DependencyGraph,
    config: EMSConfig | None = None,
    budgets: Sequence[int] = (0, 1, 2, 3, 5, 10),
) -> list[EstimationErrorReport]:
    """Measure the estimation error against the exact fixpoint.

    Runs the exact EMS once, then ``EMS+es`` for each budget, and reports
    elementwise error statistics over the full similarity matrix.
    """
    base = config if config is not None else EMSConfig()
    if base.estimation_iterations is not None:
        base = base.with_(estimation_iterations=None)
    exact = EMSEngine(base).similarity(graph_first, graph_second).matrix.values

    reports: list[EstimationErrorReport] = []
    for budget in budgets:
        estimated = (
            EMSEngine(base.with_(estimation_iterations=budget))
            .similarity(graph_first, graph_second)
            .matrix.values
        )
        errors = np.abs(estimated - exact)
        reports.append(
            EstimationErrorReport(
                budget=budget,
                max_abs_error=float(errors.max(initial=0.0)),
                mean_abs_error=float(errors.mean()) if errors.size else 0.0,
                rmse=float(np.sqrt((errors**2).mean())) if errors.size else 0.0,
            )
        )
    return reports


def convergence_curve(
    graph_first: DependencyGraph,
    graph_second: DependencyGraph,
    config: EMSConfig | None = None,
    iterations: int = 10,
) -> list[float]:
    """Maximum per-pair change at each exact iteration (forward direction).

    Lemma 5 guarantees entry ``n`` is at most ``(alpha*c)^n``; the curve
    shows how much tighter the real contraction is on a given pair.
    """
    from repro.core.ems import iteration_trace

    base = config if config is not None else EMSConfig(direction="forward")
    if base.direction != "forward":
        base = base.with_(direction="forward")
    snapshots = iteration_trace(graph_first, graph_second, base, iterations=iterations)
    deltas: list[float] = []
    previous = np.zeros_like(snapshots[0].values)
    for snapshot in snapshots:
        current = snapshot.values
        deltas.append(float(np.abs(current - previous).max(initial=0.0)))
        previous = current
    return deltas
