"""Early-convergence pruning schedule (Proposition 2).

A pair ``(v1, v2)`` is guaranteed fixed after ``h = min(l(v1), l(v2))``
iterations, where ``l(v)`` is the longest artificial-source distance
(:mod:`repro.graph.levels`).  The schedule answers two questions for the
engine: "may I skip updating this pair at iteration ``n``?" and "after
which iteration is *everything* guaranteed fixed?" — the latter is
``min(max_v1 l(v1), max_v2 l(v2))`` per Section 3.4.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.dependency import DependencyGraph
from repro.graph.levels import max_finite_level


class ConvergenceSchedule:
    """Pair-level convergence bounds for a pair of dependency graphs."""

    __slots__ = ("levels_first", "levels_second", "pair_levels", "global_bound")

    def __init__(self, first: DependencyGraph, second: DependencyGraph):
        # Graphs cache their levels (DependencyGraph.levels), so repeated
        # schedules over the same graph — every candidate of a composite
        # round pairs a fresh merged graph with the same other-side graph —
        # pay the longest-distance pass only once per graph.
        self.levels_first = first.levels()
        self.levels_second = second.levels()
        l1 = np.array([self.levels_first[node] for node in first.nodes])
        l2 = np.array([self.levels_second[node] for node in second.nodes])
        #: ``h`` for each real pair: min(l(v1), l(v2)), shape (|V1|, |V2|).
        self.pair_levels = np.minimum(l1[:, None], l2[None, :])
        #: every pair is fixed after this many iterations (may be inf).
        self.global_bound = min(max_finite_level(self.levels_first),
                                max_finite_level(self.levels_second))

    def active_mask(self, iteration: int) -> np.ndarray:
        """Boolean mask of pairs that may still change at *iteration*.

        Iterations are 1-based; a pair with level ``h`` changes for the
        last time at iteration ``h``, so it is active while
        ``iteration <= h``.
        """
        return self.pair_levels >= iteration

    def all_fixed_after(self, iteration: int) -> bool:
        """True when no pair can change at iterations beyond *iteration*."""
        return not math.isinf(self.global_bound) and iteration >= self.global_bound


def prefix_schedule(levels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort order under which every iteration's active set is a prefix.

    Returns ``(order, sorted_levels)`` where *order* stably sorts *levels*
    descending.  A pair with level ``h`` is active while ``iteration <= h``
    (see :meth:`ConvergenceSchedule.active_mask`), so once pairs are laid
    out in this order the active population at iteration ``n`` is exactly
    the first :func:`active_prefix_length` entries — the vectorized and
    sparse kernels apply Proposition-2 pruning as a slice instead of a
    boolean gather (the sparse kernel additionally streams its chunks
    inside that prefix, so frozen pairs cost no scratch memory either).
    """
    order = np.argsort(-levels, kind="stable")
    return order, levels[order]


def active_prefix_length(sorted_levels: np.ndarray, iteration: int) -> int:
    """How many of the descending-sorted *sorted_levels* are still active.

    ``sorted_levels`` must come from :func:`prefix_schedule`; the result
    counts pairs with ``level >= iteration``.
    """
    return int(np.searchsorted(-sorted_levels, -iteration, side="right"))
