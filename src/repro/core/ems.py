"""The EMS (Event Matching Similarity) engine — the paper's Section 3.

Given two dependency graphs, the engine computes the pairwise similarity
of Definition 2 by fixpoint iteration (formula (1)):

    S(v1, v2) = alpha * (s(v1, v2) + s(v2, v1)) / 2 + (1 - alpha) * S^L(v1, v2)
    s(v1, v2) = (1/|pre(v1)|) * sum over v1' in pre(v1) of
                max over v2' in pre(v2) of C(v1, v1', v2, v2') * S(v1', v2')
    C(v1, v1', v2, v2') = c * (1 - |f(v1', v1) - f(v2', v2)| /
                                   (f(v1', v1) + f(v2', v2)))

Initialization: ``S^0(v1^X, v2^X) = 1`` and 0 everywhere else; pairs
containing an artificial event are never updated.  The iteration is
monotone, bounded and converges to a unique limit when ``alpha*c < 1``
(Theorem 1).

Features implemented here:

* **forward / backward / both** directions (Section 3.6; backward = the
  same computation on reversed graphs, "both" averages the two);
* **early-convergence pruning** (Proposition 2) via
  :class:`repro.core.pruning.ConvergenceSchedule`;
* **estimation** ``EMS+es`` (Section 3.5) after a budget of exact
  iterations;
* **bounded evaluation with abort** (Section 4.3): stop as soon as the
  upper bound of the average similarity falls below a target — the *Bd*
  pruning used by the composite matcher;
* instrumentation: the number of formula-(1) evaluations (``pair_updates``)
  reported in the paper's Figures 6 and 12.

Three interchangeable fixpoint kernels implement the iteration
(``EMSConfig.kernel``): the **reference** per-pair loop
(:class:`_DirectionalRun`, a readable spec of formula (1)); the default
**vectorized** kernel (:class:`_VectorizedRun`), which groups pairs into
degree buckets ``(|pre(v1)|, |pre(v2)|)`` and evaluates each iteration as
a handful of batched gather → multiply → max-reduce NumPy operations over
the whole active pair population; and the memory-lean **sparse** kernel
(:class:`_SparseRun`), which evaluates the same iteration as a CSR
gather–scatter over flat contribution chunks — the artificial
predecessor's constant row is factored out analytically into a per-pair
base term, and edge agreements are regenerated per chunk from node-level
CSR arrays instead of being held resident, so working memory is
``O(chunk)`` rather than the vectorized kernel's ``O(Σ m·A·B)`` tensors.
All kernels produce bit-identical accounting (``iterations``,
``pair_updates``) and similarities equal to within floating-point
associativity; ``tests/core/test_kernel_equivalence`` and
``tests/core/test_sparse_kernel_equivalence`` prove it differentially.
See ``docs/performance.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.bounds import matrix_upper_bound
from repro.core.config import EMSConfig
from repro.core.estimation import estimate_matrix, estimation_coefficients
from repro.core.matrix import SimilarityMatrix
from repro.core.pruning import ConvergenceSchedule, active_prefix_length, prefix_schedule
from repro.graph.dependency import ARTIFICIAL, DependencyGraph
from repro.obs import NULL_OBSERVER, Observer
from repro.runtime.budget import BudgetMeter
from repro.runtime.degrade import DegradationPolicy
from repro.runtime.report import STAGE_ESTIMATED, STAGE_EXACT, STAGE_PARTIAL
from repro.exceptions import BudgetExhausted
from repro.similarity.labels import LabelSimilarity, OpaqueSimilarity


@dataclass(frozen=True, slots=True)
class EMSResult:
    """Outcome of an EMS similarity computation.

    Attributes
    ----------
    matrix:
        Pairwise similarities over the real nodes of the two graphs.
    iterations:
        Iterations performed (summed over directions).
    pair_updates:
        Number of formula-(1) evaluations — the pruning-power metric of
        Figures 6 and 12.
    converged:
        Whether the fixpoint was reached (as opposed to hitting
        ``max_iterations``).
    estimated:
        Whether the closed-form estimation supplied part of the values.
    """

    matrix: SimilarityMatrix
    iterations: int
    pair_updates: int
    converged: bool
    estimated: bool
    #: Per-direction matrices ("forward"/"backward"); the composite
    #: matcher's Uc pruning warm-starts the next evaluation from these.
    directional: dict[str, SimilarityMatrix] | None = None

    @property
    def average(self) -> float:
        return self.matrix.average()

    @classmethod
    def from_directional(
        cls,
        rows: tuple[str, ...],
        cols: tuple[str, ...],
        directional_values: dict[str, np.ndarray],
        *,
        iterations: int,
        pair_updates: int,
        converged: bool,
        estimated: bool,
    ) -> "EMSResult":
        """Rebuild a result from per-direction value arrays.

        The match store persists only the directional arrays (at the dtype
        the fixpoint ran at) and reconstructs the combined matrix here with
        :func:`combine_directional` — the *same* reduction ``_result`` uses
        after a live run, so a restored result is bit-identical to the one
        that was stored.
        """
        combined = combine_directional(list(directional_values.values()))
        return cls(
            matrix=SimilarityMatrix(rows, cols, combined),
            iterations=iterations,
            pair_updates=pair_updates,
            converged=converged,
            estimated=estimated,
            directional={
                name: SimilarityMatrix(rows, cols, values)
                for name, values in directional_values.items()
            },
        )


def combine_directional(values: list[np.ndarray]) -> np.ndarray:
    """Combine per-direction similarity arrays into the final matrix.

    A plain mean over directions, factored out so the live fixpoint
    (:meth:`EMSEngine._result`) and the match-store restore path share one
    reduction: bit-identity of a served matrix reduces to bit-identity of
    the stored directional arrays.
    """
    return np.mean(values, axis=0)


#: Cell-cache headroom per matrix entry of a bounded LabelMatrixCache —
#: roughly one mid-sized matrix's worth of scalar cells per cached matrix.
_CELLS_PER_ENTRY = 128


class LabelMatrixCache:
    """Memoized ``S^L`` matrices shared across :class:`EMSEngine` instances.

    One composite matching run evaluates dozens of candidates per round,
    and every evaluation used to rebuild the label matrix from scratch —
    ``O(n1 * n2)`` label-similarity calls, almost all scoring the same
    node pairs as the previous candidate.  Engines sharing a cache reuse
    whole matrices (keyed on the two node-name tuples) and individual
    cells (keyed on the name pair).  Sound within one matching run because
    composite node names (``⟨A+B⟩``, :func:`repro.graph.merge.composite_name`)
    encode their member activities: equal names imply equal label values.

    ``max_entries`` bounds the cache with LRU eviction: at most that many
    whole matrices and ``128 *`` that many scalar cells are retained, so a
    long composite run over a large alphabet — whose candidate vocabularies
    never repeat exactly — cannot grow the cache without limit.  ``None``
    keeps the historical unbounded behaviour.  The cap is exposed as
    :attr:`repro.core.config.EMSConfig.label_cache_entries`.

    Matrix keys include the requested dtype: a float32 run must get a
    float32 matrix of its own, never a silently upcast view of a float64
    matrix cached by an earlier run sharing the same cache.  The scalar
    cell cache stays dtype-free — cells hold the exact Python-float label
    values and are narrowed on assignment into each matrix.

    The cache keeps its own lifetime totals — :attr:`hits`,
    :attr:`misses` and :attr:`evictions` (whole matrices evicted) — which
    :class:`EMSEngine` exports through the metrics registry as
    ``label_cache_hits_total`` / ``label_cache_misses_total`` /
    ``label_cache_evictions_total``.
    """

    __slots__ = (
        "_matrices", "_cells", "_max_entries", "_max_cells",
        "hits", "misses", "evictions",
    )

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self._matrices: dict[
            tuple[tuple[str, ...], tuple[str, ...], str], np.ndarray
        ] = {}
        self._cells: dict[tuple[str, str], float] = {}
        self._max_entries = max_entries
        self._max_cells = None if max_entries is None else max_entries * _CELLS_PER_ENTRY
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        """Number of cached whole matrices."""
        return len(self._matrices)

    def matrix(
        self,
        rows: tuple[str, ...],
        cols: tuple[str, ...],
        label,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """The label matrix for *rows* x *cols*, computing misses via *label*.

        The returned array has the requested *dtype*, is shared between
        callers asking for the same ``(rows, cols, dtype)``, and is marked
        read-only.
        """
        dtype = np.dtype(dtype)
        key = (rows, cols, dtype.str)
        matrices = self._matrices
        cached = matrices.get(key)
        if cached is not None:
            self.hits += 1
            if self._max_entries is not None:
                matrices[key] = matrices.pop(key)  # LRU touch
            return cached
        self.misses += 1
        cells = self._cells
        cached = np.empty((len(rows), len(cols)), dtype=dtype)
        for i, first in enumerate(rows):
            for j, second in enumerate(cols):
                value = cells.get((first, second))
                if value is None:
                    value = label(first, second)
                    cells[first, second] = value
                cached[i, j] = value
        cached.flags.writeable = False
        matrices[key] = cached
        if self._max_entries is not None:
            while len(matrices) > self._max_entries:
                matrices.pop(next(iter(matrices)))
                self.evictions += 1
            while len(cells) > self._max_cells:
                cells.pop(next(iter(cells)))
        return cached


@dataclass(frozen=True, slots=True)
class WarmStart:
    """Similarity values carried over from a parent evaluation.

    The incremental composite engine hands the fixpoint the parent round's
    converged directional matrix, mapped onto the merged node grid, plus
    the *dirty-pair frontier*: the boolean mask of pairs whose predecessor
    signature changed under the candidate merge (Proposition 4's affected
    region).  Non-dirty pairs keep their carried values and are never
    re-iterated — the array equivalent of the ``fixed_pairs`` dictionaries,
    built without ``O(n1 * n2)`` Python dictionary traffic.  Dirty pairs
    restart from the standard initialization, which keeps the computation
    bit-identical to a cold evaluation with the same fixed set (the
    differential guarantee of ``tests/property/test_property_incremental``).

    ``values`` and ``dirty`` are ``(n1, n2)`` arrays over the real node
    grids of the two graphs; ``values`` entries under the dirty mask are
    ignored.
    """

    values: np.ndarray
    dirty: np.ndarray

    @property
    def pairs_fixed(self) -> int:
        """How many pairs the warm start pins (the Uc accounting metric)."""
        return int(self.dirty.size - self.dirty.sum())


def edge_agreement(weight_first: np.ndarray, weight_second: np.ndarray, c: float) -> np.ndarray:
    """The factor ``C`` for all pairs of edge weights (outer combination).

    ``C = c * (1 - |f1 - f2| / (f1 + f2))``; shape is
    ``(len(weight_first), len(weight_second))``.  Frequencies are positive
    by construction, so the denominator never vanishes.
    """
    w1 = weight_first[:, None]
    w2 = weight_second[None, :]
    return c * (1.0 - np.abs(w1 - w2) / (w1 + w2))


class _DirectionalRun:
    """One forward-similarity fixpoint computation on a graph pair."""

    def __init__(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        config: EMSConfig,
        label_matrix: np.ndarray,
        fixed_pairs: dict[tuple[str, str], float] | WarmStart | None = None,
        meter: BudgetMeter | None = None,
    ):
        self.config = config
        self._meter = meter
        self._dtype = config.np_dtype
        self.nodes_first = first.nodes
        self.nodes_second = second.nodes
        n1, n2 = len(self.nodes_first), len(self.nodes_second)
        self._n1, self._n2 = n1, n2
        self.label_matrix = label_matrix

        index_first = {node: i for i, node in enumerate(self.nodes_first)}
        index_first[ARTIFICIAL] = n1
        index_second = {node: j for j, node in enumerate(self.nodes_second)}
        index_second[ARTIFICIAL] = n2

        # Predecessor index arrays and in-edge weights, per real node.
        dtype = self._dtype
        self._preds_first: list[np.ndarray] = []
        self._weights_first: list[np.ndarray] = []
        for node in self.nodes_first:
            preds = first.predecessors(node)
            self._preds_first.append(np.array([index_first[p] for p in preds], dtype=int))
            self._weights_first.append(
                np.array([first.edge_frequency(p, node) for p in preds], dtype=dtype)
            )
        self._preds_second: list[np.ndarray] = []
        self._weights_second: list[np.ndarray] = []
        for node in self.nodes_second:
            preds = second.predecessors(node)
            self._preds_second.append(np.array([index_second[p] for p in preds], dtype=int))
            self._weights_second.append(
                np.array([second.edge_frequency(p, node) for p in preds], dtype=dtype)
            )

        # Per-pair hot-path cache, built lazily: (edge-agreement matrix,
        # open-mesh ancestor index, 1/|pre(v1)|, 1/|pre(v2)|).  The mesh
        # and reciprocals never change across iterations, and caching them
        # roughly halves the per-iteration cost on mid-size graphs.
        self._pair_cache: dict[
            tuple[int, int], tuple[np.ndarray, tuple[np.ndarray, np.ndarray], float, float]
        ] = {}

        # Similarity array with the artificial row/column appended.
        self.values = np.zeros((n1 + 1, n2 + 1), dtype=dtype)
        self.values[n1, n2] = 1.0  # S^0(v1^X, v2^X)

        self.schedule = ConvergenceSchedule(first, second)
        # Agreement of the two artificial in-edges, used by the estimation
        # and by the sparse kernel's factored base term.
        if config.use_edge_weights:
            f1 = np.array([first.frequency(node) for node in self.nodes_first], dtype=dtype)
            f2 = np.array([second.frequency(node) for node in self.nodes_second], dtype=dtype)
            self._artificial_agreement = edge_agreement(f1, f2, config.c)
        else:
            self._artificial_agreement = np.full((n1, n2), config.c, dtype=dtype)

        # Pairs with externally known converged values (Proposition 4 — the
        # *Uc* pruning of the composite matcher): seeded and never updated.
        # A WarmStart is the array form of the same fixed set: non-dirty
        # pairs keep the carried values, dirty pairs start from 0 exactly
        # like a cold run, so the two representations are interchangeable.
        if isinstance(fixed_pairs, WarmStart):
            if fixed_pairs.values.shape != (n1, n2):
                raise ValueError(
                    f"warm-start shape {fixed_pairs.values.shape} does not match "
                    f"the ({n1}, {n2}) real-pair grid"
                )
            self._fixed_mask = ~fixed_pairs.dirty
            real = self.values[:n1, :n2]
            real[self._fixed_mask] = fixed_pairs.values[self._fixed_mask]
        else:
            self._fixed_mask = np.zeros((n1, n2), dtype=bool)
            if fixed_pairs:
                for (node_first, node_second), value in fixed_pairs.items():
                    i = index_first.get(node_first)
                    j = index_second.get(node_second)
                    if i is None or j is None or i == n1 or j == n2:
                        continue
                    self.values[i, j] = value
                    self._fixed_mask[i, j] = True

        self.iterations = 0
        self.pair_updates = 0
        self.converged = False
        self.estimated = False

    # ------------------------------------------------------------------
    def _pair_entry(
        self, i: int, j: int
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray], float, float]:
        cached = self._pair_cache.get((i, j))
        if cached is None:
            if self.config.use_edge_weights:
                agreement = edge_agreement(
                    self._weights_first[i], self._weights_second[j], self.config.c
                )
            else:
                # Ablation: plain SimRank-style constant decay, no edge
                # similarity (see EMSConfig.use_edge_weights).
                agreement = np.full(
                    (len(self._weights_first[i]), len(self._weights_second[j])),
                    self.config.c,
                    dtype=self._dtype,
                )
            mesh = np.ix_(self._preds_first[i], self._preds_second[j])
            cached = (
                agreement,
                mesh,
                1.0 / len(self._preds_first[i]),
                1.0 / len(self._preds_second[j]),
            )
            self._pair_cache[(i, j)] = cached
        return cached

    def real_values(self) -> np.ndarray:
        """The real-pair block of the similarity array (a copy)."""
        return self.values[: self._n1, : self._n2].copy()

    def step(self) -> float:
        """Perform one iteration of formula (1); return the max change.

        When a :class:`BudgetMeter` is attached, the budget is checked at
        the start of the iteration and every pair update is charged; a
        :class:`~repro.exceptions.BudgetExhausted` raised mid-iteration
        leaves ``values`` in a valid best-so-far state (some pairs
        updated, the rest at the previous iteration) and the accounting
        consistent, so the degradation ladder can continue from it.
        """
        meter = self._meter
        if meter is not None:
            meter.check()
        self.iterations += 1
        iteration = self.iterations
        alpha = self.config.alpha
        previous = self.values.copy()
        pair_levels = self.schedule.pair_levels
        use_pruning = self.config.use_pruning
        label = self.label_matrix
        fixed = self._fixed_mask
        half_alpha = alpha / 2.0
        label_weight = 1.0 - alpha
        max_delta = 0.0
        updates = 0
        try:
            for i in range(self._n1):
                for j in range(self._n2):
                    if fixed[i, j]:
                        continue
                    if use_pruning and iteration > pair_levels[i, j]:
                        continue
                    agreement, mesh, inverse_a, inverse_b = self._pair_entry(i, j)
                    weighted = agreement * previous[mesh]
                    s_forward = weighted.max(axis=1).sum() * inverse_a
                    s_backward = weighted.max(axis=0).sum() * inverse_b
                    updated = half_alpha * (s_forward + s_backward)
                    if label_weight:
                        updated += label_weight * label[i, j]
                    updates += 1
                    delta = abs(updated - previous[i, j])
                    if delta > max_delta:
                        max_delta = delta
                    self.values[i, j] = updated
                    if meter is not None:
                        meter.tick()
        finally:
            self.pair_updates += updates
        return max_delta

    def _commit_pending(
        self,
        pending: list[tuple[np.ndarray, np.ndarray]],
        previous: np.ndarray,
        total_active: int,
        meter: BudgetMeter | None,
    ) -> float:
        """Phase 2 of a batched iteration: write updates, charge, report delta.

        Shared by the vectorized and sparse kernels.  *pending* is a list of
        ``(linear, updated)`` pairs, where ``linear`` is the row-major
        linear index ``i * n2 + j`` of each evaluated pair.  Budget
        semantics replicate the reference loop exactly: the meter is
        charged once via ``tick(n)``, and when the pair-update cap would
        trip mid-iteration only the row-major prefix of ``remaining + 1``
        updates the reference loop would have committed is written before
        the raise, leaving ``values`` in the same valid best-so-far state.
        """
        n2 = self._n2
        remaining = meter.pair_updates_remaining if meter is not None else None
        committed = 0
        max_delta = 0.0
        try:
            if remaining is not None and total_active > remaining:
                # The cap trips mid-iteration.  The reference loop visits
                # pairs in row-major order and writes the pair whose tick
                # raises before raising, so `remaining + 1` pairs commit.
                allowed = remaining + 1
                linear = np.concatenate([entry[0] for entry in pending])
                updated = np.concatenate([entry[1] for entry in pending])
                first = np.argsort(linear, kind="stable")[:allowed]
                linear, updated = linear[first], updated[first]
                rows, cols = np.divmod(linear, n2)
                deltas = np.abs(updated - previous[rows, cols])
                self.values[rows, cols] = updated
                committed = allowed
                max_delta = float(deltas.max()) if deltas.size else 0.0
                meter.tick(allowed)
                raise AssertionError("pair-update budget charge must have raised")
            for linear, updated in pending:
                rows, cols = np.divmod(linear, n2)
                deltas = np.abs(updated - previous[rows, cols])
                if deltas.size:
                    delta = float(deltas.max())
                    if delta > max_delta:
                        max_delta = delta
                self.values[rows, cols] = updated
            committed = total_active
            if meter is not None:
                meter.tick(total_active)
        finally:
            self.pair_updates += committed
        return max_delta

    def finished(self) -> bool:
        return self.converged or self.iterations >= self.config.max_iterations

    def advance(self) -> None:
        """One step plus convergence bookkeeping."""
        delta = self.step()
        if delta < self.config.epsilon or (
            self.config.use_pruning and self.schedule.all_fixed_after(self.iterations)
        ):
            self.converged = True

    def run_exact(self) -> None:
        while not self.finished():
            self.advance()

    def run_estimated(self, exact_iterations: int) -> None:
        """``EMS+es``: *exact_iterations* exact steps, then formula (2)."""
        while self.iterations < exact_iterations and not self.finished():
            self.advance()
        if self.converged:
            return  # exact values everywhere; nothing to estimate
        q, a = estimation_coefficients(
            np.array([len(p) for p in self._preds_first]),
            np.array([len(p) for p in self._preds_second]),
            self._artificial_agreement,
            self.label_matrix,
            self.config.alpha,
            self.config.c,
        )
        # The coefficient algebra runs in float64 (the pre-counts promote);
        # narrow back to the run dtype so the estimated block matches it.
        q = q.astype(self._dtype, copy=False)
        a = a.astype(self._dtype, copy=False)
        real = self.real_values()
        estimated = estimate_matrix(real, q, a, self.schedule.pair_levels, self.iterations)
        estimated[self._fixed_mask] = real[self._fixed_mask]
        self.values[: self._n1, : self._n2] = estimated
        self.estimated = True
        self.converged = True

    def average_bound(self) -> float:
        """Upper bound of the final average similarity, given progress so far."""
        real = self.real_values()
        if self._n1 == 0 or self._n2 == 0:
            return 0.0
        if self.converged:
            return float(real.mean())
        bounded = matrix_upper_bound(
            real, self.iterations, self.config.decay, self.schedule.pair_levels
        )
        bounded[self._fixed_mask] = real[self._fixed_mask]
        return float(bounded.mean())


@dataclass(slots=True)
class _Bucket:
    """Precomputed tensors for one degree bucket ``(|pre(v1)|, |pre(v2)|)``.

    Pairs are laid out in the :func:`repro.core.pruning.prefix_schedule`
    order (descending convergence level), so Proposition-2 pruning at
    iteration ``n`` reduces to slicing the first
    :func:`repro.core.pruning.active_prefix_length` entries.
    """

    rows: np.ndarray           #: (m,) row index of each pair
    cols: np.ndarray           #: (m,) column index of each pair
    linear: np.ndarray         #: (m,) row-major linear index (budget-cut order)
    preds_first: np.ndarray    #: (m, A) predecessor rows into the value array
    preds_second: np.ndarray   #: (m, B) predecessor columns into the value array
    agreement: np.ndarray | None  #: (m, A, B) edge-agreement ``C``; None = constant c
    levels: np.ndarray         #: (m,) convergence levels, descending
    inverse_first: float       #: 1 / A
    inverse_second: float      #: 1 / B


class _VectorizedRun(_DirectionalRun):
    """The bucketed, padded NumPy formulation of the same fixpoint.

    Pairs sharing a predecessor-count signature ``(A, B)`` evaluate
    formula (1) with identically-shaped tensors, so each bucket runs one
    iteration as ``gather(previous) * agreement -> max -> sum`` over all
    its active pairs at once.  Tensors are built lazily on the first step
    (the ``I = 0`` estimation never steps) and exclude Uc-fixed pairs,
    which are never updated.

    Budget semantics replicate the reference loop exactly: the meter is
    charged once per iteration chunk via ``tick(n)``, and when the
    pair-update cap would trip mid-iteration only the row-major prefix of
    active pairs the reference loop would have committed is written before
    the raise, leaving ``values`` in the same valid best-so-far state.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._buckets: list[_Bucket] | None = None

    # ------------------------------------------------------------------
    def _build_buckets(self) -> list[_Bucket]:
        rows_by_degree: dict[int, list[int]] = {}
        for i, preds in enumerate(self._preds_first):
            rows_by_degree.setdefault(len(preds), []).append(i)
        cols_by_degree: dict[int, list[int]] = {}
        for j, preds in enumerate(self._preds_second):
            cols_by_degree.setdefault(len(preds), []).append(j)

        pair_levels = self.schedule.pair_levels
        fixed = self._fixed_mask
        config = self.config
        buckets: list[_Bucket] = []
        for degree_first, row_list in rows_by_degree.items():
            row_arr = np.array(row_list, dtype=int)
            p1 = np.stack([self._preds_first[i] for i in row_list])
            w1 = np.stack([self._weights_first[i] for i in row_list])
            for degree_second, col_list in cols_by_degree.items():
                col_arr = np.array(col_list, dtype=int)
                p2 = np.stack([self._preds_second[j] for j in col_list])
                w2 = np.stack([self._weights_second[j] for j in col_list])

                rows = np.repeat(row_arr, len(col_arr))
                cols = np.tile(col_arr, len(row_arr))
                row_pos = np.repeat(np.arange(len(row_arr)), len(col_arr))
                col_pos = np.tile(np.arange(len(col_arr)), len(row_arr))
                keep = ~fixed[rows, cols]
                if not keep.any():
                    continue
                rows, cols = rows[keep], cols[keep]
                row_pos, col_pos = row_pos[keep], col_pos[keep]
                order, levels = prefix_schedule(np.asarray(pair_levels[rows, cols], dtype=float))
                rows, cols = rows[order], cols[order]
                row_pos, col_pos = row_pos[order], col_pos[order]
                if config.use_edge_weights:
                    left = w1[row_pos][:, :, None]
                    right = w2[col_pos][:, None, :]
                    agreement = config.c * (1.0 - np.abs(left - right) / (left + right))
                else:
                    agreement = None
                buckets.append(
                    _Bucket(
                        rows=rows,
                        cols=cols,
                        linear=rows * self._n2 + cols,
                        preds_first=p1[row_pos],
                        preds_second=p2[col_pos],
                        agreement=agreement,
                        levels=levels,
                        inverse_first=1.0 / degree_first,
                        inverse_second=1.0 / degree_second,
                    )
                )
        return buckets

    # ------------------------------------------------------------------
    def step(self) -> float:
        meter = self._meter
        if meter is not None:
            meter.check()
        self.iterations += 1
        iteration = self.iterations
        if self._buckets is None:
            self._buckets = self._build_buckets()
        config = self.config
        half_alpha = config.alpha / 2.0
        label_weight = 1.0 - config.alpha
        use_pruning = config.use_pruning
        previous = self.values.copy()
        label = self.label_matrix
        c = config.c

        # Phase 1: evaluate formula (1) for every active pair.  All reads
        # go to `previous` (Jacobi iteration), so pending updates are
        # independent of commit order.
        pending: list[tuple[np.ndarray, np.ndarray]] = []
        total_active = 0
        for bucket in self._buckets:
            if use_pruning:
                count = active_prefix_length(bucket.levels, iteration)
                if count == 0:
                    continue
                sel = slice(0, count)
            else:
                sel = slice(None)
            rows = bucket.rows[sel]
            cols = bucket.cols[sel]
            p1 = bucket.preds_first[sel]
            p2 = bucket.preds_second[sel]
            gathered = previous[p1[:, :, None], p2[:, None, :]]
            if bucket.agreement is not None:
                weighted = bucket.agreement[sel] * gathered
            else:
                weighted = c * gathered
            s_forward = weighted.max(axis=2).sum(axis=1) * bucket.inverse_first
            s_backward = weighted.max(axis=1).sum(axis=1) * bucket.inverse_second
            updated = half_alpha * (s_forward + s_backward)
            if label_weight:
                updated = updated + label_weight * label[rows, cols]
            pending.append((bucket.linear[sel], updated))
            total_active += len(rows)

        # Phase 2: commit and charge the meter in one batched call.
        return self._commit_pending(pending, previous, total_active, meter)


#: Above this many total real-predecessor contributions the sparse kernel
#: stops caching flat per-contribution arrays (gather indices and edge
#: agreements) and regenerates them chunk by chunk each iteration from the
#: node-level CSR tables — nothing per-contribution stays resident.  Small
#: runs keep the cache so the kernel stays within arm's reach of the
#: vectorized kernel's wall-clock.  Patchable in tests to force either mode.
_SPARSE_CACHE_LIMIT = 1 << 18

#: Target element count of one gather/agreement chunk in streaming mode —
#: the bound on the sparse kernel's per-iteration temporary tensors.
#: Chunks are aligned to whole pairs, so the actual temp is at most
#: ``max(_SPARSE_CHUNK_TARGET, A * B)`` elements.  Patchable in tests.
_SPARSE_CHUNK_TARGET = 1 << 16


@dataclass(slots=True)
class _DegreeGroup:
    """All nodes of one side sharing a real in-degree, with their CSR rows."""

    nodes: np.ndarray    #: (g,) node indices with this real in-degree
    preds: np.ndarray    #: (g, d) real-predecessor indices (rows of `values`)
    weights: np.ndarray  #: (g, d) in-edge weights, run dtype


@dataclass(slots=True)
class _SparseBlock:
    """One real-degree block ``(d1, d2)`` of the sparse kernel's pairs.

    Pairs are laid out in :func:`repro.core.pruning.prefix_schedule` order
    (descending convergence level) so Proposition-2 pruning is a prefix
    slice, exactly like the vectorized kernel's buckets.  Unlike a
    :class:`_Bucket`, per-pair storage is O(1): five scalars per pair plus
    a reference to the node-level degree groups.  Flat per-contribution
    arrays (``preds_*``/``agreement``) exist only in cached mode.
    """

    linear: np.ndarray   #: (m,) row-major linear pair index (budget-cut order)
    row_pos: np.ndarray  #: (m,) position of the pair's row inside group_first
    col_pos: np.ndarray  #: (m,) position of the pair's column inside group_second
    levels: np.ndarray   #: (m,) convergence levels, descending
    base: np.ndarray     #: (m,) constant term: artificial row + label blend
    group_first: _DegreeGroup
    group_second: _DegreeGroup
    inverse_first: float   #: 1 / |pre(v1)| — the real degree plus v^X
    inverse_second: float  #: 1 / |pre(v2)|
    preds_first: np.ndarray | None = None   #: (m, d1) cached gather rows
    preds_second: np.ndarray | None = None  #: (m, d2) cached gather columns
    agreement: np.ndarray | None = None     #: (m, d1, d2) cached ``C``


class _SparseRun(_DirectionalRun):
    """The CSR gather–scatter formulation of the same fixpoint.

    The vectorized kernel's memory cost is its resident padded tensors:
    every bucket holds ``(m, A, B)`` edge agreements plus ``(m, A)`` /
    ``(m, B)`` gather indices, ``O(Σ m·A·B)`` floats for the whole pair
    population.  This kernel stores none of that.  Two observations make
    the evaluation memory-lean without changing a single result:

    * **The artificial predecessor row is closed-form.**  ``v^X`` is a
      predecessor of every real node, and ``S(v^X, ·)`` is identically 0
      except ``S(v^X, v^X) = 1``, never updated.  In the forward max the
      ``v1' = v^X`` row therefore contributes exactly
      ``C(v1, v^X, v2, v^X)`` (the agreement of the two artificial
      in-edges), and real rows never gain from the artificial column (its
      products are 0 among non-negative terms).  So the whole artificial
      row/column folds into a per-pair constant — ``base = α/2 ·
      (1/|pre(v1)| + 1/|pre(v2)|) · C_art + (1-α) · S^L`` — computed once,
      and the iteration only touches the ``(d1, d2)`` *real* predecessor
      grid, which the CSR export of :class:`~repro.graph.dependency.
      DependencyGraph` provides without the artificial padding.
    * **Contributions can be regenerated cheaper than stored.**  Gather
      indices and edge agreements of a pair are pure functions of the two
      nodes' CSR rows.  Streaming mode recomputes them per chunk of at
      most :data:`_SPARSE_CHUNK_TARGET` contributions each iteration: the
      resident footprint is the node-level CSR tables plus ~5 scalars per
      pair, and the per-iteration temporaries are bounded by the chunk
      size instead of the contribution count.  Runs small enough that the
      flat arrays fit under :data:`_SPARSE_CACHE_LIMIT` keep them cached,
      which holds the kernel's wall-clock next to the vectorized kernel
      where memory is not the constraint.

    Within a chunk the gathered ``(k, d1, d2)`` contributions are reduced
    segment-wise — max over one predecessor axis, sum over the other —
    which is the uniform-segment special case of a COO scatter-reduce
    (every pair in a block owns exactly ``d1 · d2`` contributions).
    Budget semantics are shared with the vectorized kernel via
    :meth:`_DirectionalRun._commit_pending`: identical ``tick(n)`` totals
    and an identical row-major commit prefix on mid-iteration exhaustion.
    """

    def __init__(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        config: EMSConfig,
        label_matrix: np.ndarray,
        fixed_pairs: "FixedPairs" = None,
        meter: BudgetMeter | None = None,
    ):
        super().__init__(first, second, config, label_matrix, fixed_pairs, meter)
        self._graph_first = first
        self._graph_second = second
        self._blocks: list[_SparseBlock] | None = None

    # ------------------------------------------------------------------
    def _degree_groups(self, graph: DependencyGraph) -> dict[int, _DegreeGroup]:
        indptr, indices, weights = graph.predecessor_csr()
        dtype = self._dtype
        degrees = np.diff(indptr)
        groups: dict[int, _DegreeGroup] = {}
        for degree in np.unique(degrees):
            degree = int(degree)
            nodes = np.nonzero(degrees == degree)[0].astype(np.int32)
            if degree == 0:
                preds = np.empty((len(nodes), 0), dtype=np.int32)
                group_weights = np.empty((len(nodes), 0), dtype=dtype)
            else:
                offsets = indptr[nodes][:, None] + np.arange(degree)[None, :]
                preds = indices[offsets]
                group_weights = weights[offsets].astype(dtype)
            groups[degree] = _DegreeGroup(nodes, preds, group_weights)
        return groups

    def _build_blocks(self) -> list[_SparseBlock]:
        config = self.config
        dtype = self._dtype
        n2 = self._n2
        pair_levels = self.schedule.pair_levels
        fixed = self._fixed_mask
        half_alpha = config.alpha / 2.0
        label_weight = 1.0 - config.alpha
        art = self._artificial_agreement
        label = self.label_matrix

        groups_first = self._degree_groups(self._graph_first)
        groups_second = self._degree_groups(self._graph_second)
        blocks: list[_SparseBlock] = []
        for degree_first, group_first in groups_first.items():
            for degree_second, group_second in groups_second.items():
                rows = np.repeat(group_first.nodes.astype(np.int64), len(group_second.nodes))
                cols = np.tile(group_second.nodes.astype(np.int64), len(group_first.nodes))
                row_pos = np.repeat(
                    np.arange(len(group_first.nodes), dtype=np.int32),
                    len(group_second.nodes),
                )
                col_pos = np.tile(
                    np.arange(len(group_second.nodes), dtype=np.int32),
                    len(group_first.nodes),
                )
                keep = ~fixed[rows, cols]
                if not keep.any():
                    continue
                rows, cols = rows[keep], cols[keep]
                row_pos, col_pos = row_pos[keep], col_pos[keep]
                order, levels = prefix_schedule(np.asarray(pair_levels[rows, cols], dtype=float))
                rows, cols = rows[order], cols[order]
                row_pos, col_pos = row_pos[order], col_pos[order]
                # |pre(v)| includes the artificial predecessor (+1).
                inverse_first = 1.0 / (degree_first + 1)
                inverse_second = 1.0 / (degree_second + 1)
                base = (half_alpha * (inverse_first + inverse_second)) * art[rows, cols]
                if label_weight:
                    base = base + label_weight * label[rows, cols]
                blocks.append(
                    _SparseBlock(
                        linear=rows * n2 + cols,
                        row_pos=row_pos,
                        col_pos=col_pos,
                        levels=levels,
                        base=np.asarray(base, dtype=dtype),
                        group_first=group_first,
                        group_second=group_second,
                        inverse_first=inverse_first,
                        inverse_second=inverse_second,
                    )
                )

        # Cached mode: on small runs, materialize the flat contribution
        # arrays once — the 20-activity wall-clock floor lives here.
        total_contributions = sum(
            len(block.linear)
            * block.group_first.preds.shape[1]
            * block.group_second.preds.shape[1]
            for block in blocks
        )
        if total_contributions <= _SPARSE_CACHE_LIMIT:
            for block in blocks:
                if not block.group_first.preds.shape[1] or not block.group_second.preds.shape[1]:
                    continue
                block.preds_first = block.group_first.preds[block.row_pos]
                block.preds_second = block.group_second.preds[block.col_pos]
                if config.use_edge_weights:
                    left = block.group_first.weights[block.row_pos][:, :, None]
                    right = block.group_second.weights[block.col_pos][:, None, :]
                    block.agreement = config.c * (
                        1.0 - np.abs(left - right) / (left + right)
                    )
        return blocks

    # ------------------------------------------------------------------
    def step(self) -> float:
        meter = self._meter
        if meter is not None:
            meter.check()
        self.iterations += 1
        iteration = self.iterations
        if self._blocks is None:
            self._blocks = self._build_blocks()
        config = self.config
        use_pruning = config.use_pruning
        use_weights = config.use_edge_weights
        half_alpha = config.alpha / 2.0
        c = config.c
        previous = self.values.copy()

        # Phase 1: evaluate formula (1) chunk by chunk.  All reads go to
        # `previous` (Jacobi iteration), so chunk order is irrelevant.
        pending: list[tuple[np.ndarray, np.ndarray]] = []
        total_active = 0
        for block in self._blocks:
            if use_pruning:
                count = active_prefix_length(block.levels, iteration)
                if count == 0:
                    continue
            else:
                count = len(block.linear)
            degree_first = block.group_first.preds.shape[1]
            degree_second = block.group_second.preds.shape[1]
            updated = np.empty(count, dtype=self._dtype)
            if degree_first == 0 or degree_second == 0:
                # Only the artificial predecessor on at least one side:
                # the real grid is empty and the pair is its base term.
                updated[:] = block.base[:count]
            else:
                scale_first = half_alpha * block.inverse_first
                scale_second = half_alpha * block.inverse_second
                grid = degree_first * degree_second
                chunk = max(1, _SPARSE_CHUNK_TARGET // grid)
                for start in range(0, count, chunk):
                    stop = min(start + chunk, count)
                    if block.preds_first is not None:
                        p1 = block.preds_first[start:stop]
                        p2 = block.preds_second[start:stop]
                    else:
                        p1 = block.group_first.preds[block.row_pos[start:stop]]
                        p2 = block.group_second.preds[block.col_pos[start:stop]]
                    gathered = previous[p1[:, :, None], p2[:, None, :]]
                    if block.agreement is not None:
                        gathered *= block.agreement[start:stop]
                    elif use_weights:
                        left = block.group_first.weights[block.row_pos[start:stop]][:, :, None]
                        right = block.group_second.weights[block.col_pos[start:stop]][:, None, :]
                        gathered *= c * (1.0 - np.abs(left - right) / (left + right))
                    else:
                        gathered *= c
                    forward = gathered.max(axis=2).sum(axis=1)
                    backward = gathered.max(axis=1).sum(axis=1)
                    updated[start:stop] = (
                        block.base[start:stop]
                        + scale_first * forward
                        + scale_second * backward
                    )
            pending.append((block.linear[:count], updated))
            total_active += count

        # Phase 2: commit and charge the meter in one batched call.
        return self._commit_pending(pending, previous, total_active, meter)


#: Kernel registry: EMSConfig.kernel -> directional-run implementation.
#: ``"compiled"`` is registered lazily by :mod:`repro.core.compiled` the
#: first time a config asks for it (that module imports this one, so the
#: import must run from here, never the other way around).
_KERNELS: dict[str, type[_DirectionalRun]] = {
    "reference": _DirectionalRun,
    "vectorized": _VectorizedRun,
    "sparse": _SparseRun,
}

#: What the Uc / warm-start seed of a directional run may look like.
FixedPairs = dict[tuple[str, str], float] | WarmStart | None


def _make_run(
    first: DependencyGraph,
    second: DependencyGraph,
    config: EMSConfig,
    label_matrix: np.ndarray,
    fixed_pairs: FixedPairs = None,
    meter: BudgetMeter | None = None,
) -> _DirectionalRun:
    kernel = _KERNELS.get(config.kernel)
    if kernel is None:
        from repro.core import compiled  # noqa: F401  (registers "compiled")

        kernel = _KERNELS[config.kernel]
    return kernel(first, second, config, label_matrix, fixed_pairs, meter)


class EMSEngine:
    """Computes EMS similarities between two dependency graphs.

    Parameters
    ----------
    config:
        The :class:`EMSConfig` knobs; defaults are the paper's.
    label_similarity:
        The ``S^L`` blended in with weight ``1 - alpha``.  Defaults to
        :class:`OpaqueSimilarity` (structural-only matching).  Note that
        with ``alpha = 1`` the label similarity has no effect.
    label_cache:
        Optional :class:`LabelMatrixCache` shared across engines of one
        matching run, so repeated ``similarity`` calls over overlapping
        vocabularies (the composite greedy loop) skip recomputing ``S^L``.
    observer:
        Optional :class:`~repro.obs.Observer`.  With a tracer attached,
        every similarity call records an ``ems.fixpoint`` span with one
        ``ems.iteration[k]`` child per exact iteration and a
        ``pruning.freeze`` marker per direction; without one (the
        default) the fixpoint loops run on the exact same code path as
        before — iteration spans are only driven when tracing is on, so
        the observer never perturbs results or hot-loop cost.
    """

    def __init__(
        self,
        config: EMSConfig | None = None,
        label_similarity: LabelSimilarity | None = None,
        label_cache: LabelMatrixCache | None = None,
        observer: Observer | None = None,
    ):
        self.config = config if config is not None else EMSConfig()
        self.label_similarity = (
            label_similarity if label_similarity is not None else OpaqueSimilarity()
        )
        self.label_cache = label_cache
        self.observer = observer if observer is not None else NULL_OBSERVER

    # ------------------------------------------------------------------
    def _label_matrix(self, first: DependencyGraph, second: DependencyGraph) -> np.ndarray:
        dtype = self.config.np_dtype
        if isinstance(self.label_similarity, OpaqueSimilarity) or self.config.alpha == 1.0:
            return np.zeros((len(first.nodes), len(second.nodes)), dtype=dtype)
        if self.label_cache is not None:
            cache = self.label_cache
            if self.observer.metrics is not None:
                hits, misses, evictions = cache.hits, cache.misses, cache.evictions
                matrix = cache.matrix(
                    first.nodes, second.nodes, self.label_similarity, dtype
                )
                if cache.hits > hits:
                    self.observer.count("label_cache_hits_total", cache.hits - hits)
                if cache.misses > misses:
                    self.observer.count("label_cache_misses_total", cache.misses - misses)
                if cache.evictions > evictions:
                    self.observer.count(
                        "label_cache_evictions_total", cache.evictions - evictions
                    )
                return matrix
            return cache.matrix(first.nodes, second.nodes, self.label_similarity, dtype)
        label = np.zeros((len(first.nodes), len(second.nodes)), dtype=dtype)
        for i, node_first in enumerate(first.nodes):
            for j, node_second in enumerate(second.nodes):
                label[i, j] = self.label_similarity(node_first, node_second)
        return label

    def _runs(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        fixed_forward: FixedPairs = None,
        fixed_backward: FixedPairs = None,
        meter: BudgetMeter | None = None,
    ) -> list[_DirectionalRun]:
        label = self._label_matrix(first, second)
        runs: list[_DirectionalRun] = []
        if self.config.direction in ("forward", "both"):
            runs.append(
                _make_run(first, second, self.config, label, fixed_forward, meter)
            )
        if self.config.direction in ("backward", "both"):
            runs.append(
                _make_run(
                    first.reversed(), second.reversed(), self.config, label,
                    fixed_backward, meter,
                )
            )
        return runs

    def _directional_names(self) -> list[str]:
        return (
            ["forward", "backward"] if self.config.direction == "both"
            else [self.config.direction]
        )

    def _drive(self, run: "_DirectionalRun", direction: str) -> None:
        """Run one directional fixpoint, tracing iterations when asked.

        With tracing off this is exactly the pre-observability code path
        (`run_exact` / `run_estimated`); with tracing on, each exact
        iteration gets an ``ems.iteration[k]`` span.  The two paths call
        the same ``advance``/``run_estimated`` machinery, so results and
        accounting are bit-identical either way.
        """
        obs = self.observer
        exact = self.config.estimation_iterations
        if not obs.tracing:
            if exact is not None:
                run.run_estimated(exact)
            else:
                run.run_exact()
            return
        tracer = obs.tracer
        while not run.finished() and (exact is None or run.iterations < exact):
            before = run.pair_updates
            with tracer.span(
                f"ems.iteration[{run.iterations}]", direction=direction
            ) as span:
                run.advance()
                span.attributes["pair_updates"] = run.pair_updates - before
        if exact is not None:
            run.run_estimated(run.iterations)

    def _freeze_event(self, run: "_DirectionalRun", direction: str) -> None:
        """Record the post-run freeze accounting (Uc / Proposition 2)."""
        obs = self.observer
        if not obs.enabled:
            return
        fixed_mask = getattr(run, "_fixed_mask", None)
        obs.event(
            "pruning.freeze",
            direction=direction,
            fixed_pairs=0 if fixed_mask is None else int(fixed_mask.sum()),
            iterations=run.iterations,
            pair_updates=run.pair_updates,
            converged=run.converged,
            estimated=run.estimated,
        )
        obs.count("ems_pair_updates_total", run.pair_updates)

    def _result(self, first: DependencyGraph, second: DependencyGraph,
                runs: list[_DirectionalRun]) -> EMSResult:
        combined = combine_directional([run.real_values() for run in runs])
        matrix = SimilarityMatrix(first.nodes, second.nodes, combined)
        directional: dict[str, SimilarityMatrix] = {}
        names = (
            ["forward", "backward"] if self.config.direction == "both"
            else [self.config.direction]
        )
        for name, run in zip(names, runs):
            directional[name] = SimilarityMatrix(first.nodes, second.nodes, run.real_values())
        return EMSResult(
            matrix=matrix,
            iterations=sum(run.iterations for run in runs),
            pair_updates=sum(run.pair_updates for run in runs),
            converged=all(run.converged for run in runs),
            estimated=any(run.estimated for run in runs),
            directional=directional,
        )

    # ------------------------------------------------------------------
    def similarity(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        fixed_forward: FixedPairs = None,
        fixed_backward: FixedPairs = None,
        meter: BudgetMeter | None = None,
    ) -> EMSResult:
        """Compute the pairwise similarity matrix of the two graphs.

        ``fixed_forward`` / ``fixed_backward`` seed pairs whose converged
        value is already known (Proposition 4); they are never iterated.
        A *meter* makes the computation cooperatively cancellable:
        :class:`~repro.exceptions.BudgetExhausted` propagates to the
        caller (use :meth:`similarity_resilient` for the degradation
        ladder instead).
        """
        obs = self.observer
        with obs.span(
            "ems.fixpoint",
            pairs=len(first.nodes) * len(second.nodes),
            kernel=self.config.kernel,
            dtype=self.config.dtype,
        ):
            runs = self._runs(first, second, fixed_forward, fixed_backward, meter)
            for direction, run in zip(self._directional_names(), runs):
                self._drive(run, direction)
                self._freeze_event(run, direction)
        obs.count("ems_fixpoint_total")
        return self._result(first, second, runs)

    def similarity_resilient(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        meter: BudgetMeter | None,
        policy: DegradationPolicy | None = None,
        fixed_forward: FixedPairs = None,
        fixed_backward: FixedPairs = None,
    ) -> tuple[EMSResult, str, str | None]:
        """:meth:`similarity` with the graceful-degradation ladder.

        Returns ``(result, stage, reason)`` where *stage* is one of
        ``"exact"`` (completed within budget), ``"estimated"`` (budget
        exhausted; the Section 3.5 closed form filled in unconverged
        pairs from however many exact iterations ran) or ``"partial"``
        (best-so-far values as-is), and *reason* is the exhausted budget
        axis (``None`` when exact).  With a ladder fully disabled by
        *policy*, :class:`~repro.exceptions.BudgetExhausted` propagates.
        """
        if policy is None:
            policy = DegradationPolicy()
        obs = self.observer
        with obs.span(
            "ems.fixpoint",
            pairs=len(first.nodes) * len(second.nodes),
            kernel=self.config.kernel,
            dtype=self.config.dtype,
            budgeted=meter is not None,
        ) as span:
            runs = self._runs(first, second, fixed_forward, fixed_backward, meter)
            try:
                for direction, run in zip(self._directional_names(), runs):
                    self._drive(run, direction)
                    self._freeze_event(run, direction)
                return self._result(first, second, runs), STAGE_EXACT, None
            except BudgetExhausted as error:
                span.attributes["budget_exhausted"] = error.reason
                obs.count("budget_exhausted_total")
                if policy.allow_estimation:
                    # The closed form needs no further iterations: asking
                    # for exactly the iterations already performed makes
                    # run_estimated apply formula (2) to the current state.
                    for run in runs:
                        run.run_estimated(run.iterations)
                    return (
                        self._result(first, second, runs),
                        STAGE_ESTIMATED,
                        error.reason,
                    )
                if policy.allow_partial:
                    return (
                        self._result(first, second, runs),
                        STAGE_PARTIAL,
                        error.reason,
                    )
                raise

    def similarity_with_abort(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        abort_below: float,
        fixed_forward: FixedPairs = None,
        fixed_backward: FixedPairs = None,
        meter: BudgetMeter | None = None,
    ) -> EMSResult | None:
        """Like :meth:`similarity`, but give up early when hopeless.

        After every iteration the upper bound of the final *average*
        similarity (Proposition 6 / Corollary 7, averaged over directions)
        is compared against *abort_below*; if it falls strictly below,
        ``None`` is returned — the candidate cannot beat the incumbent.
        This is the *Bd* pruning of Section 4.3.
        """
        obs = self.observer
        with obs.span(
            "ems.fixpoint",
            pairs=len(first.nodes) * len(second.nodes),
            kernel=self.config.kernel,
            dtype=self.config.dtype,
            abort_below=abort_below,
        ) as span:
            runs = self._runs(first, second, fixed_forward, fixed_backward, meter)
            # Lockstep: advance each unfinished run one iteration, then
            # check the combined bound, so hopeless candidates die at the
            # first possible moment.
            exact_budget = self.config.estimation_iterations
            while True:
                active = [
                    run
                    for run in runs
                    if not run.finished()
                    and (exact_budget is None or run.iterations < exact_budget)
                ]
                if not active:
                    break
                for run in active:
                    run.advance()
                bound = float(np.mean([run.average_bound() for run in runs]))
                if bound < abort_below:
                    span.attributes["aborted"] = True
                    obs.count("ems_bound_aborts_total")
                    return None
            if exact_budget is not None:
                for run in runs:
                    run.run_estimated(exact_budget)
            for direction, run in zip(self._directional_names(), runs):
                self._freeze_event(run, direction)
        obs.count("ems_fixpoint_total")
        return self._result(first, second, runs)

    # ------------------------------------------------------------------
    def pair_similarity(
        self, first: DependencyGraph, second: DependencyGraph, node_first: str, node_second: str
    ) -> float:
        """Convenience: the converged similarity of one pair."""
        return self.similarity(first, second).matrix.get(node_first, node_second)


def iteration_trace(
    first: DependencyGraph,
    second: DependencyGraph,
    config: EMSConfig | None = None,
    label_similarity: LabelSimilarity | None = None,
    iterations: int = 10,
) -> list[SimilarityMatrix]:
    """The per-iteration similarity matrices ``S^1 .. S^k`` (forward only).

    Exposed for tests and worked examples (Examples 4-6 of the paper track
    individual iterations); not used on the hot path.
    """
    engine = EMSEngine(config, label_similarity)
    label = engine._label_matrix(first, second)
    run = _make_run(first, second, engine.config, label)
    snapshots: list[SimilarityMatrix] = []
    for _ in range(iterations):
        run.step()
        snapshots.append(SimilarityMatrix(first.nodes, second.nodes, run.real_values()))
    return snapshots
