"""The EMS (Event Matching Similarity) engine — the paper's Section 3.

Given two dependency graphs, the engine computes the pairwise similarity
of Definition 2 by fixpoint iteration (formula (1)):

    S(v1, v2) = alpha * (s(v1, v2) + s(v2, v1)) / 2 + (1 - alpha) * S^L(v1, v2)
    s(v1, v2) = (1/|pre(v1)|) * sum over v1' in pre(v1) of
                max over v2' in pre(v2) of C(v1, v1', v2, v2') * S(v1', v2')
    C(v1, v1', v2, v2') = c * (1 - |f(v1', v1) - f(v2', v2)| /
                                   (f(v1', v1) + f(v2', v2)))

Initialization: ``S^0(v1^X, v2^X) = 1`` and 0 everywhere else; pairs
containing an artificial event are never updated.  The iteration is
monotone, bounded and converges to a unique limit when ``alpha*c < 1``
(Theorem 1).

Features implemented here:

* **forward / backward / both** directions (Section 3.6; backward = the
  same computation on reversed graphs, "both" averages the two);
* **early-convergence pruning** (Proposition 2) via
  :class:`repro.core.pruning.ConvergenceSchedule`;
* **estimation** ``EMS+es`` (Section 3.5) after a budget of exact
  iterations;
* **bounded evaluation with abort** (Section 4.3): stop as soon as the
  upper bound of the average similarity falls below a target — the *Bd*
  pruning used by the composite matcher;
* instrumentation: the number of formula-(1) evaluations (``pair_updates``)
  reported in the paper's Figures 6 and 12.

Two interchangeable fixpoint kernels implement the iteration
(``EMSConfig.kernel``): the **reference** per-pair loop
(:class:`_DirectionalRun`, a readable spec of formula (1)) and the default
**vectorized** kernel (:class:`_VectorizedRun`), which groups pairs into
degree buckets ``(|pre(v1)|, |pre(v2)|)`` and evaluates each iteration as
a handful of batched gather → multiply → max-reduce NumPy operations over
the whole active pair population.  Both kernels produce bit-identical
accounting (``iterations``, ``pair_updates``) and similarities equal to
within floating-point associativity; ``tests/core/test_kernel_equivalence``
proves it differentially.  See ``docs/performance.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.bounds import matrix_upper_bound
from repro.core.config import EMSConfig
from repro.core.estimation import estimate_matrix, estimation_coefficients
from repro.core.matrix import SimilarityMatrix
from repro.core.pruning import ConvergenceSchedule, active_prefix_length, prefix_schedule
from repro.graph.dependency import ARTIFICIAL, DependencyGraph
from repro.runtime.budget import BudgetMeter
from repro.runtime.degrade import DegradationPolicy
from repro.runtime.report import STAGE_ESTIMATED, STAGE_EXACT, STAGE_PARTIAL
from repro.exceptions import BudgetExhausted
from repro.similarity.labels import LabelSimilarity, OpaqueSimilarity


@dataclass(frozen=True, slots=True)
class EMSResult:
    """Outcome of an EMS similarity computation.

    Attributes
    ----------
    matrix:
        Pairwise similarities over the real nodes of the two graphs.
    iterations:
        Iterations performed (summed over directions).
    pair_updates:
        Number of formula-(1) evaluations — the pruning-power metric of
        Figures 6 and 12.
    converged:
        Whether the fixpoint was reached (as opposed to hitting
        ``max_iterations``).
    estimated:
        Whether the closed-form estimation supplied part of the values.
    """

    matrix: SimilarityMatrix
    iterations: int
    pair_updates: int
    converged: bool
    estimated: bool
    #: Per-direction matrices ("forward"/"backward"); the composite
    #: matcher's Uc pruning warm-starts the next evaluation from these.
    directional: dict[str, SimilarityMatrix] | None = None

    @property
    def average(self) -> float:
        return self.matrix.average()


#: Cell-cache headroom per matrix entry of a bounded LabelMatrixCache —
#: roughly one mid-sized matrix's worth of scalar cells per cached matrix.
_CELLS_PER_ENTRY = 128


class LabelMatrixCache:
    """Memoized ``S^L`` matrices shared across :class:`EMSEngine` instances.

    One composite matching run evaluates dozens of candidates per round,
    and every evaluation used to rebuild the label matrix from scratch —
    ``O(n1 * n2)`` label-similarity calls, almost all scoring the same
    node pairs as the previous candidate.  Engines sharing a cache reuse
    whole matrices (keyed on the two node-name tuples) and individual
    cells (keyed on the name pair).  Sound within one matching run because
    composite node names (``⟨A+B⟩``, :func:`repro.graph.merge.composite_name`)
    encode their member activities: equal names imply equal label values.

    ``max_entries`` bounds the cache with LRU eviction: at most that many
    whole matrices and ``128 *`` that many scalar cells are retained, so a
    long composite run over a large alphabet — whose candidate vocabularies
    never repeat exactly — cannot grow the cache without limit.  ``None``
    keeps the historical unbounded behaviour.  The cap is exposed as
    :attr:`repro.core.config.EMSConfig.label_cache_entries`.
    """

    __slots__ = ("_matrices", "_cells", "_max_entries", "_max_cells")

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self._matrices: dict[tuple[tuple[str, ...], tuple[str, ...]], np.ndarray] = {}
        self._cells: dict[tuple[str, str], float] = {}
        self._max_entries = max_entries
        self._max_cells = None if max_entries is None else max_entries * _CELLS_PER_ENTRY

    def __len__(self) -> int:
        """Number of cached whole matrices."""
        return len(self._matrices)

    def matrix(
        self,
        rows: tuple[str, ...],
        cols: tuple[str, ...],
        label,
    ) -> np.ndarray:
        """The label matrix for *rows* x *cols*, computing misses via *label*.

        The returned array is shared and marked read-only.
        """
        key = (rows, cols)
        matrices = self._matrices
        cached = matrices.get(key)
        if cached is not None:
            if self._max_entries is not None:
                matrices[key] = matrices.pop(key)  # LRU touch
            return cached
        cells = self._cells
        cached = np.empty((len(rows), len(cols)))
        for i, first in enumerate(rows):
            for j, second in enumerate(cols):
                value = cells.get((first, second))
                if value is None:
                    value = label(first, second)
                    cells[first, second] = value
                cached[i, j] = value
        cached.flags.writeable = False
        matrices[key] = cached
        if self._max_entries is not None:
            while len(matrices) > self._max_entries:
                matrices.pop(next(iter(matrices)))
            while len(cells) > self._max_cells:
                cells.pop(next(iter(cells)))
        return cached


@dataclass(frozen=True, slots=True)
class WarmStart:
    """Similarity values carried over from a parent evaluation.

    The incremental composite engine hands the fixpoint the parent round's
    converged directional matrix, mapped onto the merged node grid, plus
    the *dirty-pair frontier*: the boolean mask of pairs whose predecessor
    signature changed under the candidate merge (Proposition 4's affected
    region).  Non-dirty pairs keep their carried values and are never
    re-iterated — the array equivalent of the ``fixed_pairs`` dictionaries,
    built without ``O(n1 * n2)`` Python dictionary traffic.  Dirty pairs
    restart from the standard initialization, which keeps the computation
    bit-identical to a cold evaluation with the same fixed set (the
    differential guarantee of ``tests/property/test_property_incremental``).

    ``values`` and ``dirty`` are ``(n1, n2)`` arrays over the real node
    grids of the two graphs; ``values`` entries under the dirty mask are
    ignored.
    """

    values: np.ndarray
    dirty: np.ndarray

    @property
    def pairs_fixed(self) -> int:
        """How many pairs the warm start pins (the Uc accounting metric)."""
        return int(self.dirty.size - self.dirty.sum())


def edge_agreement(weight_first: np.ndarray, weight_second: np.ndarray, c: float) -> np.ndarray:
    """The factor ``C`` for all pairs of edge weights (outer combination).

    ``C = c * (1 - |f1 - f2| / (f1 + f2))``; shape is
    ``(len(weight_first), len(weight_second))``.  Frequencies are positive
    by construction, so the denominator never vanishes.
    """
    w1 = weight_first[:, None]
    w2 = weight_second[None, :]
    return c * (1.0 - np.abs(w1 - w2) / (w1 + w2))


class _DirectionalRun:
    """One forward-similarity fixpoint computation on a graph pair."""

    def __init__(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        config: EMSConfig,
        label_matrix: np.ndarray,
        fixed_pairs: dict[tuple[str, str], float] | WarmStart | None = None,
        meter: BudgetMeter | None = None,
    ):
        self.config = config
        self._meter = meter
        self.nodes_first = first.nodes
        self.nodes_second = second.nodes
        n1, n2 = len(self.nodes_first), len(self.nodes_second)
        self._n1, self._n2 = n1, n2
        self.label_matrix = label_matrix

        index_first = {node: i for i, node in enumerate(self.nodes_first)}
        index_first[ARTIFICIAL] = n1
        index_second = {node: j for j, node in enumerate(self.nodes_second)}
        index_second[ARTIFICIAL] = n2

        # Predecessor index arrays and in-edge weights, per real node.
        self._preds_first: list[np.ndarray] = []
        self._weights_first: list[np.ndarray] = []
        for node in self.nodes_first:
            preds = first.predecessors(node)
            self._preds_first.append(np.array([index_first[p] for p in preds], dtype=int))
            self._weights_first.append(
                np.array([first.edge_frequency(p, node) for p in preds])
            )
        self._preds_second: list[np.ndarray] = []
        self._weights_second: list[np.ndarray] = []
        for node in self.nodes_second:
            preds = second.predecessors(node)
            self._preds_second.append(np.array([index_second[p] for p in preds], dtype=int))
            self._weights_second.append(
                np.array([second.edge_frequency(p, node) for p in preds])
            )

        # Per-pair hot-path cache, built lazily: (edge-agreement matrix,
        # open-mesh ancestor index, 1/|pre(v1)|, 1/|pre(v2)|).  The mesh
        # and reciprocals never change across iterations, and caching them
        # roughly halves the per-iteration cost on mid-size graphs.
        self._pair_cache: dict[
            tuple[int, int], tuple[np.ndarray, tuple[np.ndarray, np.ndarray], float, float]
        ] = {}

        # Similarity array with the artificial row/column appended.
        self.values = np.zeros((n1 + 1, n2 + 1))
        self.values[n1, n2] = 1.0  # S^0(v1^X, v2^X)

        self.schedule = ConvergenceSchedule(first, second)
        # Agreement of the two artificial in-edges, used by the estimation.
        if config.use_edge_weights:
            f1 = np.array([first.frequency(node) for node in self.nodes_first])
            f2 = np.array([second.frequency(node) for node in self.nodes_second])
            self._artificial_agreement = edge_agreement(f1, f2, config.c)
        else:
            self._artificial_agreement = np.full((n1, n2), config.c)

        # Pairs with externally known converged values (Proposition 4 — the
        # *Uc* pruning of the composite matcher): seeded and never updated.
        # A WarmStart is the array form of the same fixed set: non-dirty
        # pairs keep the carried values, dirty pairs start from 0 exactly
        # like a cold run, so the two representations are interchangeable.
        if isinstance(fixed_pairs, WarmStart):
            if fixed_pairs.values.shape != (n1, n2):
                raise ValueError(
                    f"warm-start shape {fixed_pairs.values.shape} does not match "
                    f"the ({n1}, {n2}) real-pair grid"
                )
            self._fixed_mask = ~fixed_pairs.dirty
            real = self.values[:n1, :n2]
            real[self._fixed_mask] = fixed_pairs.values[self._fixed_mask]
        else:
            self._fixed_mask = np.zeros((n1, n2), dtype=bool)
            if fixed_pairs:
                for (node_first, node_second), value in fixed_pairs.items():
                    i = index_first.get(node_first)
                    j = index_second.get(node_second)
                    if i is None or j is None or i == n1 or j == n2:
                        continue
                    self.values[i, j] = value
                    self._fixed_mask[i, j] = True

        self.iterations = 0
        self.pair_updates = 0
        self.converged = False
        self.estimated = False

    # ------------------------------------------------------------------
    def _pair_entry(
        self, i: int, j: int
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray], float, float]:
        cached = self._pair_cache.get((i, j))
        if cached is None:
            if self.config.use_edge_weights:
                agreement = edge_agreement(
                    self._weights_first[i], self._weights_second[j], self.config.c
                )
            else:
                # Ablation: plain SimRank-style constant decay, no edge
                # similarity (see EMSConfig.use_edge_weights).
                agreement = np.full(
                    (len(self._weights_first[i]), len(self._weights_second[j])),
                    self.config.c,
                )
            mesh = np.ix_(self._preds_first[i], self._preds_second[j])
            cached = (
                agreement,
                mesh,
                1.0 / len(self._preds_first[i]),
                1.0 / len(self._preds_second[j]),
            )
            self._pair_cache[(i, j)] = cached
        return cached

    def real_values(self) -> np.ndarray:
        """The real-pair block of the similarity array (a copy)."""
        return self.values[: self._n1, : self._n2].copy()

    def step(self) -> float:
        """Perform one iteration of formula (1); return the max change.

        When a :class:`BudgetMeter` is attached, the budget is checked at
        the start of the iteration and every pair update is charged; a
        :class:`~repro.exceptions.BudgetExhausted` raised mid-iteration
        leaves ``values`` in a valid best-so-far state (some pairs
        updated, the rest at the previous iteration) and the accounting
        consistent, so the degradation ladder can continue from it.
        """
        meter = self._meter
        if meter is not None:
            meter.check()
        self.iterations += 1
        iteration = self.iterations
        alpha = self.config.alpha
        previous = self.values.copy()
        pair_levels = self.schedule.pair_levels
        use_pruning = self.config.use_pruning
        label = self.label_matrix
        fixed = self._fixed_mask
        half_alpha = alpha / 2.0
        label_weight = 1.0 - alpha
        max_delta = 0.0
        updates = 0
        try:
            for i in range(self._n1):
                for j in range(self._n2):
                    if fixed[i, j]:
                        continue
                    if use_pruning and iteration > pair_levels[i, j]:
                        continue
                    agreement, mesh, inverse_a, inverse_b = self._pair_entry(i, j)
                    weighted = agreement * previous[mesh]
                    s_forward = weighted.max(axis=1).sum() * inverse_a
                    s_backward = weighted.max(axis=0).sum() * inverse_b
                    updated = half_alpha * (s_forward + s_backward)
                    if label_weight:
                        updated += label_weight * label[i, j]
                    updates += 1
                    delta = abs(updated - previous[i, j])
                    if delta > max_delta:
                        max_delta = delta
                    self.values[i, j] = updated
                    if meter is not None:
                        meter.tick()
        finally:
            self.pair_updates += updates
        return max_delta

    def finished(self) -> bool:
        return self.converged or self.iterations >= self.config.max_iterations

    def advance(self) -> None:
        """One step plus convergence bookkeeping."""
        delta = self.step()
        if delta < self.config.epsilon or (
            self.config.use_pruning and self.schedule.all_fixed_after(self.iterations)
        ):
            self.converged = True

    def run_exact(self) -> None:
        while not self.finished():
            self.advance()

    def run_estimated(self, exact_iterations: int) -> None:
        """``EMS+es``: *exact_iterations* exact steps, then formula (2)."""
        while self.iterations < exact_iterations and not self.finished():
            self.advance()
        if self.converged:
            return  # exact values everywhere; nothing to estimate
        q, a = estimation_coefficients(
            np.array([len(p) for p in self._preds_first]),
            np.array([len(p) for p in self._preds_second]),
            self._artificial_agreement,
            self.label_matrix,
            self.config.alpha,
            self.config.c,
        )
        real = self.real_values()
        estimated = estimate_matrix(real, q, a, self.schedule.pair_levels, self.iterations)
        estimated[self._fixed_mask] = real[self._fixed_mask]
        self.values[: self._n1, : self._n2] = estimated
        self.estimated = True
        self.converged = True

    def average_bound(self) -> float:
        """Upper bound of the final average similarity, given progress so far."""
        real = self.real_values()
        if self._n1 == 0 or self._n2 == 0:
            return 0.0
        if self.converged:
            return float(real.mean())
        bounded = matrix_upper_bound(
            real, self.iterations, self.config.decay, self.schedule.pair_levels
        )
        bounded[self._fixed_mask] = real[self._fixed_mask]
        return float(bounded.mean())


@dataclass(slots=True)
class _Bucket:
    """Precomputed tensors for one degree bucket ``(|pre(v1)|, |pre(v2)|)``.

    Pairs are laid out in the :func:`repro.core.pruning.prefix_schedule`
    order (descending convergence level), so Proposition-2 pruning at
    iteration ``n`` reduces to slicing the first
    :func:`repro.core.pruning.active_prefix_length` entries.
    """

    rows: np.ndarray           #: (m,) row index of each pair
    cols: np.ndarray           #: (m,) column index of each pair
    linear: np.ndarray         #: (m,) row-major linear index (budget-cut order)
    preds_first: np.ndarray    #: (m, A) predecessor rows into the value array
    preds_second: np.ndarray   #: (m, B) predecessor columns into the value array
    agreement: np.ndarray | None  #: (m, A, B) edge-agreement ``C``; None = constant c
    levels: np.ndarray         #: (m,) convergence levels, descending
    inverse_first: float       #: 1 / A
    inverse_second: float      #: 1 / B


class _VectorizedRun(_DirectionalRun):
    """The bucketed, padded NumPy formulation of the same fixpoint.

    Pairs sharing a predecessor-count signature ``(A, B)`` evaluate
    formula (1) with identically-shaped tensors, so each bucket runs one
    iteration as ``gather(previous) * agreement -> max -> sum`` over all
    its active pairs at once.  Tensors are built lazily on the first step
    (the ``I = 0`` estimation never steps) and exclude Uc-fixed pairs,
    which are never updated.

    Budget semantics replicate the reference loop exactly: the meter is
    charged once per iteration chunk via ``tick(n)``, and when the
    pair-update cap would trip mid-iteration only the row-major prefix of
    active pairs the reference loop would have committed is written before
    the raise, leaving ``values`` in the same valid best-so-far state.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._buckets: list[_Bucket] | None = None

    # ------------------------------------------------------------------
    def _build_buckets(self) -> list[_Bucket]:
        rows_by_degree: dict[int, list[int]] = {}
        for i, preds in enumerate(self._preds_first):
            rows_by_degree.setdefault(len(preds), []).append(i)
        cols_by_degree: dict[int, list[int]] = {}
        for j, preds in enumerate(self._preds_second):
            cols_by_degree.setdefault(len(preds), []).append(j)

        pair_levels = self.schedule.pair_levels
        fixed = self._fixed_mask
        config = self.config
        buckets: list[_Bucket] = []
        for degree_first, row_list in rows_by_degree.items():
            row_arr = np.array(row_list, dtype=int)
            p1 = np.stack([self._preds_first[i] for i in row_list])
            w1 = np.stack([self._weights_first[i] for i in row_list])
            for degree_second, col_list in cols_by_degree.items():
                col_arr = np.array(col_list, dtype=int)
                p2 = np.stack([self._preds_second[j] for j in col_list])
                w2 = np.stack([self._weights_second[j] for j in col_list])

                rows = np.repeat(row_arr, len(col_arr))
                cols = np.tile(col_arr, len(row_arr))
                row_pos = np.repeat(np.arange(len(row_arr)), len(col_arr))
                col_pos = np.tile(np.arange(len(col_arr)), len(row_arr))
                keep = ~fixed[rows, cols]
                if not keep.any():
                    continue
                rows, cols = rows[keep], cols[keep]
                row_pos, col_pos = row_pos[keep], col_pos[keep]
                order, levels = prefix_schedule(np.asarray(pair_levels[rows, cols], dtype=float))
                rows, cols = rows[order], cols[order]
                row_pos, col_pos = row_pos[order], col_pos[order]
                if config.use_edge_weights:
                    left = w1[row_pos][:, :, None]
                    right = w2[col_pos][:, None, :]
                    agreement = config.c * (1.0 - np.abs(left - right) / (left + right))
                else:
                    agreement = None
                buckets.append(
                    _Bucket(
                        rows=rows,
                        cols=cols,
                        linear=rows * self._n2 + cols,
                        preds_first=p1[row_pos],
                        preds_second=p2[col_pos],
                        agreement=agreement,
                        levels=levels,
                        inverse_first=1.0 / degree_first,
                        inverse_second=1.0 / degree_second,
                    )
                )
        return buckets

    # ------------------------------------------------------------------
    def step(self) -> float:
        meter = self._meter
        if meter is not None:
            meter.check()
        self.iterations += 1
        iteration = self.iterations
        if self._buckets is None:
            self._buckets = self._build_buckets()
        config = self.config
        half_alpha = config.alpha / 2.0
        label_weight = 1.0 - config.alpha
        use_pruning = config.use_pruning
        previous = self.values.copy()
        label = self.label_matrix
        c = config.c

        # Phase 1: evaluate formula (1) for every active pair.  All reads
        # go to `previous` (Jacobi iteration), so pending updates are
        # independent of commit order.
        pending: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        total_active = 0
        for bucket in self._buckets:
            if use_pruning:
                count = active_prefix_length(bucket.levels, iteration)
                if count == 0:
                    continue
                sel = slice(0, count)
            else:
                sel = slice(None)
            rows = bucket.rows[sel]
            cols = bucket.cols[sel]
            p1 = bucket.preds_first[sel]
            p2 = bucket.preds_second[sel]
            gathered = previous[p1[:, :, None], p2[:, None, :]]
            if bucket.agreement is not None:
                weighted = bucket.agreement[sel] * gathered
            else:
                weighted = c * gathered
            s_forward = weighted.max(axis=2).sum(axis=1) * bucket.inverse_first
            s_backward = weighted.max(axis=1).sum(axis=1) * bucket.inverse_second
            updated = half_alpha * (s_forward + s_backward)
            if label_weight:
                updated = updated + label_weight * label[rows, cols]
            pending.append((bucket.linear[sel], rows, cols, updated))
            total_active += len(rows)

        # Phase 2: commit and charge the meter in one batched call.
        remaining = meter.pair_updates_remaining if meter is not None else None
        committed = 0
        max_delta = 0.0
        try:
            if remaining is not None and total_active > remaining:
                # The cap trips mid-iteration.  The reference loop visits
                # pairs in row-major order and writes the pair whose tick
                # raises before raising, so `remaining + 1` pairs commit.
                allowed = remaining + 1
                linear = np.concatenate([entry[0] for entry in pending])
                rows = np.concatenate([entry[1] for entry in pending])
                cols = np.concatenate([entry[2] for entry in pending])
                updated = np.concatenate([entry[3] for entry in pending])
                first = np.argsort(linear, kind="stable")[:allowed]
                rows, cols, updated = rows[first], cols[first], updated[first]
                deltas = np.abs(updated - previous[rows, cols])
                self.values[rows, cols] = updated
                committed = allowed
                max_delta = float(deltas.max()) if deltas.size else 0.0
                meter.tick(allowed)
                raise AssertionError("pair-update budget charge must have raised")
            for _, rows, cols, updated in pending:
                deltas = np.abs(updated - previous[rows, cols])
                if deltas.size:
                    delta = float(deltas.max())
                    if delta > max_delta:
                        max_delta = delta
                self.values[rows, cols] = updated
            committed = total_active
            if meter is not None:
                meter.tick(total_active)
        finally:
            self.pair_updates += committed
        return max_delta


#: Kernel registry: EMSConfig.kernel -> directional-run implementation.
_KERNELS: dict[str, type[_DirectionalRun]] = {
    "reference": _DirectionalRun,
    "vectorized": _VectorizedRun,
}

#: What the Uc / warm-start seed of a directional run may look like.
FixedPairs = dict[tuple[str, str], float] | WarmStart | None


def _make_run(
    first: DependencyGraph,
    second: DependencyGraph,
    config: EMSConfig,
    label_matrix: np.ndarray,
    fixed_pairs: FixedPairs = None,
    meter: BudgetMeter | None = None,
) -> _DirectionalRun:
    return _KERNELS[config.kernel](first, second, config, label_matrix, fixed_pairs, meter)


class EMSEngine:
    """Computes EMS similarities between two dependency graphs.

    Parameters
    ----------
    config:
        The :class:`EMSConfig` knobs; defaults are the paper's.
    label_similarity:
        The ``S^L`` blended in with weight ``1 - alpha``.  Defaults to
        :class:`OpaqueSimilarity` (structural-only matching).  Note that
        with ``alpha = 1`` the label similarity has no effect.
    label_cache:
        Optional :class:`LabelMatrixCache` shared across engines of one
        matching run, so repeated ``similarity`` calls over overlapping
        vocabularies (the composite greedy loop) skip recomputing ``S^L``.
    """

    def __init__(
        self,
        config: EMSConfig | None = None,
        label_similarity: LabelSimilarity | None = None,
        label_cache: LabelMatrixCache | None = None,
    ):
        self.config = config if config is not None else EMSConfig()
        self.label_similarity = (
            label_similarity if label_similarity is not None else OpaqueSimilarity()
        )
        self.label_cache = label_cache

    # ------------------------------------------------------------------
    def _label_matrix(self, first: DependencyGraph, second: DependencyGraph) -> np.ndarray:
        if isinstance(self.label_similarity, OpaqueSimilarity) or self.config.alpha == 1.0:
            return np.zeros((len(first.nodes), len(second.nodes)))
        if self.label_cache is not None:
            return self.label_cache.matrix(first.nodes, second.nodes, self.label_similarity)
        label = np.zeros((len(first.nodes), len(second.nodes)))
        for i, node_first in enumerate(first.nodes):
            for j, node_second in enumerate(second.nodes):
                label[i, j] = self.label_similarity(node_first, node_second)
        return label

    def _runs(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        fixed_forward: FixedPairs = None,
        fixed_backward: FixedPairs = None,
        meter: BudgetMeter | None = None,
    ) -> list[_DirectionalRun]:
        label = self._label_matrix(first, second)
        runs: list[_DirectionalRun] = []
        if self.config.direction in ("forward", "both"):
            runs.append(
                _make_run(first, second, self.config, label, fixed_forward, meter)
            )
        if self.config.direction in ("backward", "both"):
            runs.append(
                _make_run(
                    first.reversed(), second.reversed(), self.config, label,
                    fixed_backward, meter,
                )
            )
        return runs

    def _result(self, first: DependencyGraph, second: DependencyGraph,
                runs: list[_DirectionalRun]) -> EMSResult:
        combined = np.mean([run.real_values() for run in runs], axis=0)
        matrix = SimilarityMatrix(first.nodes, second.nodes, combined)
        directional: dict[str, SimilarityMatrix] = {}
        names = (
            ["forward", "backward"] if self.config.direction == "both"
            else [self.config.direction]
        )
        for name, run in zip(names, runs):
            directional[name] = SimilarityMatrix(first.nodes, second.nodes, run.real_values())
        return EMSResult(
            matrix=matrix,
            iterations=sum(run.iterations for run in runs),
            pair_updates=sum(run.pair_updates for run in runs),
            converged=all(run.converged for run in runs),
            estimated=any(run.estimated for run in runs),
            directional=directional,
        )

    # ------------------------------------------------------------------
    def similarity(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        fixed_forward: FixedPairs = None,
        fixed_backward: FixedPairs = None,
        meter: BudgetMeter | None = None,
    ) -> EMSResult:
        """Compute the pairwise similarity matrix of the two graphs.

        ``fixed_forward`` / ``fixed_backward`` seed pairs whose converged
        value is already known (Proposition 4); they are never iterated.
        A *meter* makes the computation cooperatively cancellable:
        :class:`~repro.exceptions.BudgetExhausted` propagates to the
        caller (use :meth:`similarity_resilient` for the degradation
        ladder instead).
        """
        runs = self._runs(first, second, fixed_forward, fixed_backward, meter)
        for run in runs:
            if self.config.estimation_iterations is not None:
                run.run_estimated(self.config.estimation_iterations)
            else:
                run.run_exact()
        return self._result(first, second, runs)

    def similarity_resilient(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        meter: BudgetMeter | None,
        policy: DegradationPolicy | None = None,
        fixed_forward: FixedPairs = None,
        fixed_backward: FixedPairs = None,
    ) -> tuple[EMSResult, str, str | None]:
        """:meth:`similarity` with the graceful-degradation ladder.

        Returns ``(result, stage, reason)`` where *stage* is one of
        ``"exact"`` (completed within budget), ``"estimated"`` (budget
        exhausted; the Section 3.5 closed form filled in unconverged
        pairs from however many exact iterations ran) or ``"partial"``
        (best-so-far values as-is), and *reason* is the exhausted budget
        axis (``None`` when exact).  With a ladder fully disabled by
        *policy*, :class:`~repro.exceptions.BudgetExhausted` propagates.
        """
        if policy is None:
            policy = DegradationPolicy()
        runs = self._runs(first, second, fixed_forward, fixed_backward, meter)
        try:
            for run in runs:
                if self.config.estimation_iterations is not None:
                    run.run_estimated(self.config.estimation_iterations)
                else:
                    run.run_exact()
            return self._result(first, second, runs), STAGE_EXACT, None
        except BudgetExhausted as error:
            if policy.allow_estimation:
                # The closed form needs no further iterations: asking for
                # exactly the iterations already performed makes
                # run_estimated apply formula (2) to the current state.
                for run in runs:
                    run.run_estimated(run.iterations)
                return self._result(first, second, runs), STAGE_ESTIMATED, error.reason
            if policy.allow_partial:
                return self._result(first, second, runs), STAGE_PARTIAL, error.reason
            raise

    def similarity_with_abort(
        self,
        first: DependencyGraph,
        second: DependencyGraph,
        abort_below: float,
        fixed_forward: FixedPairs = None,
        fixed_backward: FixedPairs = None,
        meter: BudgetMeter | None = None,
    ) -> EMSResult | None:
        """Like :meth:`similarity`, but give up early when hopeless.

        After every iteration the upper bound of the final *average*
        similarity (Proposition 6 / Corollary 7, averaged over directions)
        is compared against *abort_below*; if it falls strictly below,
        ``None`` is returned — the candidate cannot beat the incumbent.
        This is the *Bd* pruning of Section 4.3.
        """
        runs = self._runs(first, second, fixed_forward, fixed_backward, meter)
        # Lockstep: advance each unfinished run one iteration, then check
        # the combined bound, so hopeless candidates die at the first
        # possible moment.
        exact_budget = self.config.estimation_iterations
        while True:
            active = [
                run
                for run in runs
                if not run.finished()
                and (exact_budget is None or run.iterations < exact_budget)
            ]
            if not active:
                break
            for run in active:
                run.advance()
            bound = float(np.mean([run.average_bound() for run in runs]))
            if bound < abort_below:
                return None
        if exact_budget is not None:
            for run in runs:
                run.run_estimated(exact_budget)
        return self._result(first, second, runs)

    # ------------------------------------------------------------------
    def pair_similarity(
        self, first: DependencyGraph, second: DependencyGraph, node_first: str, node_second: str
    ) -> float:
        """Convenience: the converged similarity of one pair."""
        return self.similarity(first, second).matrix.get(node_first, node_second)


def iteration_trace(
    first: DependencyGraph,
    second: DependencyGraph,
    config: EMSConfig | None = None,
    label_similarity: LabelSimilarity | None = None,
    iterations: int = 10,
) -> list[SimilarityMatrix]:
    """The per-iteration similarity matrices ``S^1 .. S^k`` (forward only).

    Exposed for tests and worked examples (Examples 4-6 of the paper track
    individual iterations); not used on the hot path.
    """
    engine = EMSEngine(config, label_similarity)
    label = engine._label_matrix(first, second)
    run = _make_run(first, second, engine.config, label)
    snapshots: list[SimilarityMatrix] = []
    for _ in range(iterations):
        run.step()
        snapshots.append(SimilarityMatrix(first.nodes, second.nodes, run.real_values()))
    return snapshots
