"""Similarity upper bounds (Lemma 5, Proposition 6, Corollary 7).

Lemma 5 bounds the per-iteration increase of any pair's similarity by
``(alpha*c)^n``; summing the geometric tail gives, after ``k`` exact
iterations:

* the general bound (Proposition 6)::

      S(v1, v2) <= S^k(v1, v2) + (alpha*c)^k / (1 - alpha*c)

* the level-aware bound (Corollary 7), when the pair is known to converge
  by iteration ``h``::

      S(v1, v2) <= S^k(v1, v2) + ((alpha*c)^k - (alpha*c)^h) / (1 - alpha*c)

Section 4.3 uses these to abort evaluating a composite-event candidate as
soon as the upper bound of its average similarity falls below the best
average found so far (the *Bd* pruning of Figure 12).
"""

from __future__ import annotations

import math

import numpy as np

#: Strict-dominance margin used wherever a sound upper bound is compared
#: against an incumbent average (estimation screening, best-first cutoff).
#: A candidate is skipped only when ``bound < incumbent - SCREEN_MARGIN``:
#: bounds within the margin of the incumbent are conservatively evaluated,
#: so float noise in the bound arithmetic can never skip a candidate the
#: exact evaluation would have selected.
SCREEN_MARGIN = 1e-9


def pair_upper_bound(value: float, k: int, decay: float, h: float = math.inf) -> float:
    """Upper bound of the limit similarity after ``k`` iterations.

    Parameters
    ----------
    value:
        ``S^k(v1, v2)``, the similarity after the ``k``-th iteration.
    k:
        Number of completed iterations (>= 0).
    decay:
        ``alpha * c``; must be in [0, 1).
    h:
        The pair's convergence level ``min(l(v1), l(v2))`` if known
        (Corollary 7); ``inf`` gives the general bound (Proposition 6).
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if not 0.0 <= decay < 1.0:
        raise ValueError(f"decay must be in [0, 1), got {decay}")
    if h <= k:
        return value  # already converged (Proposition 2)
    tail = decay**k if math.isinf(h) else decay**k - decay**h
    return min(1.0, value + tail / (1.0 - decay))


def matrix_upper_bound(
    values: np.ndarray, k: int, decay: float, pair_levels: np.ndarray | None = None
) -> np.ndarray:
    """Vectorized :func:`pair_upper_bound` over a similarity matrix.

    ``pair_levels`` is the per-pair ``h`` array from
    :class:`repro.core.pruning.ConvergenceSchedule`; omit for the general
    bound.  Bounds are clipped to 1 (similarities cannot exceed 1).
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if not 0.0 <= decay < 1.0:
        raise ValueError(f"decay must be in [0, 1), got {decay}")
    if pair_levels is None:
        tail = np.full_like(values, decay**k)
    else:
        finite = np.isfinite(pair_levels)
        tail = np.full_like(values, decay**k)
        with np.errstate(over="ignore"):
            tail[finite] = decay**k - decay ** pair_levels[finite]
        tail[pair_levels <= k] = 0.0
    bounded = values + tail / (1.0 - decay)
    return np.minimum(bounded, 1.0)


def average_upper_bound(
    values: np.ndarray, k: int, decay: float, pair_levels: np.ndarray | None = None
) -> float:
    """Upper bound of the *average* similarity after ``k`` iterations."""
    if values.size == 0:
        return 0.0
    return float(matrix_upper_bound(values, k, decay, pair_levels).mean())


def estimation_screen_bound(
    q: np.ndarray,
    a: np.ndarray,
    tolerance: float = 1e-9,
    max_rounds: int = 200,
) -> np.ndarray:
    """A sound per-pair upper bound on the converged similarity from ``(q, a)``.

    The Section-3.5 estimation coefficients satisfy, for *any* iterate,
    ``S^n(v1, v2) <= q * u + a`` whenever every pair's previous iterate is
    at most ``u``: the two directional terms of formula (1) are averages of
    ``max C * S`` with ``C <= c``, with the artificial predecessor pair
    contributing ``C_art * S(v1^X, v2^X) = C_art`` — exactly the split that
    produces ``q`` and ``a``.  Starting from the trivial ``u_0 = 1`` and
    refining ``u_{k+1} = max(min(1, q * u_k + a))`` therefore bounds every
    iterate by induction, hence the limit.  The refinement is monotone
    non-increasing, so iterating to a fixpoint tightens the bound without
    ever under-cutting the true similarity — this is what makes
    estimation-bound candidate screening trajectory-preserving: a candidate
    rejected because the mean of this bound cannot beat the incumbent
    average would also have been rejected by the exact evaluation.

    Returns the per-pair bound matrix (same shape as *q*).
    """
    if q.size == 0:
        return np.ones_like(q)
    u = 1.0
    bound = np.minimum(1.0, q * u + a)
    for _ in range(max_rounds):
        refined = float(bound.max())
        if refined >= u - tolerance:
            break
        u = refined
        bound = np.minimum(1.0, q * u + a)
    return bound
