"""Configuration of the EMS similarity computation.

One dataclass gathers every knob the paper exposes:

* ``alpha`` — weight of the structural part vs the label part
  (Definition 2); the paper's structural-only experiments use ``alpha = 1``.
* ``c`` — similarity decay across edges, the upper bound of the edge
  agreement factor ``C`` (Definition 2).  The paper's worked examples are
  consistent with ``c = 0.8``.
* ``epsilon`` — iteration stops when no pair moved by more than this
  (Section 3.2).
* ``direction`` — forward (predecessors), backward (successors), or the
  average of both; Section 3.6 notes that aggregating both directions is
  what fully addresses dislocated matching.
* ``use_pruning`` — early-convergence pruning (Proposition 2).
* ``estimation_iterations`` — the budget ``I`` of exact iterations before
  switching to the closed-form estimation (Section 3.5); ``None`` disables
  estimation (exact EMS).
* ``kernel`` — which implementation evaluates formula (1):
  ``"vectorized"`` (default) runs each iteration as batched NumPy
  gather/multiply/max-reduce operations over degree-bucketed pair
  populations, ``"sparse"`` evaluates the same iteration as a CSR
  gather–scatter over flat contribution chunks — ``O(chunk)`` working
  memory instead of the vectorized kernel's ``O(Σ m·A·B)`` resident
  tensors — ``"compiled"`` runs the bucketed iteration through
  numba-jitted machine-code loops when numba is installed (pure-Python
  vectorized fallback otherwise, with a one-time logged warning), and
  ``"reference"`` is the straightforward per-pair loop the other
  kernels are differentially tested against.  All of them produce the
  same similarities, ``iterations`` and ``pair_updates``.
* ``dtype`` — floating-point width of the similarity computation.
  ``"float64"`` (default) is exact against the reference kernel;
  ``"float32"`` halves the memory of every value/agreement buffer at a
  ~1e-5 accuracy cost (rank-preserving in practice, see
  ``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

import numpy as np

Direction = Literal["forward", "backward", "both"]
Kernel = Literal["vectorized", "reference", "sparse", "compiled"]
Dtype = Literal["float64", "float32"]

#: The NumPy dtypes backing :attr:`EMSConfig.dtype`.
_DTYPES: dict[str, np.dtype] = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
}


@dataclass(frozen=True, slots=True)
class EMSConfig:
    """Parameters of the EMS similarity (see module docstring)."""

    alpha: float = 1.0
    c: float = 0.8
    epsilon: float = 1e-4
    max_iterations: int = 100
    direction: Direction = "both"
    use_pruning: bool = True
    estimation_iterations: int | None = None
    #: Ablation switch: with False, the edge-agreement factor ``C`` is the
    #: constant ``c`` regardless of frequency differences — i.e. a plain
    #: SimRank-style propagation without the paper's edge similarities
    #: (Definition 2's second ingredient).  Keep True outside ablations.
    use_edge_weights: bool = True
    #: Which fixpoint implementation evaluates formula (1); see module
    #: docstring.  Results are identical — "reference" exists for
    #: differential testing and as a readable spec of the computation,
    #: "sparse" trades a little arithmetic for O(chunk) working memory,
    #: "compiled" runs the bucketed loops through numba when available
    #: (vectorized fallback otherwise).
    kernel: Kernel = "vectorized"
    #: Floating-point width of the similarity computation ("float64" or
    #: "float32"); see module docstring.
    dtype: Dtype = "float64"
    #: Incremental composite search: candidate merges patch the parent
    #: round's counts, graphs and levels instead of rebuilding from the
    #: rewritten log, and the fixpoint warm-starts from the parent round's
    #: converged matrices (Proposition 4 in array form).  Trajectories and
    #: scores are identical to the cold path (the differential property
    #: suite holds this to 1e-12); False restores the cold path — the
    #: ``--no-incremental`` escape hatch.
    incremental: bool = True
    #: Estimation-bound candidate screening (Section 3.5 as a filter):
    #: before the exact evaluation, a candidate whose closed-form upper
    #: bound cannot beat the incumbent ``Bd`` is rejected without building
    #: a graph.  Sound — screened candidates would have lost anyway — and
    #: automatically disabled while a pair-update budget is active so that
    #: budget accounting matches the unscreened path.  Only consulted on
    #: the incremental path.
    screening: bool = True
    #: Best-first candidate scheduling in the serial composite search:
    #: each round's candidates are ordered by their sound estimation
    #: upper bound (:func:`repro.core.bounds.estimation_screen_bound`,
    #: highest first) and the round cuts off globally once the best
    #: confirmed average dominates every remaining bound.  The selected
    #: merges and final scores are bit-identical to the static
    #: round-robin order — the bound is sound and ties resolve to the
    #: round-robin winner — only the evaluation order and the number of
    #: full evaluations change.  Disabled while a budget meter is active
    #: (same reason as ``screening``) and on worker-pool rounds (wave
    #: order is the determinism contract there); ``--no-best-first``
    #: restores the static order everywhere.
    best_first: bool = True
    #: LRU entry cap of the shared :class:`~repro.core.ems.LabelMatrixCache`
    #: (``None`` = unbounded).  Each entry is one whole label matrix plus
    #: headroom for 128 scalar cells.
    label_cache_entries: int | None = 512

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if not 0.0 < self.c < 1.0:
            raise ValueError(f"c must be in (0, 1), got {self.c}")
        if self.alpha * self.c >= 1.0:
            raise ValueError(
                f"alpha * c must be < 1 for convergence (Theorem 1), got {self.alpha * self.c}"
            )
        if self.epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.direction not in ("forward", "backward", "both"):
            raise ValueError(f"direction must be forward/backward/both, got {self.direction!r}")
        if self.estimation_iterations is not None and self.estimation_iterations < 0:
            raise ValueError(
                f"estimation_iterations must be >= 0 or None, got {self.estimation_iterations}"
            )
        if self.kernel not in ("vectorized", "reference", "sparse", "compiled"):
            raise ValueError(
                f"kernel must be vectorized/reference/sparse/compiled, "
                f"got {self.kernel!r}"
            )
        if self.dtype not in _DTYPES:
            raise ValueError(
                f"dtype must be float64/float32, got {self.dtype!r}"
            )
        if self.label_cache_entries is not None and self.label_cache_entries < 1:
            raise ValueError(
                f"label_cache_entries must be >= 1 or None, got {self.label_cache_entries}"
            )

    def with_(self, **changes) -> "EMSConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)

    @property
    def decay(self) -> float:
        """``alpha * c``: the per-iteration contraction factor (Lemma 5)."""
        return self.alpha * self.c

    @property
    def np_dtype(self) -> np.dtype:
        """The NumPy dtype backing :attr:`dtype`."""
        return _DTYPES[self.dtype]
