"""Closed-form similarity estimation (Section 3.5, formula (2)).

Running the exact iteration to convergence costs
``O(k |V1| |V2| d_avg)``.  The estimation replaces all iterations beyond a
budget ``I`` by assuming every edge-agreement factor ``C`` attains its
maximum ``c`` and every ancestor-pair similarity equals the pair's own,
which collapses the recurrence into a linear one::

    S_es^n = q * S_es^{n-1} + a

with, writing ``A = |pre(v1)|``, ``B = |pre(v2)|``::

    q = alpha * c * (2AB - A - B) / (2AB)
    a = alpha * (A + B) / (2AB) * C_art + (1 - alpha) * S^L(v1, v2)

where ``C_art = C(v1^X, v1, v2^X, v2)`` is the agreement of the two
artificial in-edges (times ``S(v1^X, v2^X) = 1``).  Summing the geometric
series up to the pair's convergence level ``h`` gives formula (2)::

    S_es^h = q^(h-I) * S^I + a * (1 - q^(h-I)) / (1 - q)

For ``h = inf`` (pairs downstream of a loop) the limit is ``a / (1 - q)``.

Note on Example 6: the paper states ``S_es^1(A,1) = C(v1X,A,v2X,1) * c =
0.6``, "equal to the exact value of S(A,1)", but with the paper's own
numbers the exact value is 0.457 and formula (2) also yields 0.457 (with
``A = B = 1`` we get ``q = 0`` and ``S_es = a = C_art``).  We implement
formula (2) verbatim and treat the 0.6 as a typo.
"""

from __future__ import annotations

import math

import numpy as np

#: exp(x) underflows to subnormal/zero below this; fall straight to the
#: series limit instead of letting ``q ** steps`` trip FP underflow traps.
_UNDERFLOW_EXPONENT = -745.0


def _geometric_power(q: np.ndarray, steps: np.ndarray) -> np.ndarray:
    """``q ** steps`` computed in log-space, underflow-safe.

    ``steps`` can reach the pair's convergence level ``h`` — thousands on
    deep logs — where ``q ** steps`` underflows.  The result is then
    indistinguishable from 0 (the series limit ``a / (1 - q)`` takes over),
    so exponents below the double-precision floor are clamped to exactly 0
    instead of raising ``FloatingPointError`` under strict FP error states.
    ``q`` entries are in ``[0, 1)``; ``q == 0`` yields 0 (steps >= 1 here).
    """
    result = np.zeros_like(q)
    positive = q > 0.0
    if positive.any():
        exponent = steps[positive] * np.log(q[positive])
        safe = exponent > _UNDERFLOW_EXPONENT
        values = np.zeros_like(exponent)
        values[safe] = np.exp(exponent[safe])
        result[positive] = values
    return result


def estimation_coefficients(
    pre_count_first: np.ndarray,
    pre_count_second: np.ndarray,
    artificial_agreement: np.ndarray,
    label: np.ndarray,
    alpha: float,
    c: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``(q, a)`` for every pair.

    Parameters
    ----------
    pre_count_first:
        ``A = |pre(v1)|`` for each row node, shape ``(n1,)``.
    pre_count_second:
        ``B = |pre(v2)|`` for each column node, shape ``(n2,)``.
    artificial_agreement:
        ``C_art`` per pair, shape ``(n1, n2)``.
    label:
        ``S^L`` per pair, shape ``(n1, n2)``.
    """
    a_count = pre_count_first[:, None].astype(float)
    b_count = pre_count_second[None, :].astype(float)
    product = a_count * b_count
    q = alpha * c * (2.0 * product - a_count - b_count) / (2.0 * product)
    a = alpha * (a_count + b_count) / (2.0 * product) * artificial_agreement
    a = a + (1.0 - alpha) * label
    return q, a


def estimate_matrix(
    exact: np.ndarray,
    q: np.ndarray,
    a: np.ndarray,
    pair_levels: np.ndarray,
    exact_iterations: int,
) -> np.ndarray:
    """Apply formula (2) to every pair that has not converged exactly.

    Parameters
    ----------
    exact:
        ``S^I``: the values after *exact_iterations* exact iterations.
    q, a:
        Coefficients from :func:`estimation_coefficients`.
    pair_levels:
        ``h`` per pair (``inf`` allowed).
    exact_iterations:
        ``I``, the number of exact iterations already performed.
    """
    if exact_iterations < 0:
        raise ValueError(f"exact_iterations must be >= 0, got {exact_iterations}")
    result = exact.copy()
    needs_estimate = pair_levels > exact_iterations
    if not needs_estimate.any():
        return result

    finite = needs_estimate & np.isfinite(pair_levels)
    infinite = needs_estimate & ~np.isfinite(pair_levels)

    one_minus_q = 1.0 - q
    if finite.any():
        steps = pair_levels[finite] - exact_iterations
        q_pow = _geometric_power(q[finite], steps)
        result[finite] = q_pow * exact[finite] + a[finite] * (1.0 - q_pow) / one_minus_q[finite]
    if infinite.any():
        # q < alpha*c < 1, so q^(n-I) -> 0 and the series sums to a/(1-q).
        result[infinite] = a[infinite] / one_minus_q[infinite]
    return np.clip(result, 0.0, 1.0)


def estimate_pair(
    exact_value: float,
    q: float,
    a: float,
    level: float,
    exact_iterations: int,
) -> float:
    """Scalar formula (2), convenient for tests and worked examples."""
    if level <= exact_iterations:
        return exact_value
    if math.isinf(level):
        return min(1.0, a / (1.0 - q))
    steps = level - exact_iterations
    if q <= 0.0:
        q_pow = 0.0
    else:
        exponent = steps * math.log(q)
        q_pow = math.exp(exponent) if exponent > _UNDERFLOW_EXPONENT else 0.0
    return min(1.0, q_pow * exact_value + a * (1.0 - q_pow) / (1.0 - q))
