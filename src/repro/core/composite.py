"""Composite event matching (Section 4).

One event in a log may correspond to several events in the other
(*composite events*).  Finding the optimal sets of non-overlapping
composites maximizing the average similarity is NP-hard (Theorem 3, by
reduction from maximum set packing), so the paper — and this module —
uses a greedy loop (Algorithm 2):

1. compute the singleton similarity of the two dependency graphs;
2. in each round, try every remaining candidate composite on either side:
   merge it into its log, rebuild the dependency graph, recompute the
   similarity, and remember the candidate with the highest average
   similarity;
3. accept the best candidate if it improves the average by more than the
   threshold ``delta``; otherwise stop.

Two accelerations from the paper are implemented:

* **Uc** (Proposition 4): when merging ``U`` into one graph, every pair
  whose row/column node has no real path from ``U`` keeps its similarity;
  those pairs are seeded as fixed values so the engine never re-iterates
  them.
* **Bd** (Section 4.3): candidate evaluations run under an average-
  similarity upper bound and abort as soon as they provably cannot beat
  the incumbent.

Candidate discovery follows the paper's convention: "grouping singleton
events that always appear consecutively, following the convention of SEQ
pattern in CEP" — with a relaxable adjacency confidence so the candidate
pool can be grown for the Figure 14 experiment.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from multiprocessing import resource_tracker, shared_memory
from typing import Callable

import numpy as np

from repro.core.bounds import SCREEN_MARGIN
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine, EMSResult, LabelMatrixCache
from repro.core.incremental import CandidateEvaluation, IncrementalSearchState
from repro.core.matrix import SimilarityMatrix
from repro.exceptions import BudgetExhausted
from repro.graph.dependency import DependencyGraph
from repro.graph.merge import composite_name, merge_run_in_log
from repro.graph.reachability import real_ancestors, real_descendants
from repro.logs.log import EventLog
from repro.logs.stats import activity_occurrence_counts, directly_follows_counts
from repro.obs import NULL_OBSERVER, Observer, Tracer, get_logger
from repro.runtime.budget import BudgetMeter, MatchBudget
from repro.runtime.checkpoint import (
    CheckpointManager,
    InterruptGuard,
    SearchSnapshot,
    search_content_key,
)
from repro.runtime.degrade import DegradationPolicy
from repro.runtime.evalcache import EvaluationCache, candidate_key, discovery_key
from repro.runtime.faults import KIND_INTERRUPT, FaultPlan
from repro.runtime.report import STAGE_EXACT, STAGE_PARTIAL, RuntimeReport
from repro.runtime.supervise import (
    QuarantineRecord,
    RetryPolicy,
    SupervisedPool,
    SupervisionStats,
    run_supervised,
)
from repro.similarity.labels import CompositeAwareSimilarity, LabelSimilarity, OpaqueSimilarity

_logger = get_logger(__name__)


# ----------------------------------------------------------------------
# Candidate discovery
# ----------------------------------------------------------------------
def discover_candidates(
    log: EventLog,
    min_confidence: float = 1.0,
    max_run_length: int = 4,
    max_candidates: int | None = None,
) -> list[tuple[str, ...]]:
    """Candidate composite events of *log* as ordered activity runs.

    A pair ``(a, b)`` is a *strong adjacency* when ``b`` follows ``a`` in
    at least ``min_confidence`` of ``a``'s occurrences and ``a`` precedes
    ``b`` in at least ``min_confidence`` of ``b``'s occurrences
    (``min_confidence = 1.0`` is the paper's "always appear
    consecutively").  Candidates are all runs of chained strong
    adjacencies, up to *max_run_length*, strongest first, optionally
    capped at *max_candidates*.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(f"min_confidence must be in (0, 1], got {min_confidence}")
    if max_run_length < 2:
        raise ValueError(f"max_run_length must be >= 2, got {max_run_length}")
    occurrences = activity_occurrence_counts(log)
    follows = directly_follows_counts(log)

    strong_next: dict[str, list[tuple[str, float]]] = {}
    for (first, second), count in follows.items():
        if first == second:
            continue
        confidence = min(count / occurrences[first], count / occurrences[second])
        if confidence >= min_confidence:
            strong_next.setdefault(first, []).append((second, confidence))
    for extensions in strong_next.values():
        extensions.sort(key=lambda item: (-item[1], item[0]))

    candidates: dict[tuple[str, ...], float] = {}

    def extend(run: tuple[str, ...], strength: float) -> None:
        if len(run) >= 2:
            existing = candidates.get(run)
            if existing is None or strength > existing:
                candidates[run] = strength
        if len(run) >= max_run_length:
            return
        for successor, confidence in strong_next.get(run[-1], ()):
            if successor in run:
                continue  # no cyclic composites
            extend(run + (successor,), min(strength, confidence))

    for first, extensions in strong_next.items():
        for second, confidence in extensions:
            extend((first, second), confidence)

    ordered = sorted(candidates, key=lambda run: (-candidates[run], len(run), run))
    if max_candidates is not None:
        ordered = ordered[:max_candidates]
    return ordered


# ----------------------------------------------------------------------
# Greedy matcher
# ----------------------------------------------------------------------
@dataclass(slots=True)
class CompositeStats:
    """Instrumentation of one greedy matching run (Figures 12-14).

    ``screen_checks`` counts candidates subjected to the estimation-bound
    screen, ``candidates_screened`` those it rejected before any graph was
    built; screened candidates are not counted in ``candidates_evaluated``.
    """

    rounds: int = 0
    candidates_evaluated: int = 0
    evaluations_aborted: int = 0
    pair_updates: int = 0
    pairs_fixed: int = 0
    screen_checks: int = 0
    candidates_screened: int = 0
    #: Supervision counters (zero on unsupervised runs): evaluations
    #: re-submitted after a failure, pools torn down and rebuilt, and
    #: poison candidates set aside so their round could complete.
    worker_retries: int = 0
    pool_respawns: int = 0
    candidates_quarantined: int = 0


@dataclass(frozen=True, slots=True)
class CompositeMatchResult:
    """Outcome of composite event matching.

    The matrix is over the *merged* node vocabularies; use the member maps
    to expand node names back to original activity sets.
    """

    matrix: SimilarityMatrix
    log_first: EventLog
    log_second: EventLog
    members_first: dict[str, frozenset[str]]
    members_second: dict[str, frozenset[str]]
    accepted_first: tuple[tuple[str, ...], ...]
    accepted_second: tuple[tuple[str, ...], ...]
    stats: CompositeStats = field(compare=False, default_factory=CompositeStats)
    #: How the run ended (degradation stage, budget spend); always set by
    #: :meth:`CompositeMatcher.match`, ``None`` only for hand-built results.
    runtime: RuntimeReport | None = field(compare=False, default=None)
    #: Poison candidates the supervisor set aside (empty on clean runs).
    quarantined: tuple[QuarantineRecord, ...] = field(compare=False, default=())

    @property
    def average(self) -> float:
        return self.matrix.average()


@dataclass(slots=True)
class _SideState:
    """One log's evolving merged state during the greedy loop."""

    log: EventLog
    members: dict[str, frozenset[str]]
    graph: DependencyGraph
    accepted: list[tuple[str, ...]]


# ----------------------------------------------------------------------
# Candidate evaluation core — module-level so worker processes can run it
# ----------------------------------------------------------------------
def _unchanged_pairs(
    merged_side: int,
    run: tuple[str, ...],
    graph_merged: DependencyGraph,
    graph_other: DependencyGraph,
    directional: dict[str, SimilarityMatrix] | None,
    use_unchanged: bool,
) -> tuple[dict[tuple[str, str], float] | None, dict[tuple[str, str], float] | None, int]:
    """Uc (Proposition 4): converged values the merge provably cannot change.

    *graph_merged* is the merged side's graph **before** the merge.
    Returns ``(fixed_forward, fixed_backward, pairs_fixed)``.
    """
    if not use_unchanged or directional is None:
        return None, None, 0
    new_name = composite_name(run)
    fixed: dict[str, dict[tuple[str, str], float]] = {}
    count = 0
    for direction, matrix in directional.items():
        if direction == "forward":
            affected = set(run) | real_descendants(graph_merged, run)
        else:
            affected = set(run) | real_ancestors(graph_merged, run)
        affected.add(new_name)
        unchanged = [node for node in graph_merged.nodes if node not in affected]
        pairs: dict[tuple[str, str], float] = {}
        for node in unchanged:
            for other_node in graph_other.nodes:
                if merged_side == 0:
                    pairs[(node, other_node)] = matrix.get(node, other_node)
                else:
                    pairs[(other_node, node)] = matrix.get(other_node, node)
        fixed[direction] = pairs
        count += len(pairs)
    return fixed.get("forward"), fixed.get("backward"), count


# ----------------------------------------------------------------------
# Shared-memory transport of a round's directional matrices
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class _SharedDirectional:
    """Handle to a round's directional matrices in one shared-memory block.

    Pickling a handle costs the node vocabularies and a few integers; the
    ``O(n1 * n2)`` float payload stays in the
    :mod:`multiprocessing.shared_memory` segment, written once by the
    parent and read directly by every worker of the round.  The parent
    owns the segment's lifetime: it closes and unlinks after the round's
    futures have all resolved — workers only ever attach, copy out, and
    detach.
    """

    name: str
    rows: tuple[str, ...]
    cols: tuple[str, ...]
    #: ``(direction, byte offset)`` per matrix; each is a
    #: ``(len(rows), len(cols))`` float64 block.
    offsets: tuple[tuple[str, int], ...]
    #: PID of the resource-tracker process serving the creator, so an
    #: attaching process can tell whether it shares that tracker (forked
    #: worker) or brought its own (spawned worker) — see
    #: :func:`_unpack_directional`.
    tracker_pid: int | None = None


def _tracker_pid() -> int | None:
    """PID of this process's resource-tracker process, if one is running."""
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    return getattr(tracker, "_pid", None)


def _pack_directional(
    directional: dict[str, SimilarityMatrix],
) -> tuple[_SharedDirectional | None, shared_memory.SharedMemory | None]:
    """Copy *directional* into a fresh shared-memory block.

    Returns ``(handle, block)``, or ``(None, None)`` when shared memory
    cannot be allocated (e.g. no writable segment directory) — callers
    then fall back to pickling the matrices as before.
    """
    reference = next(iter(directional.values()))
    rows, cols = reference.rows, reference.cols
    stride = len(rows) * len(cols) * np.dtype(np.float64).itemsize
    try:
        block = shared_memory.SharedMemory(
            create=True, size=max(1, stride * len(directional))
        )
    except (OSError, ValueError):
        return None, None
    offsets: list[tuple[str, int]] = []
    for position, direction in enumerate(sorted(directional)):
        offset = position * stride
        view = np.ndarray(
            (len(rows), len(cols)), dtype=np.float64, buffer=block.buf, offset=offset
        )
        view[:] = directional[direction].values
        offsets.append((direction, offset))
    handle = _SharedDirectional(
        block.name, rows, cols, tuple(offsets), _tracker_pid()
    )
    return handle, block


def _unpack_directional(handle: _SharedDirectional) -> dict[str, SimilarityMatrix]:
    """Worker side: copy the matrices out of the block, then detach."""
    block = shared_memory.SharedMemory(name=handle.name)
    try:
        # Attaching registered the segment with this process's resource
        # tracker (Python < 3.13 SharedMemory has no track=False).  If
        # that tracker is *not* the creator's — a spawned worker, or a
        # worker forked before the parent's tracker existed — it would
        # unlink the segment behind the owner's back at worker exit, so
        # undo the registration.  A forked worker sharing the creator's
        # tracker must keep its hands off: the register was a duplicate
        # no-op there, and unregistering would strip the creator's own
        # registration (its later unlink would then double-unregister).
        if _tracker_pid() != handle.tracker_pid:
            try:
                resource_tracker.unregister(block._name, "shared_memory")
            except Exception:
                pass
        shape = (len(handle.rows), len(handle.cols))
        directional: dict[str, SimilarityMatrix] = {}
        for direction, offset in handle.offsets:
            view = np.ndarray(shape, dtype=np.float64, buffer=block.buf, offset=offset)
            directional[direction] = SimilarityMatrix(
                handle.rows, handle.cols, view.copy()
            )
        return directional
    finally:
        block.close()


def _release_shared_block(block: shared_memory.SharedMemory | None) -> None:
    """Close and unlink a round's segment, tolerating a half-dead state.

    Runs on every exit path of a parallel round — normal completion,
    budget exhaustion, ``WorkerPoolError`` after a crashed pool — so a
    pool dying mid-round can no longer leak its ``/dev/shm`` segment.
    """
    if block is None:
        return
    try:
        block.close()
    except (OSError, BufferError):  # pragma: no cover - platform quirk
        pass
    try:
        block.unlink()
    except FileNotFoundError:  # pragma: no cover - already reclaimed
        pass


def _resolve_directional(
    directional: dict[str, SimilarityMatrix] | _SharedDirectional | None,
) -> dict[str, SimilarityMatrix] | None:
    """Whatever the parent shipped — handle or plain dict — as a dict."""
    if isinstance(directional, _SharedDirectional):
        return _unpack_directional(directional)
    return directional


#: Everything one candidate evaluation needs besides the candidate itself.
#: Picklable, so a round's context ships to worker processes once (via the
#: pool initializer) instead of once per candidate.
@dataclass(frozen=True, slots=True)
class _RoundContext:
    config: EMSConfig
    base_label: LabelSimilarity
    min_edge_frequency: float
    use_unchanged: bool
    use_bounds: bool
    #: Per side: (log, members, graph) — the round's pre-merge state.
    sides: tuple[tuple[EventLog, dict[str, frozenset[str]], DependencyGraph], ...]
    #: The previous round's matrices — a plain dict in-process, a
    #: :class:`_SharedDirectional` handle when shipped to pool workers.
    directional: dict[str, SimilarityMatrix] | _SharedDirectional | None
    #: When True, pool workers trace their evaluations into local spans
    #: and ship the fragments back for the parent to stitch (observers
    #: themselves never cross the process boundary).
    trace: bool = False
    #: Chaos script shipped to workers; ``None`` in production runs.
    faults: FaultPlan | None = None


def _evaluate_candidate(
    context: _RoundContext,
    side_index: int,
    run: tuple[str, ...],
    abort_below: float,
    label_cache: LabelMatrixCache | None = None,
    meter: BudgetMeter | None = None,
    observer: Observer | None = None,
) -> tuple[EMSResult | None, int]:
    """Similarity of the graphs after merging *run* on one side.

    Returns ``(outcome, pairs_fixed)``; *outcome* is ``None`` when the Bd
    bound proved the candidate cannot reach *abort_below*.
    """
    if observer is None:
        observer = NULL_OBSERVER
    log, members, graph = context.sides[side_index]
    other_log, other_members, other_graph = context.sides[1 - side_index]
    merged_log, merged_members = merge_run_in_log(log, run, members)
    with observer.span("graph.build", merged=True, run=list(run)):
        merged_graph = DependencyGraph.from_log(
            merged_log, min_frequency=context.min_edge_frequency, members=merged_members
        )
    if side_index == 0:
        members_pair = (merged_members, other_members)
        graphs = (merged_graph, other_graph)
    else:
        members_pair = (other_members, merged_members)
        graphs = (other_graph, merged_graph)
    if isinstance(context.base_label, OpaqueSimilarity) or context.config.alpha == 1.0:
        label: LabelSimilarity = context.base_label
    else:
        label = CompositeAwareSimilarity(context.base_label, *members_pair)
    engine = EMSEngine(context.config, label, label_cache, observer=observer)
    fixed_forward, fixed_backward, pairs_fixed = _unchanged_pairs(
        side_index, run, graph, other_graph, context.directional, context.use_unchanged
    )
    if context.use_bounds:
        outcome = engine.similarity_with_abort(
            graphs[0], graphs[1], abort_below, fixed_forward, fixed_backward,
            meter=meter,
        )
    else:
        outcome = engine.similarity(
            graphs[0], graphs[1], fixed_forward, fixed_backward, meter=meter
        )
    return outcome, pairs_fixed


#: Per-process state of pool workers: the round context plus a label cache
#: that persists across the round's candidates evaluated in this process.
_WORKER_STATE: tuple[_RoundContext, LabelMatrixCache] | None = None


def _init_worker(context: _RoundContext) -> None:
    global _WORKER_STATE
    if context.faults is not None:
        context.faults.fire("worker.init", in_worker=True)
    directional = _resolve_directional(context.directional)
    if directional is not context.directional:
        context = replace(context, directional=directional)
    _WORKER_STATE = (context, LabelMatrixCache(context.config.label_cache_entries))


def _worker_observer(trace: bool) -> Observer:
    """A per-task observer for a pool worker: local tracer or the null one.

    Workers never receive the parent's Observer (it is not picklable and
    its clock shares no epoch); when tracing is requested they record
    into a fresh local :class:`Tracer` and ship the span fragments back
    with the result for the parent to :meth:`~Tracer.adopt`.
    """
    return Observer(tracer=Tracer()) if trace else NULL_OBSERVER


def _pool_evaluate(
    task: tuple[int, tuple[str, ...], float, int, int]
) -> tuple[int, tuple[str, ...], EMSResult | None, int, list[dict], int]:
    assert _WORKER_STATE is not None, "pool worker used without _init_worker"
    context, label_cache = _WORKER_STATE
    side_index, run, abort_below, round_id, attempt = task
    if context.faults is not None:
        context.faults.fire(
            "evaluate", in_worker=True,
            round=round_id, side=side_index, run=run, attempt=attempt,
        )
    observer = _worker_observer(context.trace)
    with observer.span("candidate.evaluate", side=side_index, run=list(run)):
        outcome, pairs_fixed = _evaluate_candidate(
            context, side_index, run, abort_below, label_cache, observer=observer
        )
    fragments = observer.tracer.export_fragments() if observer.tracing else []
    return side_index, run, outcome, pairs_fixed, fragments, os.getpid()


#: Per-process state of *incremental* pool workers.  Unlike the cold pool
#: (re-created each round, full context per worker per round), this pool
#: persists for the whole match: workers receive the base side states once
#: at initialization and afterwards only the per-round delta — the list of
#: accepted runs, which each worker replays through its own
#: IncrementalSearchState, plus the round's directional matrices.
_INC_WORKER: tuple[IncrementalSearchState, dict] | None = None


def _init_incremental_worker(
    config: EMSConfig,
    base_label: LabelSimilarity,
    min_edge_frequency: float,
    use_unchanged: bool,
    use_bounds: bool,
    sides: tuple[tuple[EventLog, dict[str, frozenset[str]], DependencyGraph], ...],
    trace: bool = False,
    faults: FaultPlan | None = None,
) -> None:
    global _INC_WORKER
    if faults is not None:
        faults.fire("worker.init", in_worker=True)
    state = IncrementalSearchState(
        config, base_label, min_edge_frequency, use_unchanged, use_bounds,
        LabelMatrixCache(config.label_cache_entries),
    )
    state.reset(sides)
    _INC_WORKER = (
        state, {"applied": 0, "round": None, "trace": trace, "faults": faults}
    )


def _incremental_pool_evaluate(
    task: tuple[
        int,
        tuple[tuple[int, tuple[str, ...]], ...],
        dict[str, SimilarityMatrix] | _SharedDirectional | None,
        int,
        tuple[str, ...],
        float,
        int,
    ]
) -> tuple[int, tuple[str, ...], EMSResult | None, int, bool, list[dict], int]:
    """Evaluate one candidate in a persistent incremental worker.

    *task* carries ``(round_id, history, directional, side_index, run,
    abort_below, attempt)`` where *history* lists every merge accepted
    since pool creation.  The worker replays the suffix it has not
    applied yet — the per-round delta — then evaluates with warm starts
    and screening exactly like the serial loop.  *directional* is
    usually a :class:`_SharedDirectional` handle; the first task of a
    round copies the matrices out of shared memory, later tasks of the
    same round hit the ``progress["round"]`` cache and never reattach.
    Because every task carries the full history, a worker spawned by a
    supervisor *respawn* mid-match transparently catches up before
    evaluating — recovery needs no extra protocol.
    """
    assert _INC_WORKER is not None, "pool worker used without _init_incremental_worker"
    state, progress = _INC_WORKER
    round_id, history, directional, side_index, run, abort_below, attempt = task
    faults: FaultPlan | None = progress.get("faults")
    if faults is not None:
        faults.fire(
            "evaluate", in_worker=True,
            round=round_id, side=side_index, run=run, attempt=attempt,
        )
    while progress["applied"] < len(history):
        accepted_side, accepted_run = history[progress["applied"]]
        state.apply_accepted(accepted_side, accepted_run)
        progress["applied"] += 1
        progress["round"] = None  # force a begin_round with fresh matrices
    if progress["round"] != round_id:
        state.begin_round(_resolve_directional(directional))
        progress["round"] = round_id
    observer = _worker_observer(progress.get("trace", False))
    state.observer = observer
    with observer.span("candidate.evaluate", side=side_index, run=list(run)):
        evaluation = state.evaluate(side_index, run, abort_below)
    fragments = observer.tracer.export_fragments() if observer.tracing else []
    return (
        side_index, run, evaluation.outcome, evaluation.pairs_fixed,
        evaluation.screened, fragments, os.getpid(),
    )


class CompositeMatcher:
    """Greedy composite event matching (Algorithm 2).

    Parameters
    ----------
    config:
        EMS similarity configuration.
    label_similarity:
        Base label similarity; automatically wrapped so that composite
        nodes are scored through their member activities.
    delta:
        Minimum average-similarity improvement to accept a merge; the
        paper's Figure 13 sweeps this knob (moderate values work best).
    min_confidence, max_run_length, max_candidates:
        Candidate discovery knobs (see :func:`discover_candidates`).
    use_unchanged:
        Enable the Uc pruning (Proposition 4).
    use_bounds:
        Enable the Bd pruning (upper-bound abort, Section 4.3).
    min_edge_frequency:
        Minimum frequency control applied when (re)building graphs.
    budget:
        Optional :class:`~repro.runtime.MatchBudget` bounding the whole
        greedy search (wall clock and/or pair updates).  Checked between
        merge rounds and cooperatively inside every similarity
        evaluation.
    degradation:
        What to do when the budget runs out (default: the full
        exact → estimated → partial ladder).  With the ladder disabled,
        exhaustion raises :class:`~repro.exceptions.BudgetExhausted`.
    workers:
        Candidate evaluations per round run in this many worker processes
        (``0``/``1`` = in-process, serial).  Waves of *workers* candidates
        share the round's Bd incumbent bound, which is re-tightened
        between waves from the results received so far.  The round's
        directional similarity matrices travel through one
        ``multiprocessing.shared_memory`` block instead of being pickled
        per worker; only candidate indices and per-round deltas cross the
        process boundary (with a transparent pickling fallback where
        shared memory is unavailable).  A budgeted run (``budget`` set)
        always evaluates serially: cooperative cancellation needs the one
        shared meter, which worker processes cannot charge.
    retry:
        :class:`~repro.runtime.RetryPolicy` for supervised execution.
        Pool runs are always supervised (respawn on crash, quarantine on
        poison) under this policy or its defaults; the *serial* path is
        only supervised when ``retry`` or ``faults`` is explicitly set,
        so the default serial path stays zero-overhead.
    task_timeout:
        Per-candidate wall-clock timeout (seconds) in pool runs; a
        candidate exceeding it costs a pool respawn and a retry.
    faults:
        Deterministic :class:`~repro.runtime.FaultPlan` for chaos tests;
        shipped to workers through the pool initializers.
    checkpoints:
        Optional :class:`~repro.runtime.CheckpointManager`; accepted
        rounds are snapshotted at its cadence, keyed by the content hash
        of (log pair, config, knobs).
    resume:
        Load a matching checkpoint before searching (cold start when the
        directory holds none, or the snapshot fails verification).
    interrupt:
        Optional :class:`~repro.runtime.InterruptGuard` polled at round
        boundaries; when tripped, the search flushes a final checkpoint
        and returns the best-so-far result as a ``partial`` stage with
        reason ``"interrupted"``.
    eval_cache:
        Optional :class:`~repro.runtime.EvaluationCache`: candidate
        evaluations are memoized on disk, content-keyed by (log pair,
        config, knobs, accepted history, candidate, incumbent bound), and
        served on the next identical run instead of re-evaluating.
        Results stay bit-identical — a hit replays the exact stored
        evaluation, and every load is digest-verified with corruption
        degrading to a cold evaluation.  In pool rounds, hits are served
        *before* dispatch, so retry/quarantine supervision only ever sees
        real (miss) evaluations.  Disabled while a budget meter is active
        (a served hit charges no meter, which would skew cooperative
        cancellation).
    """

    def __init__(
        self,
        config: EMSConfig | None = None,
        label_similarity: LabelSimilarity | None = None,
        delta: float = 0.01,
        min_confidence: float = 1.0,
        max_run_length: int = 4,
        max_candidates: int | None = None,
        use_unchanged: bool = True,
        use_bounds: bool = True,
        min_edge_frequency: float = 0.0,
        budget: MatchBudget | None = None,
        degradation: DegradationPolicy | None = None,
        workers: int = 0,
        observer: Observer | None = None,
        retry: RetryPolicy | None = None,
        task_timeout: float | None = None,
        faults: FaultPlan | None = None,
        checkpoints: CheckpointManager | None = None,
        resume: bool = False,
        interrupt: InterruptGuard | None = None,
        eval_cache: EvaluationCache | None = None,
    ):
        if delta < 0.0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.config = config if config is not None else EMSConfig()
        self.base_label = (
            label_similarity if label_similarity is not None else OpaqueSimilarity()
        )
        self.delta = delta
        self.min_confidence = min_confidence
        self.max_run_length = max_run_length
        self.max_candidates = max_candidates
        self.use_unchanged = use_unchanged
        self.use_bounds = use_bounds
        self.min_edge_frequency = min_edge_frequency
        self.budget = budget
        self.degradation = degradation if degradation is not None else DegradationPolicy()
        self.workers = workers
        self.retry = retry
        self.task_timeout = task_timeout
        self.faults = faults
        self.checkpoints = checkpoints
        self.resume = resume
        self.interrupt = interrupt
        self.eval_cache = eval_cache
        #: One S^L cache per matching run, shared by every engine built
        #: for it; reset at the start of :meth:`match`.
        self._label_cache: LabelMatrixCache | None = None
        # Per-match working state, reset by :meth:`match`.
        self._content_key: str = ""
        self._supervision = SupervisionStats()
        self._quarantined: list[QuarantineRecord] = []
        self._accepted_history: list[tuple[int, tuple[str, ...]]] = []
        self._interrupted_by: str | None = None
        #: Per-side memo of the last discovery: ``side -> (log, runs)``.
        #: A side's log object is replaced only when a merge is accepted
        #: on it, so identity comparison is an exact staleness test.
        self._discovery_memo: dict[int, tuple[EventLog, list[tuple[str, ...]]]] = {}

    # ------------------------------------------------------------------
    def _engine(self, state_first: _SideState, state_second: _SideState) -> EMSEngine:
        if isinstance(self.base_label, OpaqueSimilarity) or self.config.alpha == 1.0:
            label: LabelSimilarity = self.base_label
        else:
            label = CompositeAwareSimilarity(
                self.base_label, state_first.members, state_second.members
            )
        return EMSEngine(self.config, label, self._label_cache, observer=self.observer)

    def _graph(self, log: EventLog, members: dict[str, frozenset[str]]) -> DependencyGraph:
        return DependencyGraph.from_log(
            log, min_frequency=self.min_edge_frequency, members=members
        )

    def _round_context(
        self, states: tuple[_SideState, _SideState], current: EMSResult
    ) -> _RoundContext:
        return _RoundContext(
            config=self.config,
            base_label=self.base_label,
            min_edge_frequency=self.min_edge_frequency,
            use_unchanged=self.use_unchanged,
            use_bounds=self.use_bounds,
            sides=tuple((state.log, state.members, state.graph) for state in states),
            directional=current.directional if self.use_unchanged else None,
            trace=self.observer.tracing,
            faults=self.faults,
        )

    # ------------------------------------------------------------------
    def match(self, log_first: EventLog, log_second: EventLog) -> CompositeMatchResult:
        """Run Algorithm 2 on the two logs.

        With a :class:`~repro.runtime.MatchBudget` configured, the run is
        resilient: the initial similarity degrades through the ladder of
        the configured :class:`~repro.runtime.DegradationPolicy`, and a
        budget exhausted mid-search truncates the greedy loop and returns
        the best merge state found so far — always a valid result,
        annotated through :attr:`CompositeMatchResult.runtime`.
        """
        obs = self.observer
        started = obs.clock()
        meter = self.budget.start(obs.clock) if self.budget is not None else None
        policy = self.degradation
        self._label_cache = LabelMatrixCache(self.config.label_cache_entries)
        self._supervision = SupervisionStats()
        self._quarantined = []
        self._accepted_history = []
        self._interrupted_by = None
        self._content_key = ""
        self._discovery_memo = {}
        snapshot: SearchSnapshot | None = None
        if self.checkpoints is not None or self.eval_cache is not None:
            self._content_key = search_content_key(
                log_first, log_second,
                dataclasses.asdict(self.config),
                {
                    "delta": self.delta,
                    "min_confidence": self.min_confidence,
                    "max_run_length": self.max_run_length,
                    "max_candidates": self.max_candidates,
                    "use_unchanged": self.use_unchanged,
                    "use_bounds": self.use_bounds,
                    "min_edge_frequency": self.min_edge_frequency,
                },
            )
            if self.checkpoints is not None and self.resume:
                snapshot = self.checkpoints.load(self._content_key)
        with obs.span("graph.build", activities=len(log_first.activities())):
            graph_first = self._graph(log_first, {})
        with obs.span("graph.build", activities=len(log_second.activities())):
            graph_second = self._graph(log_second, {})
        states = (
            _SideState(
                log_first,
                {a: frozenset({a}) for a in log_first.activities()},
                graph_first,
                [],
            ),
            _SideState(
                log_second,
                {a: frozenset({a}) for a in log_second.activities()},
                graph_second,
                [],
            ),
        )
        stats = CompositeStats()
        stage: str = STAGE_EXACT
        reason: str | None = None
        detail: str | None = None
        engine = self._engine(states[0], states[1])
        if meter is None:
            current = engine.similarity(states[0].graph, states[1].graph)
        else:
            current, stage, reason = engine.similarity_resilient(
                states[0].graph, states[1].graph, meter, policy
            )
            if stage != STAGE_EXACT:
                detail = "initial similarity degraded; composite search skipped"
        stats.pair_updates += current.pair_updates

        if stage == STAGE_EXACT:
            try:
                current = self._search(states, current, stats, meter, snapshot)
            except BudgetExhausted as error:
                if not policy.enabled:
                    raise
                # The matrix of the last accepted merge state is complete
                # and exact — only the candidate search was cut short.
                stage = STAGE_PARTIAL
                reason = error.reason
                detail = (
                    f"composite search truncated after {stats.rounds} round(s)"
                )
            else:
                if self._interrupted_by is not None:
                    # The search unwound cleanly at a round boundary (final
                    # checkpoint already flushed); the matrix is complete.
                    stage = STAGE_PARTIAL
                    reason = "interrupted"
                    detail = (
                        f"composite search interrupted by "
                        f"{self._interrupted_by} after {stats.rounds} round(s)"
                    )

        stats.worker_retries = self._supervision.retries
        stats.pool_respawns = self._supervision.respawns
        stats.candidates_quarantined = self._supervision.quarantined
        # stats misses the pair updates of an evaluation aborted by the
        # budget mid-flight; the meter saw every metered update.
        spent = stats.pair_updates if meter is None else meter.pair_updates_spent
        runtime = RuntimeReport(
            stage=stage,
            degraded=stage != STAGE_EXACT,
            reason=reason,
            detail=detail,
            iterations=current.iterations,
            pair_updates=spent,
            wall_time=obs.clock() - started,
            rounds=stats.rounds,
        )
        return CompositeMatchResult(
            matrix=current.matrix,
            log_first=states[0].log,
            log_second=states[1].log,
            members_first=dict(states[0].members),
            members_second=dict(states[1].members),
            accepted_first=tuple(states[0].accepted),
            accepted_second=tuple(states[1].accepted),
            stats=stats,
            runtime=runtime,
            quarantined=tuple(self._quarantined),
        )

    def _search(
        self,
        states: tuple[_SideState, _SideState],
        current: EMSResult,
        stats: CompositeStats,
        meter: BudgetMeter | None,
        snapshot: SearchSnapshot | None = None,
    ) -> EMSResult:
        """The greedy merge loop of Algorithm 2; returns the final result.

        With ``config.incremental`` (the default) candidate merges are
        evaluated through an :class:`IncrementalSearchState` — delta count
        patches, patched levels, warm-started fixpoints and estimation
        screening — producing the same trajectory and scores as the cold
        path.  ``config.incremental = False`` (the ``--no-incremental``
        escape hatch) restores the full-rebuild evaluation.

        A *snapshot* (from :class:`~repro.runtime.CheckpointManager`)
        fast-forwards the loop: its accepted-merge history is replayed
        through the same merge machinery, its stats are adopted, and the
        search continues from the round after the one it recorded —
        bit-identical to never having stopped.
        """
        incremental: IncrementalSearchState | None = None
        if self.config.incremental:
            incremental = IncrementalSearchState(
                self.config, self.base_label, self.min_edge_frequency,
                self.use_unchanged, self.use_bounds, self._label_cache,
                observer=self.observer,
            )
            incremental.reset(
                tuple((state.log, state.members, state.graph) for state in states)
            )
        if snapshot is not None:
            self._restore(snapshot, states, stats, incremental)
            current = snapshot.current
            if snapshot.complete:
                # The checkpointed search had already converged; nothing
                # left to run, and re-running the final barren round
                # would skew the counters away from the original run.
                return current
        obs = self.observer
        supervised: SupervisedPool | None = None
        pool_history: list[tuple[int, tuple[str, ...]]] = []
        supervise_serial = self.retry is not None or self.faults is not None
        try:
            while True:
                interrupted_by = self._interrupt_requested(stats.rounds + 1)
                if interrupted_by is not None:
                    self._flush_checkpoint(stats, current, force=True)
                    self._interrupted_by = interrupted_by
                    return current
                if meter is not None:
                    meter.check()
                stats.rounds += 1
                with obs.span(f"composite.round[{stats.rounds}]") as round_span:
                    obs.gauge("composite_round", stats.rounds)
                    current_average = current.matrix.average()
                    target = current_average + self.delta
                    best: tuple[int, tuple[str, ...], EMSResult] | None = None
                    best_average = current_average
                    if incremental is not None:
                        incremental.begin_round(
                            current.directional if self.use_unchanged else None
                        )

                    tasks: list[tuple[int, tuple[str, ...]]] = []
                    for side_index in (0, 1):
                        for run in self._discover(states, side_index):
                            tasks.append((side_index, run))
                    round_span.attributes["candidates"] = len(tasks)

                    if self.workers > 1 and meter is None and len(tasks) > 1:
                        if incremental is not None:
                            if supervised is None:
                                supervised = self._incremental_supervised_pool(
                                    states
                                )
                                pool_history = []
                            best, best_average = self._round_parallel_incremental(
                                tasks, current, stats, target, best_average,
                                supervised, tuple(pool_history),
                            )
                        else:
                            best, best_average = self._round_parallel(
                                tasks, states, current, stats, target, best_average
                            )
                    else:
                        best, best_average = self._round_serial(
                            tasks, incremental, states, current, stats,
                            target, best_average, meter, supervise_serial,
                        )

                    if best is None or best_average - current_average <= self.delta:
                        round_span.attributes["accepted"] = None
                        # Final snapshot: a finished search resumes
                        # instantly (replay straight to the last round)
                        # even when it never accepted a merge.
                        self._flush_checkpoint(
                            stats, current, force=True, complete=True
                        )
                        return current

                    side_index, run, outcome = best
                    round_span.attributes["accepted"] = list(run)
                    round_span.attributes["average"] = best_average
                    obs.count("composite_merges_accepted_total")
                    state = states[side_index]
                    if incremental is not None:
                        state.log, state.members, state.graph = (
                            incremental.apply_accepted(side_index, run)
                        )
                    else:
                        merged_log, merged_members = merge_run_in_log(
                            state.log, run, state.members
                        )
                        state.log = merged_log
                        state.members = merged_members
                        state.graph = self._graph(merged_log, merged_members)
                    state.accepted.append(run)
                    pool_history.append((side_index, run))
                    self._accepted_history.append((side_index, run))
                    current = outcome
                    self._flush_checkpoint(stats, current)
        finally:
            if supervised is not None:
                supervised.shutdown()

    # ------------------------------------------------------------------
    def _discover(
        self,
        states: tuple[_SideState, _SideState],
        side_index: int,
    ) -> list[tuple[str, ...]]:
        """One side's candidate runs: memoized, optionally persisted.

        :func:`discover_candidates` is a pure function of the side's
        current log, so two layers of reuse are exact by construction:

        * **in-memory** — a side whose log did not change since the last
          round (no merge accepted on it) reuses the previous round's
          list outright;
        * **on-disk** — with an evaluation cache attached, the list is
          persisted under (content key, accepted history, side), so a
          warm re-run skips the full-log statistics recomputation that
          dominates once every candidate evaluation is a cache hit.
        """
        log = states[side_index].log
        memo = self._discovery_memo.get(side_index)
        if memo is not None and memo[0] is log:
            return memo[1]
        runs: list[tuple[str, ...]] | None = None
        key: str | None = None
        if self.eval_cache is not None:
            key = discovery_key(
                self._content_key, tuple(self._accepted_history), side_index
            )
            cached = self.eval_cache.load(key)
            if cached is not None:
                runs = [tuple(run) for run in cached]
        if runs is None:
            runs = discover_candidates(
                log,
                min_confidence=self.min_confidence,
                max_run_length=self.max_run_length,
                max_candidates=self.max_candidates,
            )
            if key is not None:
                self.eval_cache.store(key, runs)
        self._discovery_memo[side_index] = (log, runs)
        return runs

    # ------------------------------------------------------------------
    def _round_serial(
        self,
        tasks: list[tuple[int, tuple[str, ...]]],
        incremental: IncrementalSearchState | None,
        states: tuple[_SideState, _SideState],
        current: EMSResult,
        stats: CompositeStats,
        target: float,
        best_average: float,
        meter: BudgetMeter | None,
        supervise_serial: bool,
    ) -> tuple[tuple[int, tuple[str, ...], EMSResult] | None, float]:
        """One round of candidates, evaluated in-process.

        With ``config.best_first`` (and the incremental path, no budget
        meter), candidates are evaluated in descending order of their
        sound estimation upper bound rather than discovery order, and the
        round cuts off as soon as the next bound cannot beat the
        incumbent — the bounds are sorted, so neither can any later one.
        The selected merge is bit-identical to the static order: the
        bound is sound (a cut candidate provably loses) and equal-average
        ties resolve to the lowest original position, which is exactly
        the candidate the static strict-improvement scan would have kept.
        """
        best: tuple[int, tuple[str, ...], EMSResult] | None = None
        best_position = -1
        order = list(range(len(tasks)))
        bounds: list[float] | None = None
        if (
            self.config.best_first
            and incremental is not None
            and meter is None
            and len(tasks) > 1
        ):
            bounds = []
            for side_index, run in tasks:
                stats.screen_checks += 1
                bounds.append(incremental.candidate_bound(side_index, run))
            order.sort(key=lambda position: (-bounds[position], position))
        for rank, position in enumerate(order):
            side_index, run = tasks[position]
            if bounds is not None and (
                bounds[position] < max(best_average, target) - SCREEN_MARGIN
            ):
                # Global cutoff: bounds are sorted descending, so every
                # remaining candidate is provably below the incumbent too.
                stats.candidates_screened += len(order) - rank
                break
            screen_bound = bounds[position] if bounds is not None else None
            if supervise_serial:
                outcome = self._evaluate_serial_supervised(
                    incremental, side_index, run, states, current, stats,
                    abort_below=max(best_average, target),
                    meter=meter, screen_bound=screen_bound,
                )
            elif incremental is not None:
                outcome = self._evaluate_incremental(
                    incremental, side_index, run, stats,
                    abort_below=max(best_average, target),
                    meter=meter, screen_bound=screen_bound,
                )
            else:
                outcome = self._evaluate(
                    side_index, run, states, current, stats,
                    abort_below=max(best_average, target),
                    meter=meter,
                )
            if outcome is None:
                continue
            average = outcome.matrix.average()
            if average > best_average or (
                bounds is not None
                and best is not None
                and average == best_average
                and position < best_position
            ):
                best_average = average
                best = (side_index, run, outcome)
                best_position = position
        return best, best_average

    # ------------------------------------------------------------------
    def _cached_evaluation(
        self,
        side_index: int,
        run: tuple[str, ...],
        abort_below: float,
    ) -> tuple[str | None, CandidateEvaluation | None]:
        """``(key, hit)`` from the persistent cache; ``(None, None)`` when off.

        The key covers the search content key (logs, config, knobs), the
        accepted-merge history that shaped the current side states, the
        candidate and the incumbent bound — everything the evaluation's
        result depends on.
        """
        if self.eval_cache is None:
            return None, None
        key = candidate_key(
            self._content_key, tuple(self._accepted_history),
            side_index, run, abort_below,
        )
        return key, self.eval_cache.load(key)

    def _evaluate(
        self,
        side_index: int,
        run: tuple[str, ...],
        states: tuple[_SideState, _SideState],
        current: EMSResult,
        stats: CompositeStats,
        abort_below: float,
        meter: BudgetMeter | None = None,
    ) -> EMSResult | None:
        """Similarity of the graphs after merging *run* on one side (serial)."""
        key = hit = None
        if meter is None:
            key, hit = self._cached_evaluation(side_index, run, abort_below)
        stats.candidates_evaluated += 1
        if hit is not None:
            outcome, pairs_fixed = hit.outcome, hit.pairs_fixed
        else:
            with self.observer.span(
                "candidate.evaluate", side=side_index, run=list(run)
            ):
                outcome, pairs_fixed = _evaluate_candidate(
                    self._round_context(states, current), side_index, run,
                    abort_below, self._label_cache, meter,
                    observer=self.observer,
                )
            if key is not None:
                self.eval_cache.store(
                    key,
                    CandidateEvaluation(
                        outcome=outcome, pairs_fixed=pairs_fixed, screened=False
                    ),
                )
        stats.pairs_fixed += pairs_fixed
        if outcome is None:
            stats.evaluations_aborted += 1
            return None
        stats.pair_updates += outcome.pair_updates
        return outcome

    def _evaluate_incremental(
        self,
        incremental: IncrementalSearchState,
        side_index: int,
        run: tuple[str, ...],
        stats: CompositeStats,
        abort_below: float,
        meter: BudgetMeter | None = None,
        screen_bound: float | None = None,
    ) -> EMSResult | None:
        """Incremental counterpart of :meth:`_evaluate` (same accounting).

        *screen_bound* is the candidate's precomputed bound on the
        best-first path; its screen check was already counted when the
        bound was computed, so only the static path counts one here.
        """
        screening_active = self.config.screening and meter is None
        key = hit = None
        if meter is None:
            key, hit = self._cached_evaluation(side_index, run, abort_below)
        if not screening_active:
            # Mirror the cold path: the candidate counts as evaluated even
            # if the budget meter raises mid-fixpoint.  (Screening cannot
            # raise — it is only active without a meter — so with screening
            # on the count can safely wait for the screen verdict.)
            stats.candidates_evaluated += 1
        elif screen_bound is None:
            stats.screen_checks += 1
        if hit is not None:
            evaluation = hit
        else:
            with self.observer.span(
                "candidate.evaluate", side=side_index, run=list(run)
            ):
                evaluation = incremental.evaluate(
                    side_index, run, abort_below, meter,
                    screen_bound=screen_bound,
                )
            if key is not None:
                self.eval_cache.store(key, evaluation)
        if evaluation.screened:
            stats.candidates_screened += 1
            return None
        if screening_active:
            stats.candidates_evaluated += 1
        stats.pairs_fixed += evaluation.pairs_fixed
        if evaluation.outcome is None:
            stats.evaluations_aborted += 1
            return None
        stats.pair_updates += evaluation.outcome.pair_updates
        return evaluation.outcome

    def _evaluate_serial_supervised(
        self,
        incremental: IncrementalSearchState | None,
        side_index: int,
        run: tuple[str, ...],
        states: tuple[_SideState, _SideState],
        current: EMSResult,
        stats: CompositeStats,
        abort_below: float,
        meter: BudgetMeter | None = None,
        screen_bound: float | None = None,
    ) -> EMSResult | None:
        """Serial evaluation under :func:`~repro.runtime.run_supervised`.

        Active only when a retry policy or fault plan was configured, so
        the default serial path pays nothing.  Transient failures are
        retried (same candidate, same ``abort_below`` bound — the
        trajectory stays deterministic); deterministic exceptions
        quarantine the candidate and the round moves on.  Faults fire
        before any cache lookup, so a poison candidate is quarantined —
        never silently served from the evaluation cache.
        """
        def call(attempt: int) -> EMSResult | None:
            if self.faults is not None:
                self.faults.fire(
                    "evaluate", round=stats.rounds,
                    side=side_index, run=run, attempt=attempt,
                )
            if incremental is not None:
                return self._evaluate_incremental(
                    incremental, side_index, run, stats, abort_below, meter,
                    screen_bound=screen_bound,
                )
            return self._evaluate(
                side_index, run, states, current, stats, abort_below, meter
            )

        value, record = run_supervised(
            call,
            policy=self.retry if self.retry is not None else RetryPolicy(),
            describe=lambda: (side_index, run),
            round=stats.rounds,
            config_hash=self._content_key,
            observer=self.observer,
            stats=self._supervision,
        )
        if record is not None:
            self._quarantined.append(record)
            return None
        return value

    # ------------------------------------------------------------------
    # Durability plumbing: restore, interrupts, checkpoints
    # ------------------------------------------------------------------
    def _restore(
        self,
        snapshot: SearchSnapshot,
        states: tuple[_SideState, _SideState],
        stats: CompositeStats,
        incremental: IncrementalSearchState | None,
    ) -> None:
        """Fast-forward *states*/*stats* to a checkpointed round boundary."""
        history = tuple(
            (side_index, tuple(run)) for side_index, run in snapshot.history
        )
        if incremental is not None:
            finals = incremental.fast_forward(history)
            for side_index, (log, members, graph) in enumerate(finals):
                state = states[side_index]
                state.log, state.members, state.graph = log, members, graph
        else:
            for side_index, run in history:
                state = states[side_index]
                merged_log, merged_members = merge_run_in_log(
                    state.log, run, state.members
                )
                state.log = merged_log
                state.members = merged_members
                state.graph = self._graph(merged_log, merged_members)
        for side_index, run in history:
            states[side_index].accepted.append(run)
            self._accepted_history.append((side_index, run))
        # The snapshot's counters already include everything up to its
        # round — including the initial similarity this run recomputed —
        # so adopt them wholesale for bit-identical final stats.
        for spec in dataclasses.fields(CompositeStats):
            setattr(stats, spec.name, getattr(snapshot.stats, spec.name))
        self.observer.info(
            "resumed composite search at round %d (%d accepted merge(s))",
            snapshot.rounds, len(history),
        )

    def _interrupt_requested(self, next_round: int) -> str | None:
        """Who is asking the search to stop before *next_round*, if anyone."""
        if self.interrupt is not None and self.interrupt.interrupted:
            return self.interrupt.signal_name or "signal"
        if self.faults is not None:
            spec = self.faults.match("search.round", round=next_round)
            if spec is not None and spec.kind == KIND_INTERRUPT:
                name = f"fault:search.round[{next_round}]"
                if self.interrupt is not None:
                    self.interrupt.trip(name)
                return name
        return None

    def _flush_checkpoint(
        self, stats: CompositeStats, current: EMSResult,
        force: bool = False, complete: bool = False,
    ) -> None:
        """Snapshot the search if a checkpoint is due (or *force*)."""
        if self.checkpoints is None:
            return
        if not force and not self.checkpoints.due(stats.rounds):
            return
        snapshot = SearchSnapshot(
            key=self._content_key,
            rounds=stats.rounds,
            history=tuple(self._accepted_history),
            stats=dataclasses.replace(stats),
            current=current,
            complete=complete,
        )
        try:
            self.checkpoints.save(snapshot)
        except OSError as error:
            # A full disk must degrade durability, not correctness.
            _logger.warning("checkpoint write failed: %s", error)

    # ------------------------------------------------------------------
    # Worker pools
    # ------------------------------------------------------------------
    def _incremental_supervised_pool(
        self, states: tuple[_SideState, _SideState]
    ) -> SupervisedPool:
        """A match-lifetime supervised pool seeded with the current states.

        The factory freezes its ``initargs`` now: a supervisor *respawn*
        later in the match rebuilds workers from these same base states,
        and the full accepted-run history carried by every task replays
        them forward — so a respawned worker is indistinguishable from
        an original one.
        """
        workers = self.workers
        initargs = (
            self.config, self.base_label, self.min_edge_frequency,
            self.use_unchanged, self.use_bounds,
            tuple((state.log, state.members, state.graph) for state in states),
            self.observer.tracing,
            self.faults,
        )

        def factory() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_incremental_worker,
                initargs=initargs,
            )

        pool = SupervisedPool(
            factory,
            _incremental_pool_evaluate,
            payload=lambda task, attempt: task + (attempt,),
            describe=lambda task: (task[3], task[4]),
            policy=self.retry,
            task_timeout=self.task_timeout,
            observer=self.observer,
            config_hash=self._content_key,
        )
        pool.stats = self._supervision
        return pool

    def _cold_supervised_pool(self, context: _RoundContext) -> SupervisedPool:
        """A round-lifetime supervised pool for the full-rebuild path."""
        workers = self.workers

        def factory() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker, initargs=(context,)
            )

        pool = SupervisedPool(
            factory,
            _pool_evaluate,
            payload=lambda task, attempt: task + (attempt,),
            describe=lambda task: (task[0], task[1]),
            policy=self.retry,
            task_timeout=self.task_timeout,
            observer=self.observer,
            config_hash=self._content_key,
        )
        pool.stats = self._supervision
        return pool

    def _note_shared_memory_fallback(self) -> None:
        """Surface a shared-memory → pickling degradation (satellite fix).

        Historically this fallback was silent; now it is logged through
        the bridge and counted so operators can see rounds paying the
        per-worker pickling cost.
        """
        _logger.warning(
            "shared-memory transport unavailable; pickling the round's "
            "directional matrices to every worker instead"
        )
        self.observer.count(
            "workers_shared_memory_fallbacks_total",
            help="rounds whose directional matrices were pickled because "
            "shared memory was unavailable",
        )

    def _wave_cache_hits(
        self,
        wave: list[tuple[int, tuple[str, ...]]],
        bound: float,
    ) -> tuple[dict[int, CandidateEvaluation], dict[int, str]]:
        """Serve a wave's persistent-cache hits before dispatching it.

        Returns ``(hits by wave index, candidate keys of the misses)``;
        only the misses are submitted to the pool, so supervision
        (retries, quarantine) never applies to a served hit — and a
        fully cached wave never touches the pool at all.
        """
        hits: dict[int, CandidateEvaluation] = {}
        keys: dict[int, str] = {}
        if self.eval_cache is None:
            return hits, keys
        history = tuple(self._accepted_history)
        for index, (side_index, run) in enumerate(wave):
            key = candidate_key(
                self._content_key, history, side_index, run, bound
            )
            cached = self.eval_cache.load(key)
            if cached is not None:
                hits[index] = cached
            else:
                keys[index] = key
        return hits, keys

    def _account_candidate(
        self,
        stats: CompositeStats,
        side_index: int,
        run: tuple[str, ...],
        evaluation: CandidateEvaluation,
        best: tuple[int, tuple[str, ...], EMSResult] | None,
        best_average: float,
        count_screen: bool,
    ) -> tuple[tuple[int, tuple[str, ...], EMSResult] | None, float]:
        """Fold one wave evaluation — fresh or cached — into the round state."""
        if count_screen:
            stats.screen_checks += 1
        if evaluation.screened:
            stats.candidates_screened += 1
            return best, best_average
        stats.candidates_evaluated += 1
        stats.pairs_fixed += evaluation.pairs_fixed
        if evaluation.outcome is None:
            stats.evaluations_aborted += 1
            return best, best_average
        stats.pair_updates += evaluation.outcome.pair_updates
        average = evaluation.outcome.matrix.average()
        if average > best_average:
            return (side_index, run, evaluation.outcome), average
        return best, best_average

    def _round_parallel_incremental(
        self,
        tasks: list[tuple[int, tuple[str, ...]]],
        current: EMSResult,
        stats: CompositeStats,
        target: float,
        best_average: float,
        supervised: SupervisedPool,
        history: tuple[tuple[int, tuple[str, ...]], ...],
    ) -> tuple[tuple[int, tuple[str, ...], EMSResult] | None, float]:
        """One round of candidates on the persistent incremental pool.

        Tasks carry only the per-round delta — the accepted-run *history*
        (replayed by workers that have not caught up) and the round's
        directional matrices — instead of the full round context the cold
        pool re-pickles every round.  The matrices themselves travel
        through one shared-memory block per round (see
        :class:`_SharedDirectional`); each task pickles only the handle.
        The supervisor returns wave outcomes in submission order, which
        matches the serial candidate order, so the selected best
        candidate is the one the serial loop would pick; quarantined
        candidates are simply absent from the reduction, exactly as if
        they had been screened out.
        """
        obs = self.observer
        directional = current.directional if self.use_unchanged else None
        handle = block = None
        if directional:
            handle, block = _pack_directional(directional)
            if handle is None:
                self._note_shared_memory_fallback()
        payload = handle if handle is not None else directional
        round_id = stats.rounds
        best: tuple[int, tuple[str, ...], EMSResult] | None = None
        try:
            with obs.span(
                "workers.dispatch",
                workers=self.workers,
                tasks=len(tasks),
                incremental=True,
                shared_memory=handle is not None,
            ):
                for start in range(0, len(tasks), self.workers):
                    wave = tasks[start:start + self.workers]
                    bound = max(best_average, target)
                    hits, miss_keys = self._wave_cache_hits(wave, bound)
                    pending = [i for i in range(len(wave)) if i not in hits]
                    outcomes = supervised.run_wave(
                        [
                            (round_id, history, payload, *wave[i], bound)
                            for i in pending
                        ],
                        round=round_id,
                    )
                    by_index = dict(zip(pending, outcomes))
                    for index in range(len(wave)):
                        side_index, run = wave[index]
                        evaluation = hits.get(index)
                        if evaluation is None:
                            entry = by_index[index]
                            if entry.quarantined is not None:
                                self._quarantined.append(entry.quarantined)
                                continue
                            (
                                side_index, run, outcome, pairs_fixed,
                                screened, fragments, worker_pid,
                            ) = entry.value
                            if fragments and obs.tracing:
                                obs.tracer.adopt(fragments, tid=worker_pid)
                            evaluation = CandidateEvaluation(
                                outcome=outcome, pairs_fixed=pairs_fixed,
                                screened=screened,
                            )
                            key = miss_keys.get(index)
                            if key is not None:
                                self.eval_cache.store(key, evaluation)
                        best, best_average = self._account_candidate(
                            stats, side_index, run, evaluation,
                            best, best_average,
                            count_screen=self.config.screening,
                        )
        finally:
            # The segment must outlive any mid-round pool respawn (new
            # workers re-attach to evaluate retried candidates), so it is
            # only reclaimed here, when the round is over — including on
            # the WorkerPoolError path, which is what used to leak it.
            _release_shared_block(block)
        return best, best_average

    def _round_parallel(
        self,
        tasks: list[tuple[int, tuple[str, ...]]],
        states: tuple[_SideState, _SideState],
        current: EMSResult,
        stats: CompositeStats,
        target: float,
        best_average: float,
    ) -> tuple[tuple[int, tuple[str, ...], EMSResult] | None, float]:
        """Evaluate one round's candidates in a process pool.

        Candidates go out in waves of ``workers``; every wave shares the
        tightest Bd incumbent bound known when it is submitted, so later
        waves abort hopeless candidates as aggressively as the serial
        loop would.  The round context ships once per worker via the pool
        initializer, with the directional matrices riding in one
        shared-memory block (see :class:`_SharedDirectional`) so the
        initializer payload pickles only a handle.
        """
        obs = self.observer
        context = self._round_context(states, current)
        handle = block = None
        if context.directional:
            handle, block = _pack_directional(context.directional)
            if handle is not None:
                context = replace(context, directional=handle)
            else:
                self._note_shared_memory_fallback()
        round_id = stats.rounds
        best: tuple[int, tuple[str, ...], EMSResult] | None = None
        supervised = self._cold_supervised_pool(context)
        try:
            with obs.span(
                "workers.dispatch",
                workers=self.workers,
                tasks=len(tasks),
                incremental=False,
                shared_memory=handle is not None,
            ):
                for start in range(0, len(tasks), self.workers):
                    wave = tasks[start:start + self.workers]
                    bound = max(best_average, target)
                    hits, miss_keys = self._wave_cache_hits(wave, bound)
                    pending = [i for i in range(len(wave)) if i not in hits]
                    outcomes = supervised.run_wave(
                        [
                            (*wave[i], bound, round_id)
                            for i in pending
                        ],
                        round=round_id,
                    )
                    by_index = dict(zip(pending, outcomes))
                    for index in range(len(wave)):
                        side_index, run = wave[index]
                        evaluation = hits.get(index)
                        if evaluation is None:
                            entry = by_index[index]
                            if entry.quarantined is not None:
                                self._quarantined.append(entry.quarantined)
                                continue
                            (
                                side_index, run, outcome, pairs_fixed,
                                fragments, worker_pid,
                            ) = entry.value
                            if fragments and obs.tracing:
                                obs.tracer.adopt(fragments, tid=worker_pid)
                            evaluation = CandidateEvaluation(
                                outcome=outcome, pairs_fixed=pairs_fixed,
                                screened=False,
                            )
                            key = miss_keys.get(index)
                            if key is not None:
                                self.eval_cache.store(key, evaluation)
                        best, best_average = self._account_candidate(
                            stats, side_index, run, evaluation,
                            best, best_average, count_screen=False,
                        )
        finally:
            # Shut the round's pool down before reclaiming the segment:
            # workers (including respawned ones) may attach to it right
            # up until they are joined.
            supervised.shutdown()
            _release_shared_block(block)
        return best, best_average
