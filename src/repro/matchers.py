"""High-level matcher adapters: the library's main entry points.

These classes tie the layers together — logs to dependency graphs to
similarities to correspondences — behind the uniform
:class:`repro.baselines.common.EventMatcher` interface shared with the
baselines, so the experiment harness can treat every method identically.

* :class:`EMSMatcher` — singleton (1:1) matching with the paper's EMS
  similarity; set ``estimation_iterations`` for the ``EMS+es`` variant.
* :class:`EMSCompositeMatcher` — m:n matching via the greedy composite
  loop with the Uc/Bd prunings.
"""

from __future__ import annotations

from typing import Mapping

from repro.baselines.common import (
    Evaluation,
    EventMatcher,
    MatchOutcome,
    identity_members,
    pairs_to_outcome,
)
from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine, EMSResult, WarmStart
from repro.graph.dependency import DependencyGraph
from repro.logs.log import EventLog
from repro.logs.stats import LogStatistics
from repro.matching.assignment import max_weight_assignment
from repro.matching.evaluation import Correspondence
from repro.obs import NULL_OBSERVER, Observer
from repro.runtime.budget import MatchBudget
from repro.runtime.checkpoint import CheckpointManager, InterruptGuard
from repro.runtime.degrade import DegradationPolicy
from repro.runtime.evalcache import EvaluationCache
from repro.runtime.faults import FaultPlan
from repro.runtime.supervise import RetryPolicy
from repro.runtime.report import STAGE_EXACT, RuntimeReport
from repro.similarity.labels import (
    CompositeAwareSimilarity,
    LabelSimilarity,
    OpaqueSimilarity,
)


class EMSMatcher(EventMatcher):
    """1:1 event matching with the EMS similarity.

    Parameters
    ----------
    config:
        The :class:`EMSConfig`; pass ``estimation_iterations=I`` for the
        estimated variant (``EMS+es``).
    label_similarity:
        The ``S^L`` blended in via ``1 - alpha``.
    threshold:
        Selected pairs must exceed this similarity to be reported.
    min_edge_frequency:
        Minimum-frequency edge filtering when building graphs (Figure 7).
    budget:
        Optional :class:`~repro.runtime.MatchBudget` (wall-clock deadline
        and/or pair-update cap) cooperatively enforced inside the
        fixpoint iteration.
    degradation:
        The :class:`~repro.runtime.DegradationPolicy` applied when the
        budget runs out; defaults to the full exact → estimated → partial
        ladder.  Results always carry a
        :class:`~repro.runtime.RuntimeReport` via ``outcome.runtime``.
    """

    name = "EMS"

    def __init__(
        self,
        config: EMSConfig | None = None,
        label_similarity: LabelSimilarity | None = None,
        threshold: float = 0.0,
        min_edge_frequency: float = 0.0,
        name: str | None = None,
        budget: MatchBudget | None = None,
        degradation: DegradationPolicy | None = None,
        observer: Observer | None = None,
    ):
        self.config = config if config is not None else EMSConfig()
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.label_similarity = (
            label_similarity if label_similarity is not None else OpaqueSimilarity()
        )
        self.threshold = threshold
        self.min_edge_frequency = min_edge_frequency
        self.budget = budget
        self.degradation = degradation if degradation is not None else DegradationPolicy()
        if name is not None:
            self.name = name
        elif self.config.estimation_iterations is not None:
            self.name = "EMS+es"

    def evaluate(
        self,
        log_first: EventLog,
        log_second: EventLog,
        members_first: Mapping[str, frozenset[str]],
        members_second: Mapping[str, frozenset[str]],
    ) -> Evaluation:
        evaluation, _ = self._evaluate_with_runtime(
            log_first, log_second, members_first, members_second
        )
        return evaluation

    def match(self, log_first: EventLog, log_second: EventLog) -> MatchOutcome:
        members_first = identity_members(log_first)
        members_second = identity_members(log_second)
        evaluation, runtime = self._evaluate_with_runtime(
            log_first, log_second, members_first, members_second
        )
        return pairs_to_outcome(evaluation, members_first, members_second, runtime)

    def match_statistics(
        self, stats_first: LogStatistics, stats_second: LogStatistics,
        name_first: str = "log_first", name_second: str = "log_second",
    ) -> MatchOutcome:
        """Match from precomputed :class:`LogStatistics`, logs unseen.

        The out-of-core entry point: the sharded/store-backed ingestion
        pipeline (:mod:`repro.store`) reduces each input to statistics
        without ever materializing an :class:`EventLog`, and this method
        completes the matching from there.  Statistics determine the
        dependency graphs exactly (Definition 1), so the outcome is
        bit-identical to :meth:`match` on the equivalent logs.
        """
        obs = self.observer
        with obs.span("graph.build", activities=len(stats_first.activity_frequencies)):
            graph_first = DependencyGraph.from_statistics(
                stats_first, name=name_first,
                min_frequency=self.min_edge_frequency,
            )
        with obs.span("graph.build", activities=len(stats_second.activity_frequencies)):
            graph_second = DependencyGraph.from_statistics(
                stats_second, name=name_second,
                min_frequency=self.min_edge_frequency,
            )
        return self.match_graphs(graph_first, graph_second)

    def match_graphs(
        self,
        graph_first: DependencyGraph,
        graph_second: DependencyGraph,
        *,
        fixed_forward: "WarmStart | None" = None,
        fixed_backward: "WarmStart | None" = None,
    ) -> MatchOutcome:
        """Match two already-built dependency graphs (1:1 events).

        ``fixed_forward`` / ``fixed_backward`` optionally warm-start the
        directional fixpoints from carried values (Proposition 4); the
        match store's partial-hit path uses this to re-iterate only the
        pairs an appended tail could have changed.
        """
        outcome, _, _ = self.match_graphs_detailed(
            graph_first, graph_second,
            fixed_forward=fixed_forward, fixed_backward=fixed_backward,
        )
        return outcome

    def match_graphs_detailed(
        self,
        graph_first: DependencyGraph,
        graph_second: DependencyGraph,
        *,
        fixed_forward: "WarmStart | None" = None,
        fixed_backward: "WarmStart | None" = None,
    ) -> tuple[MatchOutcome, EMSResult, RuntimeReport]:
        """Like :meth:`match_graphs`, but also expose the raw result.

        The match store needs the :class:`EMSResult` (directional
        matrices, convergence flags) to decide whether the computation is
        persistable, and the :class:`RuntimeReport` to gate on the stage.
        """
        members_first = {node: frozenset({node}) for node in graph_first.nodes}
        members_second = {node: frozenset({node}) for node in graph_second.nodes}
        evaluation, runtime, result = self._evaluate_graphs(
            graph_first, graph_second, members_first, members_second,
            started=self.observer.clock(),
            fixed_forward=fixed_forward, fixed_backward=fixed_backward,
        )
        outcome = pairs_to_outcome(evaluation, members_first, members_second, runtime)
        return outcome, result, runtime

    def outcome_from_result(self, result: EMSResult) -> MatchOutcome:
        """Complete a match from an already-computed :class:`EMSResult`.

        The store-hit path: the similarity matrix was persisted by an
        earlier run, so only the assignment and threshold filtering run —
        the exact tail of :meth:`match_graphs`, on the exact same values,
        producing a bit-identical outcome without graphs or fixpoint.
        ``iterations`` / ``pair_updates`` report the stored computation.
        """
        matrix = result.matrix
        members_first = {node: frozenset({node}) for node in matrix.rows}
        members_second = {node: frozenset({node}) for node in matrix.cols}
        evaluation, runtime = self._finish(
            result, STAGE_EXACT, None, self.observer.clock()
        )
        return pairs_to_outcome(evaluation, members_first, members_second, runtime)

    def _evaluate_with_runtime(
        self,
        log_first: EventLog,
        log_second: EventLog,
        members_first: Mapping[str, frozenset[str]],
        members_second: Mapping[str, frozenset[str]],
    ) -> tuple[Evaluation, RuntimeReport]:
        obs = self.observer
        started = obs.clock()
        with obs.span("graph.build", activities=len(log_first.activities())):
            graph_first = DependencyGraph.from_log(
                log_first, min_frequency=self.min_edge_frequency, members=members_first
            )
        with obs.span("graph.build", activities=len(log_second.activities())):
            graph_second = DependencyGraph.from_log(
                log_second, min_frequency=self.min_edge_frequency, members=members_second
            )
        evaluation, runtime, _ = self._evaluate_graphs(
            graph_first, graph_second, members_first, members_second,
            started=started,
        )
        return evaluation, runtime

    def _evaluate_graphs(
        self,
        graph_first: DependencyGraph,
        graph_second: DependencyGraph,
        members_first: Mapping[str, frozenset[str]],
        members_second: Mapping[str, frozenset[str]],
        *,
        started: float,
        fixed_forward: "WarmStart | None" = None,
        fixed_backward: "WarmStart | None" = None,
    ) -> tuple[Evaluation, RuntimeReport, EMSResult]:
        obs = self.observer
        label: LabelSimilarity = self.label_similarity
        if not isinstance(label, OpaqueSimilarity) and self.config.alpha < 1.0:
            label = CompositeAwareSimilarity(
                self.label_similarity, dict(members_first), dict(members_second)
            )
        engine = EMSEngine(self.config, label, observer=obs)
        if self.budget is None:
            result = engine.similarity(
                graph_first, graph_second,
                fixed_forward=fixed_forward, fixed_backward=fixed_backward,
            )
            stage, reason = STAGE_EXACT, None
        else:
            result, stage, reason = engine.similarity_resilient(
                graph_first, graph_second, self.budget.start(obs.clock), self.degradation,
                fixed_forward=fixed_forward, fixed_backward=fixed_backward,
            )
        evaluation, runtime = self._finish(result, stage, reason, started)
        return evaluation, runtime, result

    def _finish(
        self,
        result: EMSResult,
        stage: str,
        reason: str | None,
        started: float,
    ) -> tuple[Evaluation, RuntimeReport]:
        """Assignment + threshold filtering: the shared match tail.

        Both the live fixpoint path and the store-served path end here,
        so a served matrix goes through the exact operations a computed
        one does — bit-identity of the outcome reduces to bit-identity of
        the matrix.
        """
        obs = self.observer
        matrix = result.matrix
        values = matrix.values
        with obs.span("match.assign", rows=len(matrix.rows), cols=len(matrix.cols)):
            assignment = max_weight_assignment(values)
        pairs = tuple(
            (matrix.rows[i], matrix.cols[j])
            for i, j in assignment
            if values[i, j] > self.threshold
        )
        runtime = RuntimeReport(
            stage=stage,
            degraded=stage != STAGE_EXACT,
            reason=reason,
            iterations=result.iterations,
            pair_updates=result.pair_updates,
            wall_time=obs.clock() - started,
        )
        evaluation = Evaluation(
            objective=matrix.average(),
            pairs=pairs,
            diagnostics={
                "iterations": float(result.iterations),
                "pair_updates": float(result.pair_updates),
            },
        )
        return evaluation, runtime


class EMSCompositeMatcher(EventMatcher):
    """m:n event matching: greedy composite merging plus EMS similarity.

    ``workers > 1`` evaluates each greedy round's candidate composites in
    that many worker processes (see :class:`CompositeMatcher`); budgeted
    runs stay serial so cooperative cancellation keeps one shared meter.
    """

    name = "EMS"

    def __init__(
        self,
        config: EMSConfig | None = None,
        label_similarity: LabelSimilarity | None = None,
        threshold: float = 0.0,
        delta: float = 0.01,
        min_confidence: float = 1.0,
        max_run_length: int = 4,
        max_candidates: int | None = None,
        use_unchanged: bool = True,
        use_bounds: bool = True,
        min_edge_frequency: float = 0.0,
        name: str | None = None,
        budget: MatchBudget | None = None,
        degradation: DegradationPolicy | None = None,
        workers: int = 0,
        observer: Observer | None = None,
        retry: RetryPolicy | None = None,
        task_timeout: float | None = None,
        faults: FaultPlan | None = None,
        checkpoints: CheckpointManager | None = None,
        resume: bool = False,
        interrupt: InterruptGuard | None = None,
        eval_cache: EvaluationCache | None = None,
    ):
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.matcher = CompositeMatcher(
            config=config,
            label_similarity=label_similarity,
            delta=delta,
            min_confidence=min_confidence,
            max_run_length=max_run_length,
            max_candidates=max_candidates,
            use_unchanged=use_unchanged,
            use_bounds=use_bounds,
            min_edge_frequency=min_edge_frequency,
            budget=budget,
            degradation=degradation,
            workers=workers,
            observer=observer,
            retry=retry,
            task_timeout=task_timeout,
            faults=faults,
            checkpoints=checkpoints,
            resume=resume,
            interrupt=interrupt,
            eval_cache=eval_cache,
        )
        self.threshold = threshold
        self._singleton = EMSMatcher(
            config=config,
            label_similarity=label_similarity,
            threshold=threshold,
            min_edge_frequency=min_edge_frequency,
            observer=observer,
        )
        if name is not None:
            self.name = name
        elif self.matcher.config.estimation_iterations is not None:
            self.name = "EMS+es"

    def evaluate(self, log_first, log_second, members_first, members_second) -> Evaluation:
        return self._singleton.evaluate(
            log_first, log_second, members_first, members_second
        )

    def match(self, log_first: EventLog, log_second: EventLog) -> MatchOutcome:
        result = self.matcher.match(log_first, log_second)
        matrix = result.matrix
        values = matrix.values
        with self.observer.span(
            "match.assign", rows=len(matrix.rows), cols=len(matrix.cols)
        ):
            assignment = max_weight_assignment(values)
        correspondences = tuple(
            Correspondence(
                result.members_first[matrix.rows[i]],
                result.members_second[matrix.cols[j]],
            )
            for i, j in assignment
            if values[i, j] > self.threshold
        )
        stats = result.stats
        return MatchOutcome(
            correspondences,
            objective=matrix.average(),
            diagnostics={
                "rounds": float(stats.rounds),
                "candidates_evaluated": float(stats.candidates_evaluated),
                "evaluations_aborted": float(stats.evaluations_aborted),
                "pair_updates": float(stats.pair_updates),
                "pairs_fixed": float(stats.pairs_fixed),
                "screen_checks": float(stats.screen_checks),
                "candidates_screened": float(stats.candidates_screened),
                "composites_accepted": float(
                    len(result.accepted_first) + len(result.accepted_second)
                ),
                "worker_retries": float(stats.worker_retries),
                "pool_respawns": float(stats.pool_respawns),
                "candidates_quarantined": float(stats.candidates_quarantined),
            },
            runtime=result.runtime,
            quarantined=result.quarantined,
        )
