"""Figure 14 — effect of the candidate-set size.

Paper's claims: considering more composite candidates identifies more
true composites (accuracy up) at significantly growing time cost.
"""

from repro.experiments.figures import fig14


def test_fig14_candidate_sizes(benchmark, show_figure):
    result = benchmark.pedantic(
        fig14,
        kwargs={"candidate_caps": (0, 2, 8), "pair_count": 2},
        rounds=1,
        iterations=1,
    )
    show_figure(result)
    evaluated = result.column("candidates evaluated")
    assert evaluated == sorted(evaluated)
    # With zero candidates nothing can be evaluated.
    assert evaluated[0] == 0.0
