"""Figure 9 — robustness to dislocated events.

Paper's claims: removing the first m events of each trace in one log
hurts every method, but EMS degrades slowest and stays on top; BHV drops
fast (no artificial event, forward-only).
"""

from repro.experiments.figures import fig9


def test_fig09_dislocation_robustness(benchmark, show_figure):
    result = benchmark.pedantic(
        fig9,
        kwargs={"removed": (0, 2, 4), "size": 14, "per_setting": 2,
                "traces_per_log": 60},
        rounds=1,
        iterations=1,
    )
    show_figure(result)
    f_ems = result.column("f(EMS)")
    f_bhv = result.column("f(BHV)")
    # Dislocation hurts everyone; EMS must beat BHV once dislocation is real.
    assert f_ems[0] >= f_ems[-1]
    assert f_ems[-1] >= f_bhv[-1]
