"""Figure 6 — prune power of early convergence (Proposition 2).

Paper's claims: the total number of formula-(1) evaluations drops
substantially with pruning, and the time cost follows.
"""

from repro.experiments.figures import fig6


def test_fig06_early_convergence_pruning(benchmark, show_figure):
    result = benchmark.pedantic(fig6, kwargs={"pair_count": 5}, rounds=1, iterations=1)
    show_figure(result)
    for row in result.rows:
        _, updates_noprune, updates_prune, _, _ = row
        assert updates_prune <= updates_noprune
    total_noprune = sum(row[1] for row in result.rows)
    total_prune = sum(row[2] for row in result.rows)
    assert total_prune < total_noprune
