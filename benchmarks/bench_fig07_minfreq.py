"""Figure 7 — minimum frequency control.

Paper's claims: filtering low-frequency edges trades accuracy (drops as
more statistical information disappears) for time (drops with the average
degree).
"""

from repro.experiments.figures import fig7


def test_fig07_minimum_frequency_control(benchmark, show_figure):
    result = benchmark.pedantic(
        fig7,
        kwargs={"thresholds": (0.0, 0.10, 0.20), "pair_count": 5},
        rounds=1,
        iterations=1,
    )
    show_figure(result)
    f_values = result.column("f-measure")
    # The unfiltered graph carries the most information.
    assert f_values[0] >= max(f_values[1:]) - 0.05
