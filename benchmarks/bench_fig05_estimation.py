"""Figure 5 — accuracy/time trade-off of the estimation budget I.

Paper's claims: I = 0 is about an order of magnitude cheaper than the
exact computation with accuracy comparable to BHV; the exact measure
(MAX) has the best f-measure.
"""

from repro.experiments.figures import fig5


def test_fig05_estimation_tradeoff(benchmark, show_figure):
    result = benchmark.pedantic(
        fig5,
        kwargs={"budgets": (0, 2, 5, None), "pair_count": 5},
        rounds=1,
        iterations=1,
    )
    show_figure(result)
    f_values = result.column("f-measure")
    seconds = result.column("seconds")
    # The robust part of the paper's claim on small corpora is the cost
    # side: I = 0 is the cheapest by a wide margin and cost grows with I.
    assert seconds[0] <= min(seconds[1:])
    assert seconds[0] * 2 < seconds[-1]
    for value in f_values:
        assert 0.0 < value <= 1.0
