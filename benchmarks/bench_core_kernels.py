"""Micro-benchmarks of the library's computational kernels.

Not a paper figure — these pin the cost of the individual building
blocks (graph construction, one exact EMS run, the I = 0 estimation, the
Hungarian assignment) so regressions in the hot paths are visible.
"""

import random

import numpy as np
import pytest

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph
from repro.matching.assignment import max_weight_assignment
from repro.synthesis.corpus import build_scalability_pair


@pytest.fixture(scope="module")
def pair_20():
    return build_scalability_pair(20, seed=7, traces_per_log=60)


@pytest.fixture(scope="module")
def graphs_20(pair_20):
    return (
        DependencyGraph.from_log(pair_20.log_first),
        DependencyGraph.from_log(pair_20.log_second),
    )


def test_dependency_graph_construction(benchmark, pair_20):
    graph = benchmark(DependencyGraph.from_log, pair_20.log_first)
    assert len(graph.nodes) == 20


def test_ems_exact_20_events(benchmark, graphs_20):
    engine = EMSEngine(EMSConfig())
    result = benchmark(engine.similarity, *graphs_20)
    assert result.converged


def test_ems_estimation_budget_zero(benchmark, graphs_20):
    engine = EMSEngine(EMSConfig(estimation_iterations=0))
    result = benchmark(engine.similarity, *graphs_20)
    assert result.converged


def test_ems_forward_only(benchmark, graphs_20):
    engine = EMSEngine(EMSConfig(direction="forward"))
    result = benchmark(engine.similarity, *graphs_20)
    assert result.converged


def test_hungarian_50x50(benchmark):
    rng = np.random.default_rng(3)
    weights = rng.random((50, 50))
    assignment = benchmark(max_weight_assignment, weights)
    assert len(assignment) == 50


def test_playout_1000_traces(benchmark):
    from repro.synthesis.generator import random_process_tree
    from repro.synthesis.playout import play_out

    tree = random_process_tree([f"a{i}" for i in range(15)], random.Random(1))
    log = benchmark(play_out, tree, 1000, random.Random(2))
    assert len(log) == 1000
