"""Micro-benchmarks and regression harness for the computational kernels.

Not a paper figure — these pin the cost of the individual building
blocks (graph construction, one exact EMS run under both fixpoint
kernels, the I = 0 estimation, the Hungarian assignment) so regressions
in the hot paths are visible.

Two entry points:

* ``pytest benchmarks/bench_core_kernels.py --benchmark-only`` — the
  pytest-benchmark view, convenient for local profiling.
* ``python benchmarks/bench_core_kernels.py`` — the dependency-free
  regression harness.  It times every scenario, records the mean/min
  wall time and the deterministic ``pair_updates`` work metric, and
  writes the machine-readable trajectory to ``BENCH_core.json`` at the
  repo root.  ``--check BASELINE`` compares against a committed baseline
  and exits non-zero on large regressions; times are normalized by a
  small NumPy calibration workload measured in the same process, so the
  comparison tolerates CI machines of different speeds.
"""

from __future__ import annotations

import argparse
import atexit
import json
import random
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.core.composite import CompositeMatcher
from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph
from repro.logs.csvio import read_csv
from repro.logs.log import EventLog
from repro.logs.stats import compute_statistics
from repro.matching.assignment import max_weight_assignment
from repro.obs import (
    MetricsRegistry,
    Observer,
    RunManifest,
    Tracer,
    environment_metadata,
)
from repro.matchers import EMSMatcher
from repro.runtime.evalcache import EvaluationCache
from repro.runtime.supervise import RetryPolicy
from repro.service import MatchingService
from repro.store import (
    LogStore,
    MatchStore,
    ingest_graph,
    ingest_statistics,
    match_stored,
)
from repro.synthesis.corpus import build_scalability_pair

#: The Figure-8 scalability scenario every timing below runs against.
SCENARIO = {"activities": 20, "seed": 7, "traces_per_log": 60}

#: The composite-search scenario: a large log pair with planted
#: always-consecutive chains, where the greedy loop accepts several
#: merges.  Rebuilding the log/statistics/graph per candidate dominates
#: the cold search here, which is exactly what the incremental engine
#: (delta count merges + patched levels + warm-started fixpoints)
#: avoids — the ``speedup_composite`` floor in :func:`compare` keeps
#: that optimization honest.
COMPOSITE_SCENARIO = {
    "symbols": 6, "traces": 14000, "seed": 13, "chains": 5, "chain_rate": 0.02,
}

#: The large-vocabulary scenario used for the peak-memory comparison of
#: the vectorized and the sparse fixpoint kernels.  At 300 activities
#: the vectorized kernel's dense (pairs, A, B) scratch blocks dominate
#: the footprint; the sparse kernel streams the same contributions
#: through bounded chunks, and ``memory_reduction_sparse`` in
#: :func:`compare` keeps that advantage honest (>= 4x floor).
MEMORY_SCENARIO = {"activities": 300, "seed": 21, "traces_per_log": 40}

#: The out-of-core ingestion scenario (PR 8): a CSV large enough that
#: the monolithic path's materialized :class:`EventLog` dominates peak
#: memory.  The sharded pipeline spills the trace stream into bounded
#: blocks and counts per block, so its peak tracks the block size, not
#: the log — ``ingest_sharded_memory`` in :func:`compare` holds the
#: sharded/monolithic peak ratio under 0.25x.  The same file backs the
#: ``stats_store_warm`` floor: a warm :class:`~repro.store.LogStore`
#: serves the counts from SQLite without parsing, >= 5x faster than the
#: cold parse+count.
INGEST_SCENARIO = {"cases": 4000, "events_per_case": 8, "activities": 12, "seed": 17}

#: The out-of-core matching scenario (PR 9): a CSV log pair large enough
#: that the cold end-to-end match (parse both, build both graphs, run
#: the EMS fixpoint, assign) dwarfs a match-store hit, which costs two
#: content digests, one verified matrix row, and the assignment.
#: ``match_store_warm`` in :func:`compare` holds the warm path >= 10x
#: faster; ``match_store_partial`` times the append-grown pair that
#: warm-starts the fixpoint from the previous matrix, and
#: ``sql_pair_counts`` pins SQL-window-function aggregation of the
#: stored trace rows bit-identical to Python counting.
MATCH_STORE_SCENARIO = {
    "cases": 1500, "events_per_case": 8, "activities": 24, "seed": 29,
}


def build_composite_pair(
    symbols: int, traces: int, seed: int, chains: int, chain_rate: float
) -> tuple[EventLog, EventLog]:
    """A deterministic log pair with rare planted composite chains.

    Both logs share the same random base traces (disjoint vocabularies);
    the second additionally contains *chains* multi-event sequences that
    always occur consecutively (confidence 1.0) but only in a
    *chain_rate* fraction of traces, so every candidate merge touches
    few traces — the delta-merge sweet spot.
    """
    rng = random.Random(seed)
    base = [f"a{i}" for i in range(symbols)]
    planted = [[f"c{k}{i}" for i in range(2 + (k % 2))] for k in range(chains)]
    first_traces, second_traces = [], []
    for _ in range(traces):
        length = rng.randint(5, 9)
        trace = [rng.choice(base) for _ in range(length)]
        first_traces.append(trace)
        relabeled = [activity.replace("a", "b") for activity in trace]
        if rng.random() < chain_rate:
            position = rng.randint(0, len(relabeled))
            relabeled[position:position] = planted[rng.randrange(chains)]
        second_traces.append(relabeled)
    return (
        EventLog(first_traces, name="composite-bench-a"),
        EventLog(second_traces, name="composite-bench-b"),
    )

def write_ingest_csv(path: Path, cases: int, events_per_case: int,
                     activities: int, seed: int) -> None:
    """The deterministic CSV the ingestion scenarios run against."""
    rng = random.Random(seed)
    names = [f"act-{i}" for i in range(activities)]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("case_id,activity,timestamp\n")
        for case in range(cases):
            for position in range(rng.randint(1, events_per_case)):
                handle.write(f"case-{case},{rng.choice(names)},{position}.0\n")


#: Default output of the harness (committed as the CI baseline).
DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_core.json"


# ----------------------------------------------------------------------
# pytest-benchmark view
# ----------------------------------------------------------------------
try:  # pragma: no cover - only used under pytest
    import pytest
except ImportError:  # pragma: no cover
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def pair_20():
        return build_scalability_pair(
            SCENARIO["activities"], seed=SCENARIO["seed"],
            traces_per_log=SCENARIO["traces_per_log"],
        )

    @pytest.fixture(scope="module")
    def graphs_20(pair_20):
        return (
            DependencyGraph.from_log(pair_20.log_first),
            DependencyGraph.from_log(pair_20.log_second),
        )

    def test_dependency_graph_construction(benchmark, pair_20):
        graph = benchmark(DependencyGraph.from_log, pair_20.log_first)
        assert len(graph.nodes) == 20

    @pytest.mark.parametrize(
        "kernel", ["vectorized", "reference", "sparse", "compiled"]
    )
    def test_ems_exact_20_events(benchmark, graphs_20, kernel):
        if kernel == "compiled":
            from repro.core import compiled

            if not compiled.HAS_NUMBA:
                pytest.skip("numba not installed; compiled kernel falls back")
        engine = EMSEngine(EMSConfig(kernel=kernel))
        result = benchmark(engine.similarity, *graphs_20)
        assert result.converged

    def test_ems_estimation_budget_zero(benchmark, graphs_20):
        engine = EMSEngine(EMSConfig(estimation_iterations=0))
        result = benchmark(engine.similarity, *graphs_20)
        assert result.converged

    def test_ems_forward_only(benchmark, graphs_20):
        engine = EMSEngine(EMSConfig(direction="forward"))
        result = benchmark(engine.similarity, *graphs_20)
        assert result.converged

    def test_hungarian_50x50(benchmark):
        rng = np.random.default_rng(3)
        weights = rng.random((50, 50))
        assignment = benchmark(max_weight_assignment, weights)
        assert len(assignment) == 50

    @pytest.fixture(scope="module")
    def composite_pair():
        return build_composite_pair(**COMPOSITE_SCENARIO)

    def test_composite_incremental_search(benchmark, composite_pair):
        matcher = CompositeMatcher(
            EMSConfig(), delta=0.001, min_confidence=0.9, max_run_length=3
        )
        result = benchmark(matcher.match, *composite_pair)
        assert result.accepted_second

    def test_composite_warm_cache_search(benchmark, composite_pair, tmp_path):
        # pytest-benchmark's calibration run populates the on-disk
        # evaluation cache, so the timed rounds measure the warm path.
        config = EMSConfig(incremental=True, screening=True)

        def run():
            matcher = CompositeMatcher(
                config, delta=0.001, min_confidence=0.9, max_run_length=3,
                eval_cache=EvaluationCache(tmp_path / "evalcache"),
            )
            return matcher.match(*composite_pair)

        result = benchmark(run)
        assert result.accepted_second

    def test_playout_1000_traces(benchmark):
        from repro.synthesis.generator import random_process_tree
        from repro.synthesis.playout import play_out

        tree = random_process_tree([f"a{i}" for i in range(15)], random.Random(1))
        log = benchmark(play_out, tree, 1000, random.Random(2))
        assert len(log) == 1000


# ----------------------------------------------------------------------
# Regression harness
# ----------------------------------------------------------------------
class SkippedScenario(Exception):
    """Raised by a scenario whose prerequisites are absent.

    The harness records the reason in the payload (``"skipped"`` key,
    ``mean_time``/``min_time`` null) instead of failing; :func:`compare`
    treats skipped entries — on either side — as out of scope rather
    than as regressions, so an optional dependency like numba never
    turns a clean CI machine red.
    """


def _calibration_time() -> float:
    """Wall time of a fixed NumPy workload, for machine normalization."""
    rng = np.random.default_rng(0)
    a = rng.random((200, 200))
    best = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        for _ in range(20):
            a = np.tanh(a @ a.T / 200.0)
        best = min(best, time.perf_counter() - started)
    return best


def _scenarios():
    """Yield ``(name, fn)``; *fn* returns ``pair_updates`` or ``None``."""
    pair = build_scalability_pair(
        SCENARIO["activities"], seed=SCENARIO["seed"],
        traces_per_log=SCENARIO["traces_per_log"],
    )
    graphs = (
        DependencyGraph.from_log(pair.log_first),
        DependencyGraph.from_log(pair.log_second),
    )

    def graph_build():
        DependencyGraph.from_log(pair.log_first)
        return None

    def ems(**config):
        return EMSEngine(EMSConfig(**config)).similarity(*graphs).pair_updates

    def ems_compiled():
        # Without numba the "compiled" kernel falls back to the
        # vectorized implementation, which would make this scenario a
        # duplicate measurement — skip it instead so the recorded ratio
        # only ever reflects a real JIT build.
        from repro.core import compiled

        if not compiled.HAS_NUMBA:
            raise SkippedScenario(
                "numba not installed; compiled kernel would fall back "
                "to the vectorized implementation"
            )
        return ems(kernel="compiled")

    def ems_noop_observer():
        # Same workload as ems_exact_20_vectorized, but through an
        # explicitly constructed no-op Observer — the pair of timings
        # pins the cost of the disabled instrumentation hooks
        # (``noop_observer_overhead`` in the payload).
        engine = EMSEngine(EMSConfig(kernel="vectorized"), observer=Observer())
        return engine.similarity(*graphs).pair_updates

    def hungarian():
        rng = np.random.default_rng(3)
        max_weight_assignment(rng.random((50, 50)))
        return None

    composite_logs = build_composite_pair(**COMPOSITE_SCENARIO)

    def composite_search(incremental: bool):
        config = EMSConfig(incremental=incremental, screening=incremental)
        matcher = CompositeMatcher(
            config, delta=0.001, min_confidence=0.9, max_run_length=3
        )
        result = matcher.match(*composite_logs)
        assert result.accepted_second  # the planted chains must be found
        return result.stats.pair_updates

    def composite_search_warm_cache():
        # Same workload as composite_search_incremental, but with the
        # persistent evaluation cache attached.  The harness's untimed
        # warm-up call populates the on-disk store, so the timed repeats
        # measure the warm path: every candidate evaluation is served
        # from a digest-verified cache entry and only candidate
        # discovery, bound precomputation, and the accepted-merge graph
        # rebuilds remain.  ``warm_cache_speedup`` (vs the cold search)
        # carries a 5x floor in :func:`compare`.
        cache_dir = tempfile.mkdtemp(prefix="bench_evalcache_")
        atexit.register(shutil.rmtree, cache_dir, ignore_errors=True)
        cache = EvaluationCache(Path(cache_dir))

        def run():
            config = EMSConfig(incremental=True, screening=True)
            matcher = CompositeMatcher(
                config, delta=0.001, min_confidence=0.9, max_run_length=3,
                eval_cache=cache,
            )
            result = matcher.match(*composite_logs)
            assert result.accepted_second
            return result.stats.pair_updates

        return run

    def composite_search_supervised():
        # Same workload as composite_search_incremental, but with the
        # durable-execution supervision active (an explicit RetryPolicy
        # routes every candidate through run_supervised).  The pair of
        # timings pins the wrapper's fault-free overhead
        # (``retry_overhead`` in the payload, ceiling 1.1x).
        config = EMSConfig(incremental=True, screening=True)
        matcher = CompositeMatcher(
            config, delta=0.001, min_confidence=0.9, max_run_length=3,
            retry=RetryPolicy(),
        )
        result = matcher.match(*composite_logs)
        assert result.accepted_second
        assert result.quarantined == ()
        return result.stats.pair_updates

    ingest_dir = Path(tempfile.mkdtemp(prefix="bench_ingest_"))
    atexit.register(shutil.rmtree, ingest_dir, ignore_errors=True)
    ingest_csv = ingest_dir / "events.csv"
    write_ingest_csv(ingest_csv, **INGEST_SCENARIO)
    warm_store = LogStore(ingest_dir / "store.db")

    def stats_ingest_cold():
        result = ingest_statistics(ingest_csv)
        assert result.statistics.trace_count == INGEST_SCENARIO["cases"]
        return None

    def stats_ingest_store_warm():
        # The harness's untimed warm-up call populates the store, so the
        # timed repeats measure the warm path: one content digest of the
        # file plus a verified SQLite row — no parsing, no counting.
        # ``stats_store_warm`` (vs stats_ingest_cold) carries a 5x floor
        # in :func:`compare`.
        result = ingest_statistics(ingest_csv, store=warm_store)
        assert result.statistics.trace_count == INGEST_SCENARIO["cases"]
        return None

    match_dir = Path(tempfile.mkdtemp(prefix="bench_match_"))
    atexit.register(shutil.rmtree, match_dir, ignore_errors=True)
    match_a = match_dir / "a.csv"
    match_b = match_dir / "b.csv"
    write_ingest_csv(match_a, **MATCH_STORE_SCENARIO)
    write_ingest_csv(
        match_b, **{**MATCH_STORE_SCENARIO, "seed": MATCH_STORE_SCENARIO["seed"] + 1}
    )

    def match_scaled_cold():
        # The cold end-to-end pipeline match: parse both files, build
        # both dependency graphs, run the fixpoint, assign.  This is the
        # numerator of the ``match_store_warm`` floor.
        graph_first, _ = ingest_graph(match_a)
        graph_second, _ = ingest_graph(match_b)
        EMSMatcher().match_graphs(graph_first, graph_second)
        return None

    warm_match_store = MatchStore(match_dir / "match.db")
    _, seed_provenance = match_stored(
        match_a, match_b, matcher=EMSMatcher(), store=warm_match_store
    )
    assert seed_provenance["match_mode"] == "computed"

    def match_store_warm():
        # Full hit: two content digests, one digest-verified matrix row,
        # assignment.  No parse, no graphs, no fixpoint.
        _, provenance = match_stored(
            match_a, match_b, matcher=EMSMatcher(), store=warm_match_store
        )
        assert provenance["match_mode"] == "store", provenance
        return None

    # The partial scenario needs a file that *grew in place* after its
    # pair was matched: seed a pristine store on the short file, then
    # append every trace again under fresh case ids.  The duplication
    # doubles every count and the trace total alike, so relative
    # frequencies are bit-identical and the dirty-pair frontier is
    # empty — the partial hit re-runs (almost) nothing.
    match_p = match_dir / "p.csv"
    write_ingest_csv(
        match_p, **{**MATCH_STORE_SCENARIO, "seed": MATCH_STORE_SCENARIO["seed"] + 2}
    )
    partial_base = match_dir / "partial.db"
    seed_store = MatchStore(partial_base)
    _, seed_provenance = match_stored(
        match_p, match_b, matcher=EMSMatcher(), store=seed_store
    )
    assert seed_provenance["match_mode"] == "computed"
    seed_store.close()
    tail = match_p.read_text(encoding="utf-8").splitlines()[1:]
    with open(match_p, "a", encoding="utf-8") as handle:
        for line in tail:
            handle.write("grown-" + line + "\n")

    def match_store_partial():
        # Each repeat restores the pristine pre-growth store, so every
        # timed call takes the append fast path + warm-started fixpoint
        # (the first partial run persists the new pair's matrix, which
        # would turn later repeats into full hits).
        scratch = match_dir / "partial_run.db"
        for suffix in ("", "-wal", "-shm"):
            Path(str(scratch) + suffix).unlink(missing_ok=True)
        shutil.copy(partial_base, scratch)
        store = MatchStore(scratch)
        try:
            _, provenance = match_stored(
                match_p, match_b, matcher=EMSMatcher(), store=store
            )
            assert provenance["match_mode"] == "store-partial", provenance
        finally:
            store.close()
        return None

    def service_submit_to_result_warm():
        # The daemon's whole serving loop, measured warm: HTTP submit ->
        # queue insert -> scheduler claim -> match-store hit -> result
        # fetch.  Each timed call jitters `threshold` by i * 1e-9 so it
        # is a *fresh job* every time (threshold is part of the job
        # identity key) while the similarity matrix in the shared match
        # store stays warm (threshold only affects the assignment, not
        # the matrix content key).  The first call is the cold seed;
        # every later call must report match_mode == "store".
        # ``service_warm_speedup`` (vs match_scaled_cold) carries a 2x
        # floor in :func:`compare`: answering from the daemon must beat
        # recomputing in-process, HTTP and queue overhead included.
        import urllib.request

        service_dir = Path(tempfile.mkdtemp(prefix="bench_service_"))
        atexit.register(shutil.rmtree, service_dir, ignore_errors=True)
        service = MatchingService(
            service_dir / "store", workers=1, poll_interval=0.005
        )
        service.start()
        atexit.register(service.stop)
        base = f"http://{service.host}:{service.port}"
        calls = [0]

        def call(method, path, payload=None):
            data = json.dumps(payload).encode() if payload is not None else None
            request = urllib.request.Request(
                base + path, data=data, method=method
            )
            with urllib.request.urlopen(request) as response:
                return json.loads(response.read().decode("utf-8"))

        def run():
            calls[0] += 1
            spec = {
                "log_first": str(match_a),
                "log_second": str(match_b),
                "threshold": calls[0] * 1e-9,
            }
            job = call("POST", "/jobs", spec)
            assert job["deduped"] is False, job
            deadline = time.time() + 120
            while time.time() < deadline:
                document = call("GET", f"/jobs/{job['id']}")
                if document["state"] == "done":
                    break
                assert document["state"] in ("queued", "running"), document
                time.sleep(0.002)
            else:
                raise AssertionError(f"job never completed: {document}")
            result = call("GET", f"/jobs/{job['id']}/result")["result"]
            if calls[0] > 1:  # the first call seeds the matrix cold
                assert result["provenance"]["match_mode"] == "store", (
                    result["provenance"]
                )
            return None

        return run

    yield "graph_build_20", graph_build
    yield "ems_exact_20_vectorized", lambda: ems(kernel="vectorized")
    yield "ems_exact_20_reference", lambda: ems(kernel="reference")
    yield "ems_exact_20_sparse", lambda: ems(kernel="sparse")
    yield "ems_exact_20_compiled", ems_compiled
    yield "ems_exact_20_noop_observer", ems_noop_observer
    yield "ems_exact_20_nopruning_vectorized", lambda: ems(use_pruning=False)
    yield "ems_estimation_I0_20", lambda: ems(estimation_iterations=0)
    yield "ems_forward_20", lambda: ems(direction="forward")
    yield "hungarian_50x50", hungarian
    yield "composite_search_cold", lambda: composite_search(False)
    yield "composite_search_incremental", lambda: composite_search(True)
    yield "composite_search_warm_cache", composite_search_warm_cache()
    yield "composite_search_supervised", composite_search_supervised
    yield "stats_ingest_cold", stats_ingest_cold
    yield "stats_ingest_store_warm", stats_ingest_store_warm
    yield "match_scaled_cold", match_scaled_cold
    yield "match_store_warm", match_store_warm
    yield "match_store_partial", match_store_partial
    yield "service_submit_to_result_warm", service_submit_to_result_warm()


def _memory_profile() -> dict:
    """Tracemalloc peak of one exact EMS run per kernel, large vocabulary.

    The dependency-graph caches (levels, reversed views, predecessor
    CSR) are warmed before tracing starts so the measured peaks isolate
    the kernels' own scratch memory.  Both kernels must report identical
    ``pair_updates`` — they evaluate the same schedule, only the memory
    layout differs.
    """
    import tracemalloc

    pair = build_scalability_pair(
        MEMORY_SCENARIO["activities"], seed=MEMORY_SCENARIO["seed"],
        traces_per_log=MEMORY_SCENARIO["traces_per_log"],
    )
    graphs = (
        DependencyGraph.from_log(pair.log_first),
        DependencyGraph.from_log(pair.log_second),
    )
    for graph in graphs:
        graph.levels()
        graph.reversed().levels()
        graph.predecessor_csr()
        graph.reversed().predecessor_csr()
    profile: dict[str, dict] = {}
    for kernel in ("vectorized", "sparse"):
        engine = EMSEngine(EMSConfig(kernel=kernel))
        tracemalloc.start()
        try:
            result = engine.similarity(*graphs)
        finally:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        profile[kernel] = {
            "peak_bytes": peak, "pair_updates": result.pair_updates,
        }
    if profile["sparse"]["pair_updates"] != profile["vectorized"]["pair_updates"]:
        raise AssertionError(
            "kernel schedules diverged: sparse did "
            f"{profile['sparse']['pair_updates']} pair updates, vectorized "
            f"{profile['vectorized']['pair_updates']}"
        )
    return profile


def _ingest_memory_profile() -> dict:
    """Tracemalloc peaks of monolithic vs sharded ingestion, same CSV.

    The monolithic path materializes the whole :class:`EventLog` before
    counting; the sharded pipeline streams partitions into bounded spill
    blocks and counts block by block, so its peak tracks O(shard).  Both
    must produce identical statistics — the ratio is only meaningful for
    equivalent computations.
    """
    import tracemalloc

    scratch = Path(tempfile.mkdtemp(prefix="bench_ingest_mem_"))
    atexit.register(shutil.rmtree, scratch, ignore_errors=True)
    csv_path = scratch / "events.csv"
    write_ingest_csv(csv_path, **INGEST_SCENARIO)

    tracemalloc.start()
    try:
        monolithic = compute_statistics(read_csv(csv_path, name="bench"))
    finally:
        _, monolithic_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    tracemalloc.start()
    try:
        sharded = ingest_statistics(csv_path, shard_traces=256)
    finally:
        _, sharded_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    if sharded.statistics != monolithic:
        raise AssertionError(
            "sharded ingestion diverged from the batch statistics"
        )
    return {
        "monolithic": {"peak_bytes": monolithic_peak},
        "sharded": {"peak_bytes": sharded_peak, "shards": sharded.shards},
    }


def _sql_parity() -> float:
    """1.0 iff SQL-aggregated statistics equal Python counting, else 0.0.

    Ingests the :data:`INGEST_SCENARIO` CSV into a fresh
    :class:`MatchStore` (recording per-trace rows), then aggregates the
    Definition-1 counts entirely inside SQLite — ``COUNT(DISTINCT
    trace_id)`` per activity and the ``LEAD`` window function for pairs —
    and compares against the in-memory accumulator.  The ``1.0`` floor
    on ``sql_pair_counts`` makes any divergence a gate failure.
    """
    scratch = Path(tempfile.mkdtemp(prefix="bench_sql_parity_"))
    atexit.register(shutil.rmtree, scratch, ignore_errors=True)
    csv_path = scratch / "events.csv"
    write_ingest_csv(csv_path, **INGEST_SCENARIO)
    cold = ingest_statistics(csv_path)
    store = MatchStore(scratch / "parity.db")
    try:
        stored = ingest_statistics(csv_path, store=store)
        assert stored.counts_key is not None
        sql_stats = store.sql_statistics(stored.counts_key)
        if sql_stats is None:
            return 0.0
        return 1.0 if sql_stats.snapshot() == cold.statistics else 0.0
    finally:
        store.close()


def run_harness(repeats: int) -> dict:
    """Time every scenario; return the BENCH_core.json payload."""
    calibration = _calibration_time()
    scenarios: dict[str, dict] = {}
    for name, fn in _scenarios():
        try:
            fn()  # warm-up: first-touch caches, lazy imports
        except SkippedScenario as skip:
            scenarios[name] = {
                "mean_time": None,
                "min_time": None,
                "repeats": 0,
                "pair_updates": None,
                "skipped": str(skip),
            }
            continue
        times = []
        pair_updates = None
        for _ in range(repeats):
            started = time.perf_counter()
            pair_updates = fn()
            times.append(time.perf_counter() - started)
        scenarios[name] = {
            "mean_time": statistics.mean(times),
            "min_time": min(times),
            "repeats": repeats,
            "pair_updates": pair_updates,
        }
    speedup = (
        scenarios["ems_exact_20_reference"]["mean_time"]
        / scenarios["ems_exact_20_vectorized"]["mean_time"]
    )
    speedup_composite = (
        scenarios["composite_search_cold"]["mean_time"]
        / scenarios["composite_search_incremental"]["mean_time"]
    )
    memory = _memory_profile()
    memory_reduction = (
        memory["vectorized"]["peak_bytes"] / memory["sparse"]["peak_bytes"]
    )
    # min-over-repeats is the least noisy estimator for the ratio of two
    # short runs; the floor on this key is 1.2x, not a speedup claim.
    sparse_ratio = (
        scenarios["ems_exact_20_sparse"]["min_time"]
        / scenarios["ems_exact_20_vectorized"]["min_time"]
    )
    # Same min-over-repeats estimator: the disabled observer hooks must
    # be free on the hot path, so this ratio should sit at ~1.0.
    noop_overhead = (
        scenarios["ems_exact_20_noop_observer"]["min_time"]
        / scenarios["ems_exact_20_vectorized"]["min_time"]
    )
    # Supervision (retry/quarantine wrapper) on a fault-free serial
    # composite search must be near-free: same workload, same estimator.
    retry_overhead = (
        scenarios["composite_search_supervised"]["min_time"]
        / scenarios["composite_search_incremental"]["min_time"]
    )
    # Warm persistent-evaluation-cache search vs the cold search: with
    # every candidate evaluation served from disk, only discovery and
    # the accepted-merge rebuilds remain (>= 5x floor in compare()).
    warm_cache_speedup = (
        scenarios["composite_search_cold"]["mean_time"]
        / scenarios["composite_search_warm_cache"]["mean_time"]
    )
    # Sharded vs monolithic peak ingestion memory (<= 0.25x floor): the
    # whole point of the out-of-core pipeline is that peak memory tracks
    # the shard, not the log.
    ingest_memory = _ingest_memory_profile()
    ingest_sharded_memory = (
        ingest_memory["sharded"]["peak_bytes"]
        / ingest_memory["monolithic"]["peak_bytes"]
    )
    # Warm persistent log store vs cold parse+count (>= 5x floor): a hit
    # costs one content digest and one verified SQLite row.
    stats_store_warm = (
        scenarios["stats_ingest_cold"]["mean_time"]
        / scenarios["stats_ingest_store_warm"]["mean_time"]
    )
    # Warm match store vs the cold end-to-end pipeline match (>= 10x
    # floor): a full hit skips parse, graph build and the EMS fixpoint —
    # two content digests, one verified matrix row, and the assignment.
    match_store_warm = (
        scenarios["match_scaled_cold"]["mean_time"]
        / scenarios["match_store_warm"]["mean_time"]
    )
    # SQL push-down parity (1.0 floor): window-function aggregation of
    # the stored trace rows must be bit-identical to Python counting.
    sql_pair_counts = _sql_parity()
    # Warm daemon round trip vs the cold in-process pipeline match
    # (>= 2x floor): the daemon's per-job overhead — HTTP submit, queue
    # insert, scheduler claim, result fetch — must stay far below the
    # cost of recomputing the match from scratch.
    service_warm_speedup = (
        scenarios["match_scaled_cold"]["mean_time"]
        / scenarios["service_submit_to_result_warm"]["mean_time"]
    )
    # Null when numba is absent: the compiled scenario is skipped rather
    # than silently re-measuring the vectorized fallback, and compare()
    # treats the null as out of scope instead of a floor violation.
    compiled_entry = scenarios["ems_exact_20_compiled"]
    compiled_ratio = None
    if compiled_entry.get("skipped") is None:
        compiled_ratio = (
            compiled_entry["min_time"]
            / scenarios["ems_exact_20_vectorized"]["min_time"]
        )
    return {
        "schema": 2,
        "scenario": SCENARIO,
        "composite_scenario": COMPOSITE_SCENARIO,
        "memory_scenario": MEMORY_SCENARIO,
        "ingest_scenario": INGEST_SCENARIO,
        "environment": environment_metadata(),
        "calibration_time": calibration,
        "scenarios": scenarios,
        "memory": memory,
        "ingest_memory": ingest_memory,
        "match_scenario": MATCH_STORE_SCENARIO,
        "ingest_sharded_memory": ingest_sharded_memory,
        "stats_store_warm": stats_store_warm,
        "match_store_warm": match_store_warm,
        "sql_pair_counts": sql_pair_counts,
        "service_warm_speedup": service_warm_speedup,
        "speedup_exact_20": speedup,
        "speedup_composite": speedup_composite,
        "memory_reduction_sparse": memory_reduction,
        "sparse_time_ratio_20": sparse_ratio,
        "noop_observer_overhead": noop_overhead,
        "retry_overhead": retry_overhead,
        "warm_cache_speedup": warm_cache_speedup,
        "compiled_time_ratio_20": compiled_ratio,
    }


#: Acceptance floors enforced by :func:`compare`.  Each row is
#: ``(key, bound, sense, description)``: ``"min"`` keys must stay >=
#: *bound*, ``"max"`` keys must stay <= *bound*.  A floor key missing
#: from either JSON is itself a failure — a silent default would let a
#: renamed or dropped metric pass the gate unnoticed.  A key that is
#: present but null marks a *skipped* measurement (optional dependency
#: absent, e.g. ``compiled_time_ratio_20`` without numba) and passes
#: without counting toward the floor.
FLOORS = (
    ("speedup_exact_20", 3.0, "min",
     "vectorized-vs-reference exact-EMS speedup (20 events)"),
    ("speedup_composite", 3.0, "min",
     "incremental-vs-cold composite-search speedup"),
    ("memory_reduction_sparse", 4.0, "min",
     "sparse-vs-vectorized peak-memory reduction (300 activities)"),
    ("sparse_time_ratio_20", 1.2, "max",
     "sparse-vs-vectorized wall-clock ratio (20 events)"),
    ("noop_observer_overhead", 1.1, "max",
     "no-op-observer overhead on exact EMS (20 events)"),
    ("retry_overhead", 1.1, "max",
     "supervision-wrapper overhead on a fault-free composite search"),
    ("warm_cache_speedup", 5.0, "min",
     "warm-evaluation-cache-vs-cold composite-search speedup"),
    ("compiled_time_ratio_20", 1.2, "max",
     "compiled-vs-vectorized wall-clock ratio (20 events)"),
    ("ingest_sharded_memory", 0.25, "max",
     "sharded-vs-monolithic ingestion peak-memory ratio"),
    ("stats_store_warm", 5.0, "min",
     "warm-log-store-vs-cold parse+count speedup"),
    ("match_store_warm", 10.0, "min",
     "warm-match-store-vs-cold end-to-end match speedup"),
    ("sql_pair_counts", 1.0, "min",
     "SQL-window-function pair-count parity with Python counting"),
    ("service_warm_speedup", 2.0, "min",
     "warm-daemon submit-to-result speedup over the cold in-process match"),
)


def environment_warnings(current: dict, baseline: dict) -> list[str]:
    """Human-readable notes on environment drift between two payloads.

    Differences here (interpreter, numpy, machine) are *warnings*, not
    failures: the calibration normalization in :func:`compare` absorbs
    raw speed differences, but a changed environment is worth surfacing
    when a timing comparison looks suspicious.
    """
    cur_env = current.get("environment") or {}
    base_env = baseline.get("environment") or {}
    if not base_env:
        return ["baseline payload has no environment metadata "
                "(predates schema addition; regenerate to silence this)"]
    warnings = []
    for key in sorted(set(cur_env) | set(base_env)):
        cur_value, base_value = cur_env.get(key), base_env.get(key)
        if cur_value != base_value:
            warnings.append(
                f"environment mismatch on {key!r}: current {cur_value!r} "
                f"vs baseline {base_value!r}"
            )
    return warnings


def compare(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Regression check; returns human-readable failure messages.

    Every violation is collected — all failed floors and all regressed
    scenarios are reported together before the caller exits non-zero,
    never just the first one hit.  Times are compared after dividing by
    each run's calibration time, so a uniformly slower machine does not
    trip the check; *threshold* is the allowed normalized-slowdown
    factor.  ``pair_updates`` is deterministic, so any growth beyond 10%
    is flagged regardless of machine speed.  Every :data:`FLOORS` key
    must be present in both payloads and within its bound in the current
    one — a missing key fails loudly instead of defaulting to a vacuous
    pass, while a key or scenario marked skipped/null (optional
    dependency absent on that machine) passes as out of scope.
    """
    failures: list[str] = []
    base_cal = baseline.get("calibration_time") or 1.0
    cur_cal = current.get("calibration_time") or 1.0
    for name, base in baseline.get("scenarios", {}).items():
        entry = current["scenarios"].get(name)
        if entry is None:
            failures.append(f"{name}: scenario disappeared from the harness")
            continue
        if entry.get("skipped") is not None or base.get("skipped") is not None:
            # Skipped on either side (e.g. numba absent): no timing to
            # compare — skipped-not-failed by design.
            continue
        base_norm = base["mean_time"] / base_cal
        cur_norm = entry["mean_time"] / cur_cal
        if cur_norm > threshold * base_norm:
            failures.append(
                f"{name}: normalized mean time {cur_norm:.3f} vs baseline "
                f"{base_norm:.3f} ({cur_norm / base_norm:.2f}x, allowed "
                f"{threshold:g}x)"
            )
        if base.get("pair_updates") is not None and entry.get("pair_updates") is not None:
            if entry["pair_updates"] > 1.1 * base["pair_updates"]:
                failures.append(
                    f"{name}: pair_updates {entry['pair_updates']} vs baseline "
                    f"{base['pair_updates']} "
                    f"({entry['pair_updates'] / base['pair_updates']:.2f}x, "
                    "allowed 1.1x)"
                )
    for key, bound, sense, description in FLOORS:
        missing = [
            side for side, payload in (("current", current), ("baseline", baseline))
            if key not in payload
        ]
        if missing:
            failures.append(
                f"{key}: floor key missing from the {' and '.join(missing)} "
                "payload (regenerate BENCH_core.json with this harness)"
            )
            continue
        value = current[key]
        if value is None:
            # Skipped measurement (e.g. compiled kernel without numba):
            # the key is present, so the metric was not silently
            # dropped, but there is nothing to hold against the bound.
            continue
        if sense == "min" and value < bound:
            failures.append(
                f"{description}: {value:.2f}x is below the {bound:g}x floor "
                f"by {bound - value:.2f}x"
            )
        elif sense == "max" and value > bound:
            failures.append(
                f"{description}: {value:.2f}x exceeds the {bound:g}x ceiling "
                f"by {value - bound:.2f}x"
            )
    return failures


def emit_observability(trace_out: str | None, manifest_out: str | None) -> None:
    """One fully-traced incremental composite search, exported to disk.

    Gives CI (and curious humans) a Chrome-trace timeline and a
    :class:`~repro.obs.RunManifest` for the same composite scenario the
    timing floors run against, without slowing the timed scenarios down.
    """
    observer = Observer(tracer=Tracer(), metrics=MetricsRegistry())
    config = EMSConfig(incremental=True, screening=True)
    matcher = CompositeMatcher(
        config, delta=0.001, min_confidence=0.9, max_run_length=3,
        observer=observer,
    )
    logs = build_composite_pair(**COMPOSITE_SCENARIO)
    with observer.span("bench.composite", **COMPOSITE_SCENARIO):
        result = matcher.match(*logs)
    if trace_out:
        Path(trace_out).write_text(
            json.dumps(observer.tracer.to_chrome_trace(), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {trace_out}")
    if manifest_out:
        manifest = RunManifest.from_observer(
            observer,
            config={"scenario": dict(COMPOSITE_SCENARIO),
                    "incremental": True, "screening": True},
            stats={
                "rounds": result.stats.rounds,
                "candidates_evaluated": result.stats.candidates_evaluated,
                "pair_updates": result.stats.pair_updates,
                "accepted_second": [list(run) for run in result.accepted_second],
            },
        )
        manifest.write(manifest_out)
        print(f"wrote {manifest_out}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(DEFAULT_OUTPUT), metavar="PATH",
        help="where to write the machine-readable results "
             f"(default: {DEFAULT_OUTPUT.name} at the repo root)",
    )
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per scenario (default 5)")
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a baseline BENCH_core.json; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="allowed normalized slowdown factor for --check (default 2.0)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="also run one traced composite search and write its "
             "Chrome-trace JSON to PATH (open in Perfetto)",
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="write the traced composite search's run manifest to PATH",
    )
    arguments = parser.parse_args(argv)

    payload = run_harness(arguments.repeats)
    Path(arguments.output).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(f"scenario: {payload['scenario']}")
    for name, entry in payload["scenarios"].items():
        if entry.get("skipped") is not None:
            print(f"  {name:38s} SKIPPED ({entry['skipped']})")
            continue
        updates = entry["pair_updates"]
        suffix = f"  pair_updates={updates}" if updates is not None else ""
        print(f"  {name:38s} mean {entry['mean_time'] * 1e3:8.2f} ms{suffix}")
    print(f"vectorized speedup on exact EMS (20 events): "
          f"{payload['speedup_exact_20']:.2f}x")
    print(f"incremental speedup on the composite search: "
          f"{payload['speedup_composite']:.2f}x")
    memory = payload["memory"]
    print(f"peak memory at {payload['memory_scenario']['activities']} "
          f"activities: vectorized "
          f"{memory['vectorized']['peak_bytes'] / 2**20:.1f} MiB, sparse "
          f"{memory['sparse']['peak_bytes'] / 2**20:.1f} MiB "
          f"({payload['memory_reduction_sparse']:.2f}x reduction)")
    print(f"sparse/vectorized time ratio (20 events): "
          f"{payload['sparse_time_ratio_20']:.2f}x")
    print(f"no-op observer overhead (20 events): "
          f"{payload['noop_observer_overhead']:.2f}x")
    print(f"supervision overhead on the composite search: "
          f"{payload['retry_overhead']:.2f}x")
    print(f"warm-evaluation-cache speedup over the cold search: "
          f"{payload['warm_cache_speedup']:.2f}x")
    ingest_memory = payload["ingest_memory"]
    print(f"ingestion peak memory ({payload['ingest_scenario']['cases']} "
          f"cases): monolithic "
          f"{ingest_memory['monolithic']['peak_bytes'] / 2**20:.1f} MiB, "
          f"sharded {ingest_memory['sharded']['peak_bytes'] / 2**20:.1f} MiB "
          f"({payload['ingest_sharded_memory']:.2f}x of monolithic)")
    print(f"warm-log-store speedup over the cold parse+count: "
          f"{payload['stats_store_warm']:.2f}x")
    print(f"warm-match-store speedup over the cold end-to-end match: "
          f"{payload['match_store_warm']:.2f}x")
    print(f"SQL pair-count parity with Python counting: "
          f"{payload['sql_pair_counts']:.1f}")
    print(f"warm-daemon speedup over the cold in-process match: "
          f"{payload['service_warm_speedup']:.2f}x")
    compiled_ratio = payload["compiled_time_ratio_20"]
    if compiled_ratio is None:
        print("compiled/vectorized time ratio (20 events): skipped "
              "(numba not installed)")
    else:
        print(f"compiled/vectorized time ratio (20 events): "
              f"{compiled_ratio:.2f}x")
    print(f"wrote {arguments.output}")

    if arguments.trace_out or arguments.manifest_out:
        emit_observability(arguments.trace_out, arguments.manifest_out)

    if arguments.check:
        baseline = json.loads(Path(arguments.check).read_text(encoding="utf-8"))
        for warning in environment_warnings(payload, baseline):
            print(f"WARNING: {warning}", file=sys.stderr)
        failures = compare(payload, baseline, arguments.threshold)
        if failures:
            print("\nREGRESSIONS against", arguments.check, file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"no regressions against {arguments.check} "
              f"(threshold {arguments.threshold:g}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
