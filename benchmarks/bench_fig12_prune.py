"""Figure 12 — prune power of unchanged similarities (Uc) and bounds (Bd).

Paper's claims: both prunings cut the number of formula-(1) evaluations
and the time cost; their combination cuts the most — at identical
matching results.
"""

from repro.experiments.figures import fig12


def test_fig12_composite_prunings(benchmark, show_figure):
    result = benchmark.pedantic(fig12, kwargs={"pair_count": 2}, rounds=1, iterations=1)
    show_figure(result)
    updates = {row[0]: row[1] for row in result.rows}
    f_measures = {row[0]: row[3] for row in result.rows}
    assert updates["Uc"] <= updates["none"]
    assert updates["Bd"] <= updates["none"]
    assert updates["Uc+Bd"] <= min(updates["Uc"], updates["Bd"]) * 1.05
    # Pruning is lossless: the f-measure does not change.
    assert max(f_measures.values()) - min(f_measures.values()) < 1e-9
