"""Figure 8 — scalability on the number of events.

Paper's claims: accuracy of all approaches decreases with event count,
EMS degrading slowest; time grows steeply for GED and OPQ; OPQ cannot
finish beyond 30 events (O(n!) search); EMS+es is always the cheapest.
"""

from repro.experiments.figures import fig8


def test_fig08_scalability(benchmark, show_figure):
    result = benchmark.pedantic(
        fig8,
        kwargs={"sizes": (10, 20, 30), "per_size": 1, "opq_max_events": 25},
        rounds=1,
        iterations=1,
    )
    show_figure(result)
    # OPQ must DNF once the event count exceeds its cap.
    opq_values = result.column("f(OPQ)")
    assert opq_values[-1] == "DNF"
    # EMS finishes everywhere.
    assert all(value != "DNF" for value in result.column("f(EMS)"))
    # EMS+es is cheaper than exact EMS at the largest size.
    t_ems = result.column("t(EMS)")[-1]
    t_es = result.column("t(EMS+es)")[-1]
    assert t_es <= t_ems
