"""Figure 13 — effect of the improvement threshold delta.

Paper's claims: decreasing delta first raises the f-measure (true
composites get accepted), then lowers it (false positives creep in);
time grows as delta shrinks because more merges are explored.
"""

from repro.experiments.figures import fig13


def test_fig13_delta_threshold(benchmark, show_figure):
    result = benchmark.pedantic(
        fig13,
        kwargs={"deltas": (0.2, 0.02, 0.002), "pair_count": 2},
        rounds=1,
        iterations=1,
    )
    show_figure(result)
    accepted = result.column("composites accepted")
    # A lower delta accepts at least as many composites.
    assert accepted == sorted(accepted)
