"""Figure 3 — singleton event matching, structural similarity only.

Paper's claims: EMS has the highest f-measure on all three dislocation
testbeds; BHV is competitive on DS-F but collapses on DS-B/DS-FB; GED and
OPQ trail; EMS+es is the cheapest iterative method.
"""

from repro.experiments.figures import fig3


def test_fig03_singleton_matching(benchmark, show_figure):
    result = benchmark.pedantic(
        fig3, kwargs={"pairs_per_testbed": 4}, rounds=1, iterations=1
    )
    show_figure(result)
    for row in result.rows:
        testbed, f_ems, f_ged = row[0], row[1], row[3]
        assert f_ems > 0.0, testbed
        # Per-testbed, allow small-sample noise against GED...
        assert f_ems >= f_ged - 0.05, testbed
    # ...but across all testbeds the headline claim must hold: EMS beats
    # the local-similarity baseline GED on average.
    mean_ems = sum(row[1] for row in result.rows) / len(result.rows)
    mean_ged = sum(row[3] for row in result.rows) / len(result.rows)
    assert mean_ems > mean_ged
