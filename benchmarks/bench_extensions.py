"""Benchmarks of the extension experiments (beyond the paper's figures).

* noise robustness of EMS (`ext-noise`),
* the extended baseline lineup with FPT (`ext-baselines`),
* the empirical estimation error (`ext-estimation-error`).
"""

from repro.experiments.extensions import (
    ext_baselines,
    ext_estimation_error,
    ext_noise,
)


def test_ext_noise_robustness(benchmark, show_figure):
    result = benchmark.pedantic(
        ext_noise,
        kwargs={"levels": (0.0, 0.1, 0.2), "pair_count": 3},
        rounds=1,
        iterations=1,
    )
    show_figure(result)
    clean = result.rows[0]
    noisiest = result.rows[-1]
    for kind_index in range(1, 4):
        # Moderate noise must not collapse EMS (graceful degradation).
        assert noisiest[kind_index] >= clean[kind_index] - 0.35


def test_ext_baselines_lineup(benchmark, show_figure):
    result = benchmark.pedantic(
        ext_baselines, kwargs={"pairs_per_testbed": 3}, rounds=1, iterations=1
    )
    show_figure(result)
    assert "f(FPT)" in result.headers
    assert "f(SFL)" in result.headers
    for row in result.rows:
        for value in row[1:]:
            assert 0.0 <= value <= 1.0


def test_ext_estimation_error(benchmark, show_figure):
    result = benchmark.pedantic(
        ext_estimation_error,
        kwargs={"budgets": (0, 3, 20), "pair_count": 2},
        rounds=1,
        iterations=1,
    )
    show_figure(result)
    max_errors = result.column("max |error|")
    # Error vanishes once the budget exceeds every finite level.
    assert max_errors[-1] <= max_errors[0] + 1e-9
