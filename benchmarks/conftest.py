"""Shared helpers for the benchmark suite.

Each ``bench_figNN`` module regenerates one figure of the paper with
laptop-quick corpus sizes, benchmarks the underlying computation with
pytest-benchmark, and prints the figure's rows (the same series the paper
plots) to the terminal.  Run with::

    pytest benchmarks/ --benchmark-only

Larger, closer-to-the-paper corpora: ``python -m repro.experiments --full``.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import FigureResult


@pytest.fixture()
def show_figure(capsys):
    """Print a FigureResult table even under pytest's output capture."""

    def _show(result: FigureResult) -> None:
        with capsys.disabled():
            print()
            print(result.render())

    return _show
