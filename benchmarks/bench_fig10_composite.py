"""Figure 10 — composite event matching, structural similarity only.

Paper's claims: EMS keeps the highest accuracy; the repeated similarity
evaluations of the greedy loop make GED/OPQ drastically slower, while
EMS+es stays 1-2 orders of magnitude cheaper.
"""

from repro.experiments.figures import fig10


def test_fig10_composite_matching(benchmark, show_figure):
    result = benchmark.pedantic(fig10, kwargs={"pair_count": 3}, rounds=1, iterations=1)
    show_figure(result)
    rows = {row[0]: row for row in result.rows}
    assert rows["EMS"][1] != "DNF"
    # EMS at least matches the weak local baseline GED.
    if rows["GED"][1] != "DNF":
        assert rows["EMS"][1] >= rows["GED"][1] - 0.05
