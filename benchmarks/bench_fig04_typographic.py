"""Figure 4 — singleton matching with typographic similarity blended in.

Paper's claims: every method improves over Figure 3 except OPQ (which
cannot consume label similarity); EMS stays on top.
"""

from repro.experiments.figures import fig3, fig4


def test_fig04_typographic_integration(benchmark, show_figure):
    result = benchmark.pedantic(
        fig4, kwargs={"pairs_per_testbed": 4}, rounds=1, iterations=1
    )
    show_figure(result)
    structural = fig3(pairs_per_testbed=4)
    for with_labels, without_labels in zip(result.rows, structural.rows):
        assert with_labels[0] == without_labels[0]
        # EMS with labels should not be worse than structural-only EMS.
        assert with_labels[1] >= without_labels[1] - 0.05
