"""Micro-benchmarks of the substrate layers.

Petri-net playout, alpha-miner discovery, token replay, similarity
flooding and footprint computation — the building blocks around the EMS
core.  Regressions here slow every synthetic experiment down.
"""

import random

import pytest

from repro.baselines.flooding import FloodingMatcher
from repro.conformance import replay_log
from repro.discovery import alpha_miner, heuristic_miner
from repro.logs.footprint import compute_footprint
from repro.petri import play_out_net, tree_to_petri
from repro.synthesis.generator import ACYCLIC_PROFILE, random_process_tree
from repro.synthesis.playout import play_out


@pytest.fixture(scope="module")
def tree():
    return random_process_tree(
        [f"a{i}" for i in range(12)], random.Random(3), ACYCLIC_PROFILE
    )


@pytest.fixture(scope="module")
def net(tree):
    return tree_to_petri(tree)


@pytest.fixture(scope="module")
def log(tree):
    return play_out(tree, 200, random.Random(5), with_timestamps=False)


def test_petri_playout_200_traces(benchmark, net):
    result = benchmark(play_out_net, net, 200, random.Random(1))
    assert len(result) == 200


def test_alpha_miner(benchmark, log):
    mined = benchmark(alpha_miner, log)
    assert mined.is_workflow_net()


def test_heuristic_miner(benchmark, log):
    causal = benchmark(heuristic_miner, log)
    assert causal.activities


def test_token_replay(benchmark, net, log):
    result = benchmark(replay_log, net, log)
    assert result.fitness == pytest.approx(1.0)


def test_footprint(benchmark, log):
    footprint = benchmark(compute_footprint, log)
    assert len(footprint.activities) == 12


def test_similarity_flooding(benchmark, log):
    matcher = FloodingMatcher()
    outcome = benchmark(matcher.match, log, log)
    assert outcome.correspondences
