"""Ablation bench: the EMS design choices DESIGN.md calls out.

Not a paper figure.  Three ablations isolate the ingredients of
Definition 2 and Section 3.6:

* **direction** — forward-only vs backward-only vs the combined
  similarity (the paper: "by aggregating the forward and backward
  similarities together ... we can successfully address the matching
  with dislocations");
* **edge weights** — the frequency-agreement factor ``C`` vs a plain
  SimRank-style constant decay;
* **decay c** — sensitivity to the similarity-decay constant.
"""

import pytest

from repro.core.config import EMSConfig
from repro.experiments.harness import aggregate_runs, run_matcher_on_pair
from repro.experiments.reporting import FigureResult
from repro.matchers import EMSMatcher
from repro.synthesis.corpus import build_real_like_corpus, singleton_testbeds


@pytest.fixture(scope="module")
def pairs():
    corpus = build_real_like_corpus(seed=2014, traces_per_log=100)
    testbeds = singleton_testbeds(corpus)
    return testbeds["DS-B"][:4] + testbeds["DS-FB"][:4]


def _score(matcher: EMSMatcher, pairs) -> float:
    runs = [run_matcher_on_pair(matcher, pair) for pair in pairs]
    return aggregate_runs(runs)[matcher.name].mean_f_measure


def test_ablation_direction(benchmark, pairs, show_figure):
    def run():
        rows = []
        for direction in ("forward", "backward", "both"):
            matcher = EMSMatcher(EMSConfig(direction=direction), name=direction)
            rows.append([direction, _score(matcher, pairs)])
        return FigureResult(
            "Ablation", "similarity direction (DS-B + DS-FB pairs)",
            ["direction", "f-measure"], rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show_figure(result)
    scores = {row[0]: row[1] for row in result.rows}
    # The combined similarity must not lose to either single direction by
    # much — and on dislocated data it should win or tie.
    assert scores["both"] >= max(scores["forward"], scores["backward"]) - 0.05


def test_ablation_edge_weights(benchmark, pairs, show_figure):
    def run():
        rows = []
        for use_weights in (True, False):
            label = "with C factor" if use_weights else "constant decay"
            matcher = EMSMatcher(
                EMSConfig(use_edge_weights=use_weights), name=label
            )
            rows.append([label, _score(matcher, pairs)])
        return FigureResult(
            "Ablation", "edge-frequency agreement factor",
            ["variant", "f-measure"], rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show_figure(result)
    scores = {row[0]: row[1] for row in result.rows}
    # Dropping the edge similarities loses information; it must not win.
    assert scores["with C factor"] >= scores["constant decay"] - 0.02


def test_ablation_decay_constant(benchmark, pairs, show_figure):
    def run():
        rows = []
        for c in (0.6, 0.8, 0.95):
            matcher = EMSMatcher(EMSConfig(c=c), name=f"c={c}")
            rows.append([c, _score(matcher, pairs)])
        return FigureResult(
            "Ablation", "similarity decay constant c",
            ["c", "f-measure"], rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show_figure(result)
    for row in result.rows:
        assert 0.0 <= row[1] <= 1.0
