"""Figure 11 — composite event matching with typographic similarity.

Paper's claims: same picture as Figure 10, with accuracies lifted by the
label similarity for every method except OPQ.
"""

from repro.experiments.figures import fig11


def test_fig11_composite_with_labels(benchmark, show_figure):
    result = benchmark.pedantic(fig11, kwargs={"pair_count": 3}, rounds=1, iterations=1)
    show_figure(result)
    rows = {row[0]: row for row in result.rows}
    assert rows["EMS"][1] != "DNF"
    assert rows["EMS"][1] > 0.0
