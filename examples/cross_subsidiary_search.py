"""Cross-subsidiary process integration: the paper's motivating use case.

The introduction motivates event matching with a bus manufacturer that
integrates 31 subsidiaries' OA systems into a unified warehouse: to
query or analyze across subsidiaries, events must first be matched.
This example integrates three functional areas across two subsidiaries
into a single *activity dictionary* — a unified vocabulary mapping each
local event name to a global activity — and then answers a simple
cross-subsidiary query over it.

Run:  python examples/cross_subsidiary_search.py
"""

from repro import EMSMatcher, evaluate
from repro.synthesis.corpus import make_log_pair

AREAS = ["order-processing", "procurement", "customer-support"]

dictionary: dict[str, str] = {}  # local activity name -> global id
matched_pairs = 0

print("=== building the unified activity dictionary ===")
for index, area in enumerate(AREAS):
    pair = make_log_pair(area, size=9, testbed="DS-B", seed=100 + index,
                         traces_per_log=100)
    outcome = EMSMatcher().match(pair.log_first, pair.log_second)
    quality = evaluate(pair.truth, outcome.correspondences)
    print(f"{area:20s}: {quality}")
    for correspondence in outcome.correspondences:
        global_id = f"{area}/{min(correspondence.left)}"
        for local in correspondence.left | correspondence.right:
            dictionary[local] = global_id
        matched_pairs += 1

print(f"\ndictionary: {len(dictionary)} local names -> "
      f"{matched_pairs} global activities across {len(AREAS)} areas")

print("\n=== cross-subsidiary query ===")
print("Which local event names denote the same business step as")
probe = next(name for name, gid in dictionary.items() if "/" in gid)
target = dictionary[probe]
aliases = sorted(name for name, gid in dictionary.items() if gid == target)
print(f"  {probe!r}?")
for alias in aliases:
    print(f"  -> {alias}")
