"""The estimation trade-off: accuracy vs time as the budget I grows.

Reproduces the Figure 5 story on a handful of corpus pairs: with I = 0
the closed-form estimation is nearly free but coarse; raising I converges
to the exact EMS similarity at increasing cost.

Run:  python examples/estimation_tradeoff.py
"""

import time

from repro import EMSConfig, EMSMatcher, evaluate
from repro.synthesis.corpus import make_log_pair

PAIRS = [
    make_log_pair("loan-approval", 9, "DS-FB", seed=seed, traces_per_log=100)
    for seed in (31, 32, 33, 34, 35, 36)
]

print(f"{'budget I':>9s} {'f-measure':>10s} {'seconds':>9s}")
for budget in (0, 1, 2, 3, 5, 10, None):
    config = EMSConfig(estimation_iterations=budget)
    matcher = EMSMatcher(config)
    start = time.perf_counter()
    f_total = 0.0
    for pair in PAIRS:
        outcome = matcher.match(pair.log_first, pair.log_second)
        f_total += evaluate(pair.truth, outcome.correspondences).f_measure
    elapsed = time.perf_counter() - start
    label = "MAX" if budget is None else str(budget)
    print(f"{label:>9s} {f_total / len(PAIRS):10.3f} {elapsed:9.3f}")

print()
print("I = 0 runs in O(|V1||V2|); MAX is the exact fixpoint (Theorem 1).")
