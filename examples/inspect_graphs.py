"""Inspecting event data before matching: footprints, metrics, DOT.

Before trusting any automated matching, an integrator wants to *see* the
behavioral structure of both logs.  This script prints the footprint
matrices (the classic process-mining order relations), the dependency
graph shape metrics, and writes Graphviz DOT files for both logs of the
paper's Figure 1 example.

Run:  python examples/inspect_graphs.py
"""

from pathlib import Path

from repro import DependencyGraph
from repro.graph.export import graph_metrics, to_dot
from repro.logs.footprint import compute_footprint
from repro.synthesis.examples import figure1_logs

log_first, log_second, _ = figure1_logs()

for log in (log_first, log_second):
    print(f"=== {log.name} ===")
    footprint = compute_footprint(log)
    print(footprint.render())
    graph = DependencyGraph.from_log(log)
    metrics = graph_metrics(graph)
    print(
        f"\n{metrics.node_count} events, {metrics.edge_count} edges, "
        f"density {metrics.density:.2f}, reciprocity {metrics.reciprocity:.2f} "
        f"(reciprocal edges = concurrency, e.g. E || F)"
    )
    dot_path = Path(f"/tmp/{log.name}.dot")
    dot_path.write_text(to_dot(graph, include_artificial=True))
    print(f"DOT written to {dot_path} (render with: dot -Tpng {dot_path})\n")

print("Footprints already reveal the story: both logs share a chain with")
print("one concurrent pair, but L2 has an extra always-first event (1) —")
print("the dislocated 'Order Accepted' step the matcher must handle.")
