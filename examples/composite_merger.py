"""Composite event matching on a synthetic manufacturing integration.

One plant logs "Setup Machine" as two sub-steps while the other logs it
as one event; same for a second activity.  The script discovers the SEQ
candidates, runs the greedy merge loop with and without the paper's Uc
and Bd prunings, and shows the recovered m:n correspondences and the
pruning savings (the Figure 12 story in miniature).

Run:  python examples/composite_merger.py
"""

from repro import CompositeMatcher, EMSConfig, evaluate
from repro.core.composite import discover_candidates
from repro.synthesis.corpus import make_log_pair

pair = make_log_pair(
    "manufacturing",
    size=8,
    testbed="COMPOSITE",
    seed=9,
    traces_per_log=100,
    composite_splits=2,
    structural_swaps=0,
)

print("=== composite candidates (SEQ patterns) in the first log ===")
for run in discover_candidates(pair.log_first, min_confidence=0.9, max_run_length=3):
    print("  ", " -> ".join(run))
print()

for use_unchanged, use_bounds, label in [
    (False, False, "no pruning"),
    (True, True, "Uc + Bd pruning"),
]:
    matcher = CompositeMatcher(
        EMSConfig(),
        delta=0.002,
        min_confidence=0.9,
        max_run_length=3,
        use_unchanged=use_unchanged,
        use_bounds=use_bounds,
    )
    result = matcher.match(pair.log_first, pair.log_second)
    print(f"=== greedy merge, {label} ===")
    print(f"  accepted composites: "
          f"{[list(run) for run in result.accepted_first + result.accepted_second]}")
    print(f"  formula-(1) evaluations: {result.stats.pair_updates}")
    print(f"  candidate evaluations aborted early: {result.stats.evaluations_aborted}")
    print(f"  average similarity: {result.average:.3f}")
    print()

# Expand the final matching into correspondences and score against truth.
from repro.matchers import EMSCompositeMatcher

outcome = EMSCompositeMatcher(
    delta=0.002, min_confidence=0.9, max_run_length=3
).match(pair.log_first, pair.log_second)
print("=== recovered correspondences ===")
for correspondence in sorted(outcome.correspondences, key=lambda c: min(c.left)):
    marker = "  [m:n]" if correspondence.is_composite() else ""
    print(f"  {' + '.join(sorted(correspondence.left)):45s} <-> "
          f"{' + '.join(sorted(correspondence.right))}{marker}")
print(evaluate(pair.truth, outcome.correspondences))
