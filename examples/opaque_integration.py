"""Integrating two subsidiaries' logs with and without usable labels.

Builds a procurement log pair from the synthetic corpus in three label
regimes and compares structural-only EMS, label-blended EMS, and a naive
label-only matcher — demonstrating the paper's central point: typographic
similarity collapses on opaque names, while EMS keeps working, and when
labels *are* usable EMS benefits from blending them in (Figure 4).

Run:  python examples/opaque_integration.py
"""

from repro import EMSConfig, EMSMatcher, QGramCosineSimilarity, evaluate
from repro.synthesis.corpus import make_log_pair


def label_only_matcher() -> EMSMatcher:
    """alpha = 0: pure typographic matching, no structure at all."""
    return EMSMatcher(EMSConfig(alpha=0.0), QGramCosineSimilarity(), name="labels-only")


def blended_matcher() -> EMSMatcher:
    return EMSMatcher(EMSConfig(alpha=0.5), QGramCosineSimilarity(), name="EMS+labels")


def structural_matcher() -> EMSMatcher:
    return EMSMatcher(EMSConfig(alpha=1.0), name="EMS")


REGIMES = [
    ("clean labels (surface variants only)", 0.0),
    ("25% of names garbled", 0.25),
    ("fully opaque names", 1.0),
]

print(f"{'regime':40s} {'EMS':>8s} {'EMS+labels':>11s} {'labels-only':>12s}")
for description, opaque_fraction in REGIMES:
    pair = make_log_pair(
        "procurement",
        size=9,
        testbed="DS-B",
        seed=42,
        traces_per_log=120,
        opaque_fraction=opaque_fraction,
    )
    scores = []
    for matcher in (structural_matcher(), blended_matcher(), label_only_matcher()):
        outcome = matcher.match(pair.log_first, pair.log_second)
        scores.append(evaluate(pair.truth, outcome.correspondences).f_measure)
    print(f"{description:40s} {scores[0]:8.3f} {scores[1]:11.3f} {scores[2]:12.3f}")

print()
print("Structure is immune to garbling; labels help only while readable.")
