"""Quickstart: match two heterogeneous event logs in a few lines.

Two subsidiaries record the same ordering process under different (partly
garbled) event names, and one of them logs an extra intake step at the
start of every case.  EMS matches the events from structure alone.

Run:  python examples/quickstart.py
"""

from repro import EMSMatcher, EventLog

# Subsidiary 1: payment first, then fulfilment; 40% of orders pay cash.
subsidiary_1 = EventLog(
    [["Paid by Cash", "Check Stock", "Pack", "Ship"]] * 4
    + [["Paid by Card", "Check Stock", "Pack", "Ship"]] * 6,
    name="subsidiary-1",
)

# Subsidiary 2: an extra intake step, then the same flow under opaque
# names exported from a legacy system with a broken encoding.
subsidiary_2 = EventLog(
    [["Intake", "0x11ca", "0x3f2b", "0x9d77", "0x5e01"]] * 4
    + [["Intake", "0x82aa", "0x3f2b", "0x9d77", "0x5e01"]] * 6,
    name="subsidiary-2",
)

outcome = EMSMatcher().match(subsidiary_1, subsidiary_2)

print(f"Matched {subsidiary_1.name} against {subsidiary_2.name}:")
for correspondence in sorted(outcome.correspondences, key=lambda c: min(c.left)):
    left = " + ".join(sorted(correspondence.left))
    right = " + ".join(sorted(correspondence.right))
    print(f"  {left:15s} <-> {right}")
print(f"average similarity: {outcome.objective:.3f}")
