"""Model round-trip: generate → play out → discover → check conformance.

The full BeehiveZ-style pipeline this library ships as substrate:

1. generate a random block-structured model (process tree);
2. convert it to a workflow net (Petri net) and play out an event log;
3. rediscover a model from the log with the alpha miner;
4. token-replay the log on the discovered net to measure fitness;
5. export both nets as PNML for inspection in ProM & friends.

Run:  python examples/model_roundtrip.py
"""

import random
from pathlib import Path

from repro.conformance import replay_log
from repro.discovery import alpha_miner, heuristic_miner
from repro.petri import play_out_net, tree_to_petri, write_pnml
from repro.synthesis.generator import ACYCLIC_PROFILE, random_process_tree

rng = random.Random(42)
activities = [f"step-{index:02d}" for index in range(8)]

print("=== 1. generate a random process model ===")
tree = random_process_tree(activities, rng, ACYCLIC_PROFILE)
print(tree.describe())

print("\n=== 2. convert to a workflow net, play out a log ===")
net = tree_to_petri(tree, name="generated")
log = play_out_net(net, 200, rng, name="generated-log")
print(f"net: {len(net.places)} places, {len(net.transitions)} transitions "
      f"(workflow net: {net.is_workflow_net()})")
print(f"log: {len(log)} traces, {len(log.variant_counts())} variants")

print("\n=== 3. rediscover with the alpha miner ===")
mined = alpha_miner(log)
print(f"mined net: {len(mined.places)} places, {len(mined.transitions)} transitions")

print("\n=== 4. conformance: replay the log on the mined net ===")
result = replay_log(mined, log)
print(f"token fitness: {result.fitness:.3f} "
      f"({result.fitting_traces}/{result.trace_count} traces fit perfectly)")

print("\n=== 5. heuristics-miner causal view ===")
causal = heuristic_miner(log, dependency_threshold=0.8)
print(f"causal edges: {len(causal.edges)}, "
      f"starts: {sorted(causal.start_activities)}")

for name, target in (("generated", net), ("mined", mined)):
    path = Path(f"/tmp/{name}.pnml")
    write_pnml(target, path)
    print(f"PNML written: {path}")
