"""The paper's running example (Figure 1): turbine order processing.

Two subsidiaries of a bus manufacturer log the same ordering activity:

* subsidiary 1 starts at payment (dislocated beginning), records
  inventory checking and validation as two separate steps, and ships /
  emails concurrently;
* subsidiary 2 has an extra "Order Accepted" step, one combined
  "Inventory Checking & Validation" step (a composite event), and a
  garbled "?????" event whose original name was "Delivery".

This script walks through the paper's pipeline: singleton similarities
(Examples 4 and 6), the dislocated match A <-> Paid by Cash, and the
composite matching that recovers {Check Inventory, Validate} <->
Inventory Checking & Validation (Example 7).

Run:  python examples/turbine_orders.py
"""

from repro import (
    DependencyGraph,
    EMSCompositeMatcher,
    EMSConfig,
    EMSEngine,
    EMSMatcher,
    evaluate,
)
from repro.synthesis.examples import turbine_order_logs

log_1, log_2, truth = turbine_order_logs()

print("=== the two logs ===")
for log in (log_1, log_2):
    print(f"{log.name}: {len(log)} traces over {sorted(log.activities())}")
print()

print("=== pairwise EMS similarities (forward, alpha = 1) ===")
graph_1 = DependencyGraph.from_log(log_1)
graph_2 = DependencyGraph.from_log(log_2)
engine = EMSEngine(EMSConfig(direction="forward"))
matrix = engine.similarity(graph_1, graph_2).matrix
cash = "Paid by Cash"
print(f"S({cash}, Order Accepted) = {matrix.get(cash, 'Order Accepted'):.3f}")
print(f"S({cash}, {cash})         = {matrix.get(cash, cash):.3f}")
print("-> the dislocated event matches its true counterpart, not the")
print("   other log's trace start (the paper's Example 4).")
print()

print("=== singleton matching ===")
singleton = EMSMatcher().match(log_1, log_2)
print(evaluate(truth, singleton.correspondences))
print()

print("=== composite matching (Algorithm 2) ===")
composite = EMSCompositeMatcher(
    delta=0.005, min_confidence=0.9, max_run_length=2
).match(log_1, log_2)
for correspondence in sorted(composite.correspondences, key=lambda c: min(c.left)):
    marker = "  [m:n]" if correspondence.is_composite() else ""
    print(f"  {' + '.join(sorted(correspondence.left)):35s} <-> "
          f"{' + '.join(sorted(correspondence.right))}{marker}")
print(evaluate(truth, composite.correspondences))
print(f"greedy rounds: {composite.diagnostics['rounds']:.0f}, "
      f"candidates evaluated: {composite.diagnostics['candidates_evaluated']:.0f}, "
      f"aborted by upper bound: {composite.diagnostics['evaluations_aborted']:.0f}")
