"""Incremental matching over a live trace stream.

Integrations run continuously: as the OA systems keep logging, the
matching should be refreshed without re-reading history.  This example
feeds traces one at a time into :class:`repro.logs.OnlineStatistics`
accumulators, rebuilds the dependency graphs from snapshots at
checkpoints, and shows the matching stabilizing as evidence accumulates.

Run:  python examples/streaming_rematch.py
"""

from repro import DependencyGraph, EMSConfig, EMSEngine, evaluate
from repro.logs import OnlineStatistics
from repro.matching import select_correspondences
from repro.synthesis.corpus import make_log_pair

pair = make_log_pair(
    "it-service", size=9, testbed="DS-B", seed=81, traces_per_log=200
)
stream_first = list(pair.log_first)
stream_second = list(pair.log_second)

online_first = OnlineStatistics()
online_second = OnlineStatistics()
engine = EMSEngine(EMSConfig())

print(f"{'traces seen':>11s} {'f-measure':>10s} {'avg sim':>8s}")
checkpoints = [5, 10, 20, 50, 100, 200]
cursor = 0
for checkpoint in checkpoints:
    while cursor < checkpoint and cursor < len(stream_first):
        online_first.add_trace(stream_first[cursor])
        online_second.add_trace(stream_second[min(cursor, len(stream_second) - 1)])
        cursor += 1
    graph_first = DependencyGraph.from_statistics(online_first.snapshot())
    graph_second = DependencyGraph.from_statistics(online_second.snapshot())
    matrix = engine.similarity(graph_first, graph_second).matrix
    found = select_correspondences(matrix)
    quality = evaluate(pair.truth, found)
    print(f"{cursor:>11d} {quality.f_measure:>10.3f} {matrix.average():>8.3f}")

print()
print("Early snapshots are noisy (few traces -> unstable frequencies);")
print("the matching stabilizes as the stream accumulates evidence.")
