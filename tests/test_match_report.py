"""Tests for the Markdown matching report."""

import pytest

from repro.core.config import EMSConfig
from repro.core.ems import EMSEngine
from repro.graph.dependency import DependencyGraph
from repro.matchers import EMSCompositeMatcher, EMSMatcher
from repro.reporting import match_and_report, render_match_report


@pytest.fixture()
def report(fig1_logs):
    log_first, log_second = fig1_logs
    matcher = EMSMatcher(threshold=0.45)
    outcome = matcher.match(log_first, log_second)
    similarity = EMSEngine(EMSConfig()).similarity(
        DependencyGraph.from_log(log_first), DependencyGraph.from_log(log_second)
    ).matrix
    return render_match_report(
        log_first, log_second, outcome, matcher.name, similarity
    )


class TestRenderMatchReport:
    def test_header_and_logs(self, report):
        assert report.startswith("# Event matching report: L1 ↔ L2")
        assert "`L1`: 10 traces, 6 activities" in report

    def test_correspondence_table(self, report):
        assert "| first log | second log | kind | similarity |" in report
        assert "| A | 2 | 1:1 |" in report

    def test_similarity_scores_present(self, report):
        import re

        assert re.search(r"\| A \| 2 \| 1:1 \| 0\.\d{3} \|", report)

    def test_unmatched_section(self, report):
        assert "## Unmatched activities" in report

    def test_diagnostics_section(self, report):
        assert "## Diagnostics" in report
        assert "pair_updates" in report

    def test_composite_marked(self, fig1_logs):
        matcher = EMSCompositeMatcher(delta=0.005, min_confidence=0.9, max_run_length=2)
        outcome = matcher.match(*fig1_logs)
        report = render_match_report(*fig1_logs, outcome, matcher.name)
        assert "| C + D | 4 | m:n |" in report

    def test_match_and_report_one_call(self, fig1_logs):
        report = match_and_report(EMSMatcher(), *fig1_logs)
        assert "# Event matching report" in report

    def test_empty_correspondences(self, fig1_logs):
        matcher = EMSMatcher(threshold=0.99)
        outcome = matcher.match(*fig1_logs)
        report = render_match_report(*fig1_logs, outcome, matcher.name)
        assert "*(none above the threshold)*" in report
